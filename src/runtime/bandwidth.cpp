#include "runtime/bandwidth.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "runtime/synchronizer.hpp"

namespace syncts {

namespace {

/// Auto burst rule shared by both bucket families: 8x the refill rate,
/// floored at 4096 so one full-vector frame always fits (see
/// BandwidthOptions::burst).
std::uint64_t resolve_burst(std::uint64_t configured, std::uint64_t rate) {
    if (configured != 0) return configured;
    const std::uint64_t kFloor = 4096;
    const std::uint64_t scaled =
        rate > std::numeric_limits<std::uint64_t>::max() / 8 ? rate : rate * 8;
    return std::max(kFloor, scaled);
}

std::uint64_t channel_key(ProcessId src, ProcessId dst) {
    return (static_cast<std::uint64_t>(src) << 32) |
           static_cast<std::uint64_t>(dst);
}

}  // namespace

BandwidthScheduler::BandwidthScheduler(const BandwidthOptions& options,
                                       std::size_t n) {
    SYNCTS_REQUIRE(options.enabled,
                   "bandwidth scheduler constructed while disabled");
    SYNCTS_REQUIRE(options.bytes_per_tick >= 1,
                   "bandwidth global rate must be >= 1 byte per tick");
    global_rate_ = options.bytes_per_tick;
    channel_rate_ = options.channel_bytes_per_tick != 0
                        ? options.channel_bytes_per_tick
                        : options.bytes_per_tick;
    global_burst_ = resolve_burst(options.burst, global_rate_);
    channel_burst_ = resolve_burst(options.burst, channel_rate_);
    // Buckets start full: the first flushes of a run are never the ones
    // to shape, and an empty start would delay every process's opening
    // REQ by a full refill for no fairness gain.
    global_.resize(n, Bucket{global_burst_, 0});
}

void BandwidthScheduler::refill(Bucket& bucket, std::uint64_t rate,
                                std::uint64_t burst, std::uint64_t now) {
    if (now <= bucket.last_refill) return;
    const std::uint64_t elapsed = now - bucket.last_refill;
    // Saturating: elapsed * rate can overflow on a long-idle bucket,
    // but the cap is burst anyway.
    const std::uint64_t earned =
        elapsed > burst / rate ? burst : elapsed * rate;
    bucket.tokens = std::min(burst, bucket.tokens + earned);
    bucket.last_refill = now;
}

std::uint64_t BandwidthScheduler::ticks_until(std::uint64_t tokens,
                                              std::uint64_t need,
                                              std::uint64_t rate) {
    if (tokens >= need) return 0;
    const std::uint64_t missing = need - tokens;
    return (missing + rate - 1) / rate;
}

BandwidthScheduler::Bucket& BandwidthScheduler::channel_bucket(
    ProcessId src, ProcessId dst) {
    auto [it, inserted] =
        channels_.try_emplace(channel_key(src, dst), Bucket{channel_burst_, 0});
    return it->second;
}

bool BandwidthScheduler::admit(ProcessId src, ProcessId dst,
                               std::uint64_t bytes, std::uint64_t now,
                               std::uint64_t& deficit) {
    SYNCTS_REQUIRE(static_cast<std::size_t>(src) < global_.size(),
                   "bandwidth admit: source out of range");
    Bucket& global = global_[static_cast<std::size_t>(src)];
    Bucket& channel = channel_bucket(src, dst);
    refill(global, global_rate_, global_burst_, now);
    refill(channel, channel_rate_, channel_burst_, now);

    const std::uint64_t global_charge = std::min(bytes, global_burst_);
    const std::uint64_t channel_charge = std::min(bytes, channel_burst_);
    // DRR credit lets a starved channel overdraw its own bucket; the
    // global budget is authoritative and never overdrawn.
    const bool channel_ok =
        channel.tokens + std::min(deficit, channel_charge) >= channel_charge;
    if (global.tokens < global_charge || !channel_ok) {
        ++counters_.refused;
        return false;
    }
    global.tokens -= global_charge;
    if (channel.tokens >= channel_charge) {
        channel.tokens -= channel_charge;
    } else {
        deficit -= channel_charge - channel.tokens;
        channel.tokens = 0;
    }
    ++counters_.admitted;
    counters_.bytes_admitted += global_charge;
    return true;
}

std::uint64_t BandwidthScheduler::ready_time(ProcessId src, ProcessId dst,
                                             std::uint64_t bytes,
                                             std::uint64_t now) const {
    SYNCTS_REQUIRE(static_cast<std::size_t>(src) < global_.size(),
                   "bandwidth ready_time: source out of range");
    const Bucket& global = global_[static_cast<std::size_t>(src)];
    std::uint64_t global_tokens = global.tokens;
    std::uint64_t global_base = global.last_refill;
    if (now > global_base) {
        // Mirror refill() without mutating.
        const std::uint64_t elapsed = now - global_base;
        const std::uint64_t earned = elapsed > global_burst_ / global_rate_
                                         ? global_burst_
                                         : elapsed * global_rate_;
        global_tokens = std::min(global_burst_, global_tokens + earned);
    }
    std::uint64_t channel_tokens = channel_burst_;
    const auto it = channels_.find(channel_key(src, dst));
    if (it != channels_.end()) {
        channel_tokens = it->second.tokens;
        if (now > it->second.last_refill) {
            const std::uint64_t elapsed = now - it->second.last_refill;
            const std::uint64_t earned =
                elapsed > channel_burst_ / channel_rate_
                    ? channel_burst_
                    : elapsed * channel_rate_;
            channel_tokens = std::min(channel_burst_, channel_tokens + earned);
        }
    }
    const std::uint64_t wait = std::max(
        ticks_until(global_tokens, std::min(bytes, global_burst_),
                    global_rate_),
        ticks_until(channel_tokens, std::min(bytes, channel_burst_),
                    channel_rate_));
    return now + std::max<std::uint64_t>(wait, 1);
}

}  // namespace syncts
