#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"

/// \file fault_plan.hpp
/// Seeded, deterministic fault injection for the asynchronous packet
/// network: per-packet drop / duplicate / corrupt / extra-delay
/// probabilities plus targeted rules ("drop the Nth packet of kind k on
/// the directed edge (i, j)").
///
/// A FaultPlan is pure configuration and can be shared between runs; a
/// FaultInjector owns the derived RNG and the per-rule occurrence
/// counters, so a faulty run stays a pure function of
/// (programs, network seed, fault plan). The injector mutates only
/// payload bytes — packet headers (source/destination/kind) are assumed
/// to be protected by the transport's own framing, exactly like UDP/IP
/// header checksums; payload integrity is the protocol's problem, which
/// is why clocks/wire.hpp frames carry their own checksum.

namespace syncts {

/// Drops the `occurrence`-th matching packet (1-based) sent on the
/// directed edge source -> destination. `kind` matches Packet::kind;
/// kAnyKind matches every kind. Targeted rules make loss scenarios exact:
/// "lose the first REQ from P0 to P1" is one rule, not a probability.
struct TargetedDrop {
    static constexpr std::uint32_t kAnyKind = 0xFFFFFFFFu;

    ProcessId source = 0;
    ProcessId destination = 0;
    std::uint32_t kind = kAnyKind;
    std::uint64_t occurrence = 1;
};

/// Crashes process `process` after its `at_step`-th protocol step (a
/// commit or an accepted ACK, 1-based, counted across the process's whole
/// lifetime *including* steps re-executed after earlier crashes — so
/// several rules for one process fire in at_step order). The process
/// loses all volatile state, stays down for `downtime` virtual ticks
/// (deliveries to it are dropped), then restarts and rejoins from its
/// durable snapshot + WAL (docs/RECOVERY.md).
struct CrashRule {
    ProcessId process = 0;
    std::uint64_t at_step = 1;
    std::uint64_t downtime = 50;
};

struct FaultPlan {
    /// Seed of the injector's own RNG stream, independent of the latency
    /// stream so enabling faults does not perturb latency draws.
    std::uint64_t seed = 0xFA171ull;

    double drop_probability = 0.0;       ///< lose the packet entirely
    double duplicate_probability = 0.0;  ///< deliver an extra, independent copy
    double corrupt_probability = 0.0;    ///< mutate payload bytes
    double delay_probability = 0.0;      ///< add extra latency (reordering)
    /// Extra delay drawn uniformly from [1, max_extra_delay] when a packet
    /// is selected for delay. Ignored when zero.
    std::uint64_t max_extra_delay = 0;

    std::vector<TargetedDrop> targeted_drops;

    /// Whole-process crash/restart rules, executed by the synchronizer
    /// runtime (the injector touches packets, not processes).
    std::vector<CrashRule> crashes;

    /// True when any fault can actually fire. Crash rules count: a run
    /// with crashes needs retransmission armed even with lossless links.
    bool active() const noexcept {
        return drop_probability > 0.0 || duplicate_probability > 0.0 ||
               corrupt_probability > 0.0 ||
               (delay_probability > 0.0 && max_extra_delay > 0) ||
               !targeted_drops.empty() || !crashes.empty();
    }
};

/// What the network actually injected during one run.
struct FaultStats {
    std::uint64_t dropped = 0;         ///< probabilistic drops
    std::uint64_t targeted_drops = 0;  ///< rule-based drops
    std::uint64_t duplicated = 0;      ///< extra copies queued
    std::uint64_t corrupted = 0;       ///< payloads mutated
    std::uint64_t delayed = 0;         ///< extra-delay applications
    std::uint64_t crashes = 0;         ///< crash rules executed
    std::uint64_t down_drops = 0;      ///< deliveries lost to a down process

    std::uint64_t total_faults() const noexcept {
        return dropped + targeted_drops + duplicated + corrupted + delayed +
               crashes + down_drops;
    }

    std::string to_string() const;
};

/// Applies a FaultPlan to a packet stream. Default-constructed injectors
/// are inert (every packet passes through untouched).
class FaultInjector {
public:
    FaultInjector() = default;
    explicit FaultInjector(FaultPlan plan);

    /// One delivery of a packet: extra transit delay on top of the latency
    /// model, and whether the payload is corrupted in flight.
    struct Copy {
        std::uint64_t extra_delay = 0;
        bool corrupt = false;
    };

    /// Decides the fate of one sent packet. An empty vector means the
    /// packet is dropped; two entries mean it was duplicated. Counts
    /// occurrences for targeted rules as a side effect.
    std::vector<Copy> disposition(ProcessId source, ProcessId destination,
                                  std::uint32_t kind);

    /// Deterministically mutates payload bytes: flips a random bit,
    /// truncates the tail, or appends garbage. Empty bodies gain garbage.
    void corrupt_body(std::vector<std::uint8_t>& body);

    bool active() const noexcept { return plan_.active(); }
    const FaultPlan& plan() const noexcept { return plan_; }
    const FaultStats& stats() const noexcept { return stats_; }

private:
    FaultPlan plan_;
    Rng rng_{0};
    FaultStats stats_;
    /// rule_hits_[r] — matching packets seen so far for targeted rule r.
    std::vector<std::uint64_t> rule_hits_;
};

}  // namespace syncts
