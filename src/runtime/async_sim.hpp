#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"

/// \file async_sim.hpp
/// A deterministic discrete-event simulator for an asynchronous
/// point-to-point network: packets carry opaque payloads, experience
/// per-packet latencies, and are delivered to per-process handlers in
/// timestamp order. This is the substrate *underneath* synchronous
/// messages — the paper (citing Murty & Garg) notes that implementing a
/// synchronous message requires the sender to wait for an acknowledgement;
/// runtime/synchronizer.hpp builds exactly that protocol on top of this
/// network.
///
/// Determinism: ties in delivery time break by send sequence number, and
/// latencies come from a seeded Rng, so a run is a pure function of
/// (programs, seed).

namespace syncts {

/// One packet in flight. `kind` and `body` are protocol-defined.
struct Packet {
    ProcessId source = 0;
    ProcessId destination = 0;
    std::uint32_t kind = 0;
    std::uint64_t tag = 0;              // protocol correlation id
    std::vector<std::uint64_t> body;    // numeric payload (e.g. a vector)
};

class AsyncSimulator {
public:
    /// Latency model: returns the packet's transit time (> 0).
    using LatencyModel = std::function<std::uint64_t(const Packet&, Rng&)>;

    /// Handler invoked at delivery time on the destination process.
    using Handler = std::function<void(std::uint64_t now, const Packet&)>;

    AsyncSimulator(std::size_t num_processes, std::uint64_t seed);

    /// Fixed latency for every packet.
    void set_fixed_latency(std::uint64_t latency);

    /// Uniform random latency in [lo, hi].
    void set_uniform_latency(std::uint64_t lo, std::uint64_t hi);

    void set_latency_model(LatencyModel model);

    /// Registers the delivery handler for process p (one per process).
    void on_deliver(ProcessId p, Handler handler);

    /// Queues a packet for delivery at now + latency.
    void send(std::uint64_t now, Packet packet);

    /// Runs until the event queue drains; returns the final virtual time.
    /// `max_events` guards against protocol bugs that flood the network.
    std::uint64_t run(std::uint64_t max_events = 10'000'000);

    std::uint64_t packets_delivered() const noexcept { return delivered_; }

private:
    struct Scheduled {
        std::uint64_t time;
        std::uint64_t seq;
        Packet packet;
        friend bool operator>(const Scheduled& a, const Scheduled& b) {
            return a.time != b.time ? a.time > b.time : a.seq > b.seq;
        }
    };

    std::vector<Handler> handlers_;
    std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
        queue_;
    LatencyModel latency_;
    Rng rng_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t delivered_ = 0;
};

}  // namespace syncts
