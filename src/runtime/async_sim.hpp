#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "runtime/fault_plan.hpp"

/// \file async_sim.hpp
/// A deterministic discrete-event simulator for an asynchronous
/// point-to-point network: packets carry opaque byte payloads, experience
/// per-packet latencies, and are delivered to per-process handlers in
/// timestamp order. This is the substrate *underneath* synchronous
/// messages — the paper (citing Murty & Garg) notes that implementing a
/// synchronous message requires the sender to wait for an acknowledgement;
/// runtime/synchronizer.hpp builds exactly that protocol on top of this
/// network.
///
/// The simulator optionally runs under a FaultPlan (drop / duplicate /
/// corrupt / extra-delay, plus targeted drop rules) and supports timers so
/// protocols can implement retransmission. Determinism: ties in delivery
/// time break by schedule sequence number, latencies come from a seeded
/// Rng, and faults from the plan's own seeded Rng, so a run is a pure
/// function of (programs, seed, fault plan).

namespace syncts {

/// One packet in flight. `kind` and `body` are protocol-defined; the body
/// is raw bytes so the fault layer can corrupt it the way a real network
/// would, and so protocols must frame/validate it (clocks/wire.hpp).
struct Packet {
    ProcessId source = 0;
    ProcessId destination = 0;
    std::uint32_t kind = 0;
    std::uint64_t tag = 0;             // protocol correlation id
    std::vector<std::uint8_t> body;    // wire-encoded payload
};

class AsyncSimulator {
public:
    /// Latency model: returns the packet's transit time (> 0).
    using LatencyModel = std::function<std::uint64_t(const Packet&, Rng&)>;

    /// Handler invoked at delivery time on the destination process.
    using Handler = std::function<void(std::uint64_t now, const Packet&)>;

    /// Timer callback invoked at its scheduled virtual time.
    using TimerCallback = std::function<void(std::uint64_t now)>;

    AsyncSimulator(std::size_t num_processes, std::uint64_t seed);

    /// Fixed latency for every packet.
    void set_fixed_latency(std::uint64_t latency);

    /// Uniform random latency in [lo, hi].
    void set_uniform_latency(std::uint64_t lo, std::uint64_t hi);

    void set_latency_model(LatencyModel model);

    /// Runs every subsequent send through `plan`. Resets fault statistics.
    void set_fault_plan(FaultPlan plan);

    /// Registers the delivery handler for process p (one per process).
    void on_deliver(ProcessId p, Handler handler);

    /// Marks process p down (crashed) or back up. Packets delivered to a
    /// down process are silently lost — exactly what a dead NIC does —
    /// and counted as fault_stats().down_drops. Timers still fire (the
    /// runtime uses one to restart the process).
    void set_down(ProcessId p, bool down);

    bool is_down(ProcessId p) const noexcept;

    /// Counts one executed crash rule into the fault statistics.
    void note_crash() noexcept { ++crash_stats_.crashes; }

    /// Queues a packet for delivery at now + latency (per delivered copy).
    /// Under a fault plan the packet may be dropped, duplicated, delayed,
    /// or its body corrupted in flight.
    void send(std::uint64_t now, Packet packet);

    /// Schedules `callback` to fire at virtual time `when`. Timers cannot
    /// be cancelled; protocols check their own state when one fires.
    void schedule(std::uint64_t when, TimerCallback callback);

    /// Runs until the event queue drains; returns the final virtual time.
    /// `max_events` bounds deliveries + timer firings and guards against
    /// protocol bugs that flood the network.
    std::uint64_t run(std::uint64_t max_events = 10'000'000);

    std::uint64_t packets_delivered() const noexcept { return delivered_; }
    std::uint64_t timers_fired() const noexcept { return timers_fired_; }

    /// What the fault plan actually injected so far, including the
    /// crash/down-drop counts the runtime reported.
    FaultStats fault_stats() const noexcept {
        FaultStats stats = injector_.stats();
        stats.crashes = crash_stats_.crashes;
        stats.down_drops = crash_stats_.down_drops;
        return stats;
    }

private:
    struct Scheduled {
        std::uint64_t time;
        std::uint64_t seq;
        Packet packet;         // delivery event when timer == nullptr
        TimerCallback timer;   // timer event when set
        friend bool operator>(const Scheduled& a, const Scheduled& b) {
            return a.time != b.time ? a.time > b.time : a.seq > b.seq;
        }
    };

    std::vector<Handler> handlers_;
    std::vector<bool> down_;
    FaultStats crash_stats_;  ///< crash/down-drop counts only
    std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
        queue_;
    LatencyModel latency_;
    Rng rng_;
    FaultInjector injector_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t timers_fired_ = 0;
};

}  // namespace syncts
