#include "runtime/network.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "decomp/cover_decomposer.hpp"

namespace syncts {

TimestampedNetwork::TimestampedNetwork(
    std::shared_ptr<const EdgeDecomposition> decomposition,
    TimestampedNetworkOptions options)
    : decomposition_(std::move(decomposition)), options_(options) {
    SYNCTS_REQUIRE(decomposition_ != nullptr, "decomposition must be set");
    SYNCTS_REQUIRE(decomposition_->complete(),
                   "decomposition must cover every channel");
    SYNCTS_REQUIRE(options_.watchdog_poll.count() > 0,
                   "watchdog poll interval must be positive");
    SYNCTS_REQUIRE(options_.watchdog_grace_polls > 0,
                   "watchdog grace must be at least one poll");
    SYNCTS_REQUIRE(options_.send_timeout.count() >= 0,
                   "send timeout must be non-negative");
    for (const ChannelTimeoutRule& rule : options_.channel_timeouts) {
        SYNCTS_REQUIRE(rule.sender < num_processes() &&
                           rule.receiver < num_processes(),
                       "channel timeout rule names an unknown process");
        SYNCTS_REQUIRE(rule.timeout.count() >= 0,
                       "channel timeout must be non-negative");
    }
    mailboxes_.reserve(num_processes());
    for (std::size_t p = 0; p < num_processes(); ++p) {
        mailboxes_.push_back(std::make_unique<Mailbox>());
    }
}

TimestampedNetwork::TimestampedNetwork(const Graph& topology,
                                       TimestampedNetworkOptions options)
    : TimestampedNetwork(std::make_shared<const EdgeDecomposition>(
                             default_decomposition(topology)),
                         options) {}

std::size_t TimestampedNetwork::num_processes() const noexcept {
    return decomposition_->graph().num_vertices();
}

Mailbox& TimestampedNetwork::mailbox(ProcessId p) {
    SYNCTS_REQUIRE(p < mailboxes_.size(), "process id out of range");
    return *mailboxes_[p];
}

namespace {

/// RAII counter bump for blocked-state tracking.
class ScopedCount {
public:
    explicit ScopedCount(std::atomic<std::size_t>& counter)
        : counter_(counter) {
        counter_.fetch_add(1);
    }
    ~ScopedCount() { counter_.fetch_sub(1); }
    ScopedCount(const ScopedCount&) = delete;
    ScopedCount& operator=(const ScopedCount&) = delete;

private:
    std::atomic<std::size_t>& counter_;
};

}  // namespace

std::chrono::milliseconds TimestampedNetwork::channel_timeout(
    ProcessId from, ProcessId to) const {
    std::chrono::milliseconds timeout = options_.send_timeout;
    for (const ChannelTimeoutRule& rule : options_.channel_timeouts) {
        if (rule.sender == from && rule.receiver == to) {
            timeout = rule.timeout;
        }
    }
    return timeout;
}

std::pair<VectorTimestamp, std::uint64_t> TimestampedNetwork::rendezvous_send(
    ProcessId from, ProcessId to, std::string payload,
    const VectorTimestamp& piggyback) {
    SYNCTS_REQUIRE(decomposition_->graph().has_edge(from, to),
                   "no channel between sender and receiver in the topology");
    const std::chrono::milliseconds timeout = channel_timeout(from, to);
    FailureDetector* detector = options_.detector;
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed_ms = [&start] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    const ScopedCount blocked(blocked_);
    if (timeout.count() <= 0) {
        auto result =
            mailbox(to).offer_and_wait(from, std::move(payload), piggyback);
        if (detector != nullptr) detector->record_success(to, elapsed_ms());
        return result;
    }
    auto result = mailbox(to).offer_and_wait_for(from, std::move(payload),
                                                 piggyback, timeout);
    if (!result.has_value()) {
        if (timeout_counter_ != nullptr) timeout_counter_->inc();
        if (detector != nullptr) {
            detector->record_timeout(to, elapsed_ms());
            if (detector->suspected(to) && suspicion_counter_ != nullptr) {
                suspicion_counter_->inc();
            }
        }
        throw ChannelTimeoutError(from, to, timeout);
    }
    if (detector != nullptr) detector->record_success(to, elapsed_ms());
    return *std::move(result);
}

Mailbox::Accepted TimestampedNetwork::accept_for(
    ProcessId self, std::optional<ProcessId> from) {
    const ScopedCount blocked(blocked_);
    return mailbox(self).accept(from);
}

void TimestampedNetwork::trace_event(obs::TraceEventKind kind,
                                     ProcessId process, ProcessId peer,
                                     std::uint64_t a, std::uint64_t b,
                                     std::uint64_t logical) {
    obs::TraceSink* const sink = options_.trace;
    if (sink == nullptr) return;
    obs::TraceEvent event;
    event.virtual_time = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - trace_start_)
            .count());
    event.logical = logical;
    event.arg_a = a;
    event.arg_b = b;
    event.process = process;
    event.peer = peer;
    event.kind = kind;
    const std::lock_guard lock(trace_mutex_);
    sink->record(event);
}

void TimestampedNetwork::close_all() {
    for (const auto& box : mailboxes_) box->close();
}

RunRecord TimestampedNetwork::run(const std::vector<ProcessProgram>& programs) {
    const std::size_t n = num_processes();
    SYNCTS_REQUIRE(programs.size() == n, "one program per process required");
    seq_.store(0);
    blocked_.store(0);
    finished_.store(0);
    deadlocked_.store(false);
    trace_start_ = std::chrono::steady_clock::now();

    std::vector<std::unique_ptr<ProcessContext>> contexts;
    contexts.reserve(n);
    for (ProcessId p = 0; p < n; ++p) {
        contexts.push_back(
            std::make_unique<ProcessContext>(p, *this, decomposition_));
    }

    std::mutex error_mutex;
    std::exception_ptr first_error;
    const auto report_error = [&](std::exception_ptr error) {
        bool is_first = false;
        {
            const std::lock_guard lock(error_mutex);
            if (!first_error) {
                first_error = error;
                is_first = true;
            }
        }
        // Unblock everyone so the run can unwind. Secondary MailboxClosed
        // exceptions in other processes are expected and swallowed below.
        if (is_first) close_all();
    };

    // Register every counter before the process threads start: the send
    // path reads timeout_counter_/suspicion_counter_ concurrently, and
    // the registry itself is only mutated here.
    obs::Counter* watchdog_polls = nullptr;
    obs::Counter* watchdog_idle = nullptr;
    obs::Counter* deadlock_count = nullptr;
    if (options_.metrics != nullptr) {
        watchdog_polls = &options_.metrics->counter("net_watchdog_polls");
        watchdog_idle = &options_.metrics->counter("net_watchdog_idle_polls");
        deadlock_count = &options_.metrics->counter("net_deadlocks");
        timeout_counter_ = &options_.metrics->counter("net_channel_timeouts");
        suspicion_counter_ = &options_.metrics->counter("net_suspicions");
    }

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (ProcessId p = 0; p < n; ++p) {
        threads.emplace_back([&, p] {
            try {
                programs[p](*contexts[p]);
            } catch (const MailboxClosed&) {
                // Shutdown ripple; the primary error is already recorded
                // (or this is a watchdog-initiated teardown).
            } catch (...) {
                report_error(std::current_exception());
            }
            finished_.fetch_add(1);
        });
    }

    // Deadlock watchdog: if every unfinished process is blocked and no
    // rendezvous completes across the configured grace period, tear the
    // network down.
    std::thread watchdog([&] {
        std::uint64_t last_seq = seq_.load();
        int stable_polls = 0;
        while (finished_.load() < n) {
            std::this_thread::sleep_for(options_.watchdog_poll);
            const std::size_t done = finished_.load();
            if (done >= n) break;
            if (watchdog_polls != nullptr) watchdog_polls->inc();
            const std::uint64_t current_seq = seq_.load();
            const bool all_blocked = blocked_.load() + done >= n;
            if (all_blocked && current_seq == last_seq) {
                if (watchdog_idle != nullptr) watchdog_idle->inc();
                if (++stable_polls >= options_.watchdog_grace_polls) {
                    deadlocked_.store(true);
                    if (deadlock_count != nullptr) deadlock_count->inc();
                    report_error(std::make_exception_ptr(NetworkDeadlock()));
                    break;
                }
            } else {
                stable_polls = 0;
            }
            last_seq = current_seq;
        }
    });

    for (auto& t : threads) t.join();
    watchdog.join();

    if (first_error) std::rethrow_exception(first_error);

    // ---- Post-run reconstruction -------------------------------------
    RunRecord record{.messages = {},
                     .computation = SyncComputation(decomposition_->graph()),
                     .message_stamps = {},
                     .internal_stamps = {},
                     .internal_notes = {}};

    for (const auto& context : contexts) {
        record.messages.insert(record.messages.end(),
                               context->received_.begin(),
                               context->received_.end());
    }
    std::ranges::sort(record.messages,
                      [](const MessageRecord& a, const MessageRecord& b) {
                          return a.seq < b.seq;
                      });

    // Interleave: walk messages in global order, draining each journal's
    // internal events that precede the corresponding send/receive entry.
    std::vector<std::size_t> cursor(n, 0);
    const auto drain_until = [&](ProcessId p, std::uint64_t seq) {
        const auto& journal = contexts[p]->journal_;
        while (cursor[p] < journal.size()) {
            const JournalEntry& entry = journal[cursor[p]];
            if (entry.kind == JournalEntry::Kind::internal) {
                record.computation.add_internal(p);
                record.internal_notes.push_back(entry.note);
                ++cursor[p];
                continue;
            }
            SYNCTS_ENSURE(seq != 0 && entry.seq == seq,
                          "journal replay out of order");
            ++cursor[p];
            return;
        }
        SYNCTS_ENSURE(seq == 0, "journal missing a rendezvous entry");
    };
    for (const MessageRecord& m : record.messages) {
        drain_until(m.sender, m.seq);
        drain_until(m.receiver, m.seq);
        record.computation.add_message(m.sender, m.receiver);
        record.message_stamps.push_back(m.timestamp);
    }
    for (ProcessId p = 0; p < n; ++p) drain_until(p, 0);

    record.internal_stamps = timestamp_internal_events(
        record.computation, record.message_stamps, width());
    if (options_.metrics != nullptr) {
        options_.metrics->counter("net_rendezvous")
            .inc(record.messages.size());
        options_.metrics->counter("net_internal_events")
            .inc(record.computation.num_internal_events());
    }
    return record;
}

TimestampArena RunRecord::stamp_arena() const {
    const std::size_t width =
        message_stamps.empty() ? 0 : message_stamps.front().width();
    TimestampArena arena(width, message_stamps.size());
    for (const VectorTimestamp& stamp : message_stamps) {
        arena.allocate(stamp.components());
    }
    return arena;
}

}  // namespace syncts
