#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "clocks/online_clock.hpp"
#include "clocks/vector_timestamp.hpp"
#include "runtime/mailbox.hpp"

/// \file process.hpp
/// The per-process face of the threaded runtime. Each process runs user
/// code on its own thread against a ProcessContext, which provides the
/// blocking synchronous send/receive operations and transparently runs the
/// Fig. 5 clock protocol (piggybacking vectors on messages and
/// acknowledgements). The clock is strictly thread-local — synchronization
/// happens only through mailbox rendezvous — so the protocol needs no
/// locks of its own.

namespace syncts {

class TimestampedNetwork;

/// One message as observed by its receiver, with the agreed timestamp.
struct MessageRecord {
    std::uint64_t seq = 0;  // global rendezvous order
    ProcessId sender = 0;
    ProcessId receiver = 0;
    std::string payload;
    VectorTimestamp timestamp;
};

/// What a receive() returns to user code.
struct ReceivedMessage {
    ProcessId sender = 0;
    std::string payload;
    VectorTimestamp timestamp;
};

/// One entry of a process's local journal, used to reconstruct the
/// computation (and Section 5 event timestamps) after the run.
struct JournalEntry {
    enum class Kind { send, receive, internal };
    Kind kind = Kind::internal;
    ProcessId peer = kNoProcess;   // send/receive only
    std::uint64_t seq = 0;         // send/receive: global rendezvous order
    std::string note;              // internal only
    VectorTimestamp timestamp;     // send/receive: the message timestamp
};

class ProcessContext {
public:
    ProcessContext(ProcessId self, TimestampedNetwork& network,
                   std::shared_ptr<const EdgeDecomposition> decomposition);

    ProcessContext(const ProcessContext&) = delete;
    ProcessContext& operator=(const ProcessContext&) = delete;

    ProcessId self() const noexcept { return clock_.self(); }

    /// Number of processes in the network.
    std::size_t num_processes() const noexcept;

    /// Timestamp width d.
    std::size_t width() const noexcept { return clock_.current().width(); }

    /// Synchronous send: blocks until `to` receives the message and the
    /// acknowledgement returns. Returns the message's timestamp.
    VectorTimestamp send(ProcessId to, std::string payload);

    /// Blocks for a message from anyone.
    ReceivedMessage receive();

    /// Blocks for a message from `from` specifically.
    ReceivedMessage receive_from(ProcessId from);

    /// Non-blocking probe for pending traffic.
    bool poll(std::optional<ProcessId> from = std::nullopt);

    /// Records an internal event; its Section 5 timestamp is available
    /// from the network record after the run.
    void internal_event(std::string note = {});

    /// This process's current clock vector.
    const VectorTimestamp& clock() const noexcept { return clock_.current(); }

    const std::vector<JournalEntry>& journal() const noexcept {
        return journal_;
    }

private:
    friend class TimestampedNetwork;

    ReceivedMessage receive_impl(std::optional<ProcessId> from);

    TimestampedNetwork& network_;
    OnlineProcessClock clock_;
    std::vector<JournalEntry> journal_;
    std::vector<MessageRecord> received_;
};

/// A process program: arbitrary user code driven against the context.
using ProcessProgram = std::function<void(ProcessContext&)>;

}  // namespace syncts
