#include "runtime/synchronizer.hpp"

#include <utility>
#include <vector>

#include "common/check.hpp"
#include "runtime/reconfig_runtime.hpp"
#include "topo/topology_manager.hpp"

namespace syncts {

std::string ProtocolStats::to_string() const {
    return "retransmits=" + std::to_string(retransmits) +
           " timeouts=" + std::to_string(timeouts) +
           " dup_drops=" + std::to_string(dup_drops) +
           " ack_replays=" + std::to_string(ack_replays) +
           " corrupt_rejects=" + std::to_string(corrupt_rejects);
}

ProtocolStats legacy_protocol_stats(obs::MetricsRegistry& metrics) {
    ProtocolStats stats;
    stats.retransmits = metrics.counter("sync_retransmits").value();
    stats.timeouts = metrics.counter("sync_timeouts").value();
    // The historical aggregation: replays were double-counted as
    // duplicate drops. The registry counters are non-overlapping, so the
    // legacy number is their sum.
    stats.dup_drops = metrics.counter("sync_req_duplicates").value() +
                      metrics.counter("sync_ack_duplicates").value() +
                      metrics.counter("sync_ack_replays").value();
    stats.ack_replays = metrics.counter("sync_ack_replays").value();
    stats.corrupt_rejects =
        metrics.counter("sync_frames_corrupt_rejected").value();
    return stats;
}

SynchronizerResult run_rendezvous_protocol(
    std::shared_ptr<const EdgeDecomposition> decomposition,
    const SyncComputation& script, const SynchronizerOptions& options) {
    SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
    SYNCTS_REQUIRE(decomposition->graph().num_vertices() ==
                       script.num_processes(),
                   "script and decomposition disagree on process count");
    // One-epoch topology around the caller's decomposition; the
    // reconfigurable driver at epoch 0 speaks the v1 wire layout and
    // replays the script exactly as the pre-epoch synchronizer did.
    TopologyManager topology((EdgeDecomposition(*decomposition)));
    const std::vector<SyncComputation> scripts{script};
    ReconfigurableRunResult multi =
        run_reconfigurable_protocol(topology, scripts, options);
    SYNCTS_ENSURE(multi.segments.size() == 1,
                  "single-epoch run produced multiple segments");
    EpochSegmentResult& segment = multi.segments.front();
    return SynchronizerResult{
        .computation = std::move(segment.computation),
        .message_stamps = std::move(segment.message_stamps),
        .script_message = std::move(segment.script_message),
        .virtual_duration = multi.virtual_duration,
        .packets = multi.packets,
        .network_faults = multi.network_faults};
}

}  // namespace syncts
