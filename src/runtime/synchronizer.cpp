#include "runtime/synchronizer.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>

#include "clocks/wire.hpp"
#include "common/check.hpp"
#include "common/timestamp_arena.hpp"
#include "common/ts_kernels.hpp"
#include "runtime/async_sim.hpp"

namespace syncts {

std::string ProtocolStats::to_string() const {
    return "retransmits=" + std::to_string(retransmits) +
           " timeouts=" + std::to_string(timeouts) +
           " dup_drops=" + std::to_string(dup_drops) +
           " ack_replays=" + std::to_string(ack_replays) +
           " corrupt_rejects=" + std::to_string(corrupt_rejects);
}

namespace {

constexpr std::uint32_t kReq = 0;
constexpr std::uint32_t kAck = 1;

/// Sender-side state of the one in-flight rendezvous (a process's script
/// is sequential, so it blocks on at most one send at a time).
struct Outstanding {
    ProcessId receiver = 0;
    MessageId mid = 0;
    std::uint64_t sequence = 0;
    std::vector<std::uint8_t> frame;  // encoded REQ, byte-identical resends
    std::uint32_t retransmits = 0;
    std::uint64_t rto = 0;              // current backoff interval
    std::uint64_t first_send_time = 0;  // for the rendezvous-ticks histogram
};

/// Plain tallies kept unconditionally (they back both the deprecated
/// ProtocolStats shim and the registry counters). Unlike the legacy
/// struct these never count one event twice: a cached-ACK replay is an
/// ack_replay only, not also a duplicate drop.
struct Tally {
    std::uint64_t req_sent = 0;
    std::uint64_t commits = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t req_duplicates = 0;  ///< dup/stale REQs dropped, no reply
    std::uint64_t ack_duplicates = 0;  ///< dup/stale ACKs dropped
    std::uint64_t ack_replays = 0;     ///< cached ACK re-sent
    std::uint64_t corrupt_rejects = 0;
};

/// Receiver-side state of one directed channel (peer -> self).
struct InChannel {
    /// Sequence of the last committed rendezvous on this channel; fresh
    /// REQs must carry last_committed + 1 (sequences are 1-based).
    std::uint64_t last_committed = 0;
    /// Fresh REQ waiting for the program to reach the matching receive.
    std::optional<SyncFrame> pending;
    /// Encoded ACK of the last committed rendezvous, replayed when a
    /// duplicate REQ reveals the ACK was lost.
    std::vector<std::uint8_t> cached_ack;
};

/// Per-process protocol engine: walks the process's script, issuing REQs
/// for sends and consuming buffered REQs for receives.
struct Engine {
    ProcessId self = 0;
    std::vector<ProcessEvent> script;  // message events only
    std::size_t cursor = 0;
    std::unique_ptr<OnlineProcessClock> clock;
    std::optional<Outstanding> outstanding;
    /// next_sequence[q] — next sequence to assign on channel (self, q).
    std::unordered_map<ProcessId, std::uint64_t> next_sequence;
    /// Incoming-channel state by sender.
    std::unordered_map<ProcessId, InChannel> in;
    /// Width-d scratch for the span protocol hooks: decoded inbound
    /// stamp, outbound acknowledgement, committed timestamp. Sized once
    /// at setup so the per-packet path allocates nothing.
    std::vector<std::uint64_t> rx_stamp;
    std::vector<std::uint64_t> ack_scratch;
    std::vector<std::uint64_t> stamp_scratch;
};

}  // namespace

SynchronizerResult run_rendezvous_protocol(
    std::shared_ptr<const EdgeDecomposition> decomposition,
    const SyncComputation& script, const SynchronizerOptions& options) {
    SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
    const std::size_t n = script.num_processes();
    SYNCTS_REQUIRE(decomposition->graph().num_vertices() == n,
                   "script and decomposition disagree on process count");
    SYNCTS_REQUIRE(options.max_retransmits > 0,
                   "max_retransmits must be positive");
    SYNCTS_REQUIRE(options.max_backoff_exponent <= 32,
                   "max_backoff_exponent out of range");
    const std::size_t d = decomposition->size();

    Tally tally;
    obs::TraceSink* const sink = options.trace;
    obs::Histogram* rendezvous_hist = nullptr;
    obs::Histogram* attempts_hist = nullptr;
    if (options.metrics != nullptr) {
        rendezvous_hist = &options.metrics->histogram("sync_rendezvous_ticks");
        attempts_hist =
            &options.metrics->histogram("sync_attempts_per_message");
    }
    // One line per protocol event; `logical` is the acting process's
    // clock-vector total at record time, tying wire activity to causal
    // progress. Only evaluated when tracing is on.
    const auto trace = [&](obs::TraceEventKind kind, std::uint64_t now,
                           ProcessId process, ProcessId peer,
                           std::uint64_t a, std::uint64_t b,
                           std::uint64_t logical) {
        if (sink == nullptr) return;
        obs::TraceEvent event;
        event.virtual_time = now;
        event.logical = logical;
        event.arg_a = a;
        event.arg_b = b;
        event.process = process;
        event.peer = peer;
        event.kind = kind;
        sink->record(event);
    };

    AsyncSimulator network(n, options.seed);
    network.set_uniform_latency(options.latency_lo, options.latency_hi);
    network.set_fault_plan(options.faults);

    // Retransmission is armed whenever the network can lose or corrupt a
    // packet (or the caller asks for it explicitly); on a reliable network
    // it stays off so the wire profile is exactly 2 packets per message.
    const bool retransmission = options.retransmit_timeout > 0 ||
                                options.faults.active();
    const std::uint64_t base_rto =
        options.retransmit_timeout > 0
            ? options.retransmit_timeout
            : 4 * (options.latency_hi + options.faults.max_extra_delay) + 1;
    const std::uint64_t max_rto = base_rto << options.max_backoff_exponent;

    std::vector<Engine> engines(n);
    for (ProcessId p = 0; p < n; ++p) {
        engines[p].self = p;
        for (const ProcessEvent& event : script.process_events(p)) {
            if (event.kind == ProcessEvent::Kind::message) {
                engines[p].script.push_back(event);
            }
        }
        engines[p].clock =
            std::make_unique<OnlineProcessClock>(p, decomposition);
        engines[p].rx_stamp.resize(d);
        engines[p].ack_scratch.resize(d);
        engines[p].stamp_scratch.resize(d);
    }

    SynchronizerResult result{
        .computation = SyncComputation(decomposition->graph()),
        .message_stamps = {},
        .script_message = {},
        .virtual_duration = 0,
        .packets = 0,
        .protocol = {},
        .network_faults = {}};
    // Committed stamps live in one arena (slot = realized-message index);
    // handle_by_script maps script ids to slots for the sender-side
    // cross-check.
    TimestampArena stamp_arena(d, script.num_messages());
    std::vector<TsHandle> handle_by_script(script.num_messages(),
                                           kNoTimestamp);

    // Re-arms the retransmission timer for the sender's current
    // outstanding REQ. Timers are never cancelled; a fired timer checks
    // that the exact (receiver, sequence) it was armed for is still
    // outstanding and otherwise does nothing.
    std::function<void(std::uint64_t, ProcessId)> arm_timer =
        [&](std::uint64_t now, ProcessId p) {
            const Outstanding& out = *engines[p].outstanding;
            const ProcessId receiver = out.receiver;
            const std::uint64_t sequence = out.sequence;
            network.schedule(now + out.rto, [&, p, receiver,
                                             sequence](std::uint64_t when) {
                Engine& engine = engines[p];
                if (!engine.outstanding ||
                    engine.outstanding->receiver != receiver ||
                    engine.outstanding->sequence != sequence) {
                    return;  // ACK arrived; stale timer
                }
                Outstanding& out_now = *engine.outstanding;
                ++tally.timeouts;
                trace(obs::TraceEventKind::timeout, when, p, receiver,
                      sequence, out_now.mid,
                      ts::total(engine.clock->current_span()));
                if (out_now.retransmits >= options.max_retransmits) {
                    throw SynchronizerStalled(
                        "message " + std::to_string(out_now.mid) +
                        " from P" + std::to_string(p) + " to P" +
                        std::to_string(receiver) + " exhausted " +
                        std::to_string(options.max_retransmits) +
                        " retransmissions");
                }
                ++out_now.retransmits;
                ++tally.retransmits;
                trace(obs::TraceEventKind::retransmit, when, p, receiver,
                      sequence, out_now.mid,
                      ts::total(engine.clock->current_span()));
                Packet req;
                req.source = p;
                req.destination = receiver;
                req.kind = kReq;
                req.tag = out_now.mid;
                req.body = out_now.frame;
                network.send(when, std::move(req));
                out_now.rto = std::min(out_now.rto * 2, max_rto);
                arm_timer(when, p);
            });
        };

    // Forward declaration dance: progress() sends packets and is called
    // from the delivery handler.
    std::function<void(std::uint64_t, ProcessId)> progress =
        [&](std::uint64_t now, ProcessId p) {
            Engine& engine = engines[p];
            while (engine.cursor < engine.script.size()) {
                const MessageId mid = engine.script[engine.cursor].index;
                const SyncMessage& m = script.message(mid);
                if (m.sender == p) {
                    if (engine.outstanding) return;  // blocked on the wire
                    // Sequences are 1-based per directed channel.
                    const std::uint64_t sequence =
                        ++engine.next_sequence[m.receiver];
                    Packet req;
                    req.source = p;
                    req.destination = m.receiver;
                    req.kind = kReq;
                    encode_frame_into(sequence, mid,
                                      engine.clock->current_span(),
                                      req.body);
                    engine.outstanding = Outstanding{
                        .receiver = m.receiver,
                        .mid = mid,
                        .sequence = sequence,
                        .frame = req.body,
                        .retransmits = 0,
                        .rto = base_rto,
                        .first_send_time = now};
                    ++tally.req_sent;
                    trace(obs::TraceEventKind::send, now, p, m.receiver,
                          sequence, mid,
                          ts::total(engine.clock->current_span()));
                    network.send(now, std::move(req));
                    if (retransmission) arm_timer(now, p);
                    return;
                }
                // Receive action: consume the buffered fresh REQ if any.
                InChannel& channel = engine.in[m.sender];
                if (!channel.pending) return;  // wait for the REQ packet
                const SyncFrame req = *std::move(channel.pending);
                channel.pending.reset();
                SYNCTS_ENSURE(req.message == mid,
                              "REQ does not match the scripted receive");
                engine.clock->on_receive_into(m.sender,
                                              req.stamp.components(),
                                              engine.ack_scratch,
                                              engine.stamp_scratch);
                // Commit: the rendezvous instant, exactly once per
                // sequence — duplicates never reach this line.
                channel.last_committed = req.sequence;
                ++tally.commits;
                trace(obs::TraceEventKind::commit, now, p, m.sender,
                      req.sequence, mid, ts::total(engine.stamp_scratch));
                result.computation.add_message(m.sender, m.receiver);
                result.script_message.push_back(mid);
                handle_by_script[mid] =
                    stamp_arena.allocate(engine.stamp_scratch);
                encode_frame_into(req.sequence, mid, engine.ack_scratch,
                                  channel.cached_ack);
                Packet ack;
                ack.source = p;
                ack.destination = m.sender;
                ack.kind = kAck;
                ack.tag = mid;
                ack.body = channel.cached_ack;
                network.send(now, std::move(ack));
                ++engine.cursor;
            }
        };

    const auto handle_req = [&](std::uint64_t now, ProcessId p,
                                const Packet& packet,
                                const FrameHeader& header) {
        Engine& engine = engines[p];
        InChannel& channel = engine.in[packet.source];
        if (header.sequence == channel.last_committed + 1) {
            if (channel.pending) {
                // Duplicate of a REQ already buffered for the program.
                SYNCTS_ENSURE(channel.pending->sequence == header.sequence,
                              "two distinct uncommitted REQs on one channel");
                ++tally.req_duplicates;
                trace(obs::TraceEventKind::duplicate_drop, now, p,
                      packet.source, header.sequence, header.message,
                      ts::total(engine.clock->current_span()));
                return;
            }
            // The program may not have reached the matching receive yet,
            // so the stamp is copied out of the scratch into an owning
            // buffered frame — the only copy on the fresh-REQ path.
            channel.pending = SyncFrame{
                header.sequence, header.message,
                VectorTimestamp(
                    std::span<const std::uint64_t>(engine.rx_stamp))};
            trace(obs::TraceEventKind::receive, now, p, packet.source,
                  header.sequence, header.message,
                  ts::total(engine.clock->current_span()));
            progress(now, p);
            return;
        }
        if (header.sequence == channel.last_committed &&
            channel.last_committed > 0) {
            // The sender retransmitted after commit: its ACK was lost (or
            // this REQ copy was duplicated in flight). Replay the cached
            // ACK; the clock is not touched, so no double increment.
            SYNCTS_ENSURE(!channel.cached_ack.empty(),
                          "committed channel has no cached ACK");
            // Counted once: the REQ copy is answered (with the cached
            // ACK), not suppressed, so it is an ack_replay and *not* also
            // a req_duplicate. The deprecated ProtocolStats shim still
            // folds replays into dup_drops for legacy callers.
            ++tally.ack_replays;
            trace(obs::TraceEventKind::ack_replay, now, p, packet.source,
                  header.sequence, header.message,
                  ts::total(engine.clock->current_span()));
            Packet ack;
            ack.source = p;
            ack.destination = packet.source;
            ack.kind = kAck;
            ack.tag = packet.tag;
            ack.body = channel.cached_ack;
            network.send(now, std::move(ack));
            return;
        }
        // A sender never advances past an unacknowledged sequence, so
        // anything else is a stale copy from an older rendezvous.
        SYNCTS_ENSURE(header.sequence < channel.last_committed,
                      "REQ sequence from the future");
        ++tally.req_duplicates;
        trace(obs::TraceEventKind::duplicate_drop, now, p, packet.source,
              header.sequence, header.message,
              ts::total(engine.clock->current_span()));
    };

    const auto handle_ack = [&](std::uint64_t now, ProcessId p,
                                const Packet& packet,
                                const FrameHeader& header) {
        Engine& engine = engines[p];
        if (!engine.outstanding ||
            engine.outstanding->receiver != packet.source ||
            engine.outstanding->sequence != header.sequence) {
            // Duplicate or replayed ACK for a rendezvous already finished.
            ++tally.ack_duplicates;
            trace(obs::TraceEventKind::duplicate_drop, now, p, packet.source,
                  header.sequence, header.message,
                  ts::total(engine.clock->current_span()));
            return;
        }
        const MessageId mid = engine.outstanding->mid;
        SYNCTS_ENSURE(header.message == mid,
                      "ACK does not match the pending send");
        engine.clock->on_ack_into(packet.source, engine.rx_stamp,
                                  engine.stamp_scratch);
        SYNCTS_ENSURE(handle_by_script[mid] != kNoTimestamp &&
                          ts::equal(engine.stamp_scratch,
                                    stamp_arena.span(handle_by_script[mid])),
                      "sender and receiver disagree on a timestamp");
        trace(obs::TraceEventKind::ack, now, p, packet.source,
              header.sequence, mid, ts::total(engine.stamp_scratch));
        if (rendezvous_hist != nullptr) {
            rendezvous_hist->record(now -
                                    engine.outstanding->first_send_time);
            attempts_hist->record(engine.outstanding->retransmits + 1);
        }
        engine.outstanding.reset();
        ++engine.cursor;
        progress(now, p);
    };

    for (ProcessId p = 0; p < n; ++p) {
        network.on_deliver(p, [&, p](std::uint64_t now, const Packet& packet) {
            FrameHeader header;
            try {
                header = decode_frame_into(packet.body, engines[p].rx_stamp);
            } catch (const WireError&) {
                // Corrupted in flight: count, discard, and let the
                // sender's retransmission (or ACK replay) recover.
                ++tally.corrupt_rejects;
                trace(obs::TraceEventKind::corrupt_reject, now, p,
                      packet.source, packet.kind, packet.tag,
                      ts::total(engines[p].clock->current_span()));
                return;
            }
            if (packet.kind == kReq) {
                handle_req(now, p, packet, header);
            } else {
                handle_ack(now, p, packet, header);
            }
        });
    }

    // Kick off every process at time 0.
    for (ProcessId p = 0; p < n; ++p) progress(0, p);
    result.virtual_duration = network.run();
    result.packets = network.packets_delivered();
    result.network_faults = network.fault_stats();

    // Deprecated ProtocolStats shim: dup_drops keeps the historical
    // aggregation (replays were double-counted as duplicate drops).
    result.protocol.retransmits = tally.retransmits;
    result.protocol.timeouts = tally.timeouts;
    result.protocol.dup_drops =
        tally.req_duplicates + tally.ack_duplicates + tally.ack_replays;
    result.protocol.ack_replays = tally.ack_replays;
    result.protocol.corrupt_rejects = tally.corrupt_rejects;

    if (options.metrics != nullptr) {
        obs::MetricsRegistry& m = *options.metrics;
        m.counter("sync_req_sent").inc(tally.req_sent);
        m.counter("sync_commits").inc(tally.commits);
        m.counter("sync_retransmits").inc(tally.retransmits);
        m.counter("sync_timeouts").inc(tally.timeouts);
        m.counter("sync_req_duplicates").inc(tally.req_duplicates);
        m.counter("sync_ack_duplicates").inc(tally.ack_duplicates);
        m.counter("sync_ack_replays").inc(tally.ack_replays);
        m.counter("sync_frames_corrupt_rejected").inc(tally.corrupt_rejects);
        m.counter("sync_packets_delivered").inc(result.packets);
        m.counter("sync_runs").inc();
        m.gauge("sync_virtual_ticks")
            .set(static_cast<std::int64_t>(result.virtual_duration));
        m.counter("net_packets_dropped")
            .inc(result.network_faults.dropped +
                 result.network_faults.targeted_drops);
        m.counter("net_packets_duplicated")
            .inc(result.network_faults.duplicated);
        m.counter("net_packets_corrupted")
            .inc(result.network_faults.corrupted);
        m.counter("net_packets_delayed").inc(result.network_faults.delayed);
    }

    for (const Engine& engine : engines) {
        SYNCTS_ENSURE(engine.cursor == engine.script.size(),
                      "protocol finished with unexecuted script actions");
        SYNCTS_ENSURE(!engine.outstanding, "protocol finished mid-rendezvous");
    }
    SYNCTS_ENSURE(result.computation.num_messages() == script.num_messages(),
                  "not every scripted message was realized");
    // Materialize the record once, in commit order (arena slot order).
    result.message_stamps.reserve(stamp_arena.size());
    for (std::size_t i = 0; i < stamp_arena.size(); ++i) {
        result.message_stamps.emplace_back(
            stamp_arena.span(static_cast<TsHandle>(i)));
    }
    return result;
}

}  // namespace syncts
