#include "runtime/synchronizer.hpp"

#include <utility>
#include <vector>

#include "common/check.hpp"
#include "runtime/reconfig_runtime.hpp"
#include "topo/topology_manager.hpp"

namespace syncts {

SynchronizerResult run_rendezvous_protocol(
    std::shared_ptr<const EdgeDecomposition> decomposition,
    const SyncComputation& script, const SynchronizerOptions& options) {
    SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
    SYNCTS_REQUIRE(decomposition->graph().num_vertices() ==
                       script.num_processes(),
                   "script and decomposition disagree on process count");
    // One-epoch topology around the caller's decomposition; the
    // reconfigurable driver at epoch 0 speaks the v1 wire layout and
    // replays the script exactly as the pre-epoch synchronizer did.
    TopologyManager topology((EdgeDecomposition(*decomposition)));
    const std::vector<SyncComputation> scripts{script};
    ReconfigurableRunResult multi =
        run_reconfigurable_protocol(topology, scripts, options);
    SYNCTS_ENSURE(multi.segments.size() == 1,
                  "single-epoch run produced multiple segments");
    EpochSegmentResult& segment = multi.segments.front();
    return SynchronizerResult{
        .computation = std::move(segment.computation),
        .message_stamps = std::move(segment.message_stamps),
        .script_message = std::move(segment.script_message),
        .virtual_duration = multi.virtual_duration,
        .packets = multi.packets,
        .network_faults = multi.network_faults,
        .protocol = multi.protocol};
}

}  // namespace syncts
