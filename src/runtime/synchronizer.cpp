#include "runtime/synchronizer.hpp"

#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "runtime/async_sim.hpp"

namespace syncts {

namespace {

constexpr std::uint32_t kReq = 0;
constexpr std::uint32_t kAck = 1;

std::vector<std::uint64_t> to_body(const VectorTimestamp& stamp) {
    return {stamp.components().begin(), stamp.components().end()};
}

VectorTimestamp from_body(const std::vector<std::uint64_t>& body) {
    return VectorTimestamp(body);
}

/// Per-process protocol engine: walks the process's script, issuing REQs
/// for sends and consuming buffered REQs for receives.
struct Engine {
    ProcessId self = 0;
    std::vector<ProcessEvent> script;  // message events only
    std::size_t cursor = 0;
    bool awaiting_ack = false;
    std::unique_ptr<OnlineProcessClock> clock;
    /// Buffered REQs by sender (payload = piggybacked vector, tag).
    std::unordered_map<ProcessId, std::deque<Packet>> pending;
};

}  // namespace

SynchronizerResult run_rendezvous_protocol(
    std::shared_ptr<const EdgeDecomposition> decomposition,
    const SyncComputation& script, const SynchronizerOptions& options) {
    SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
    const std::size_t n = script.num_processes();
    SYNCTS_REQUIRE(decomposition->graph().num_vertices() == n,
                   "script and decomposition disagree on process count");

    AsyncSimulator network(n, options.seed);
    network.set_uniform_latency(options.latency_lo, options.latency_hi);

    std::vector<Engine> engines(n);
    for (ProcessId p = 0; p < n; ++p) {
        engines[p].self = p;
        for (const ProcessEvent& event : script.process_events(p)) {
            if (event.kind == ProcessEvent::Kind::message) {
                engines[p].script.push_back(event);
            }
        }
        engines[p].clock =
            std::make_unique<OnlineProcessClock>(p, decomposition);
    }

    SynchronizerResult result{
        .computation = SyncComputation(decomposition->graph()),
        .message_stamps = {},
        .script_message = {},
        .virtual_duration = 0,
        .packets = 0};
    std::vector<VectorTimestamp> stamp_by_script(script.num_messages());

    // Forward declaration dance: progress() sends packets and is called
    // from the delivery handler.
    std::function<void(std::uint64_t, ProcessId)> progress =
        [&](std::uint64_t now, ProcessId p) {
            Engine& engine = engines[p];
            while (engine.cursor < engine.script.size()) {
                const MessageId mid = engine.script[engine.cursor].index;
                const SyncMessage& m = script.message(mid);
                if (m.sender == p) {
                    if (engine.awaiting_ack) return;  // blocked on the wire
                    Packet req;
                    req.source = p;
                    req.destination = m.receiver;
                    req.kind = kReq;
                    req.tag = mid;
                    req.body = to_body(engine.clock->prepare_send());
                    network.send(now, std::move(req));
                    engine.awaiting_ack = true;
                    return;
                }
                // Receive action: consume the buffered REQ if it arrived.
                auto& queue = engine.pending[m.sender];
                if (queue.empty()) return;  // wait for the REQ packet
                const Packet req = std::move(queue.front());
                queue.pop_front();
                SYNCTS_ENSURE(req.tag == mid,
                              "REQ does not match the scripted receive");
                const auto [ack_vector, timestamp] =
                    engine.clock->on_receive(m.sender, from_body(req.body));
                // Commit: the rendezvous instant, in receiver order.
                result.computation.add_message(m.sender, m.receiver);
                result.message_stamps.push_back(timestamp);
                result.script_message.push_back(mid);
                stamp_by_script[mid] = timestamp;
                Packet ack;
                ack.source = p;
                ack.destination = m.sender;
                ack.kind = kAck;
                ack.tag = mid;
                ack.body = to_body(ack_vector);
                network.send(now, std::move(ack));
                ++engine.cursor;
            }
        };

    for (ProcessId p = 0; p < n; ++p) {
        network.on_deliver(p, [&, p](std::uint64_t now, const Packet& packet) {
            Engine& engine = engines[p];
            if (packet.kind == kReq) {
                engine.pending[packet.source].push_back(packet);
            } else {
                SYNCTS_ENSURE(engine.awaiting_ack,
                              "unexpected ACK: process was not blocked");
                const MessageId mid = engine.script[engine.cursor].index;
                SYNCTS_ENSURE(packet.tag == mid,
                              "ACK does not match the pending send");
                const VectorTimestamp stamp = engine.clock->on_acknowledgement(
                    packet.source, from_body(packet.body));
                SYNCTS_ENSURE(stamp == stamp_by_script[mid],
                              "sender and receiver disagree on a timestamp");
                engine.awaiting_ack = false;
                ++engine.cursor;
            }
            progress(now, p);
        });
    }

    // Kick off every process at time 0.
    for (ProcessId p = 0; p < n; ++p) progress(0, p);
    result.virtual_duration = network.run();
    result.packets = network.packets_delivered();

    for (const Engine& engine : engines) {
        SYNCTS_ENSURE(engine.cursor == engine.script.size(),
                      "protocol finished with unexecuted script actions");
        SYNCTS_ENSURE(!engine.awaiting_ack, "protocol finished mid-rendezvous");
    }
    SYNCTS_ENSURE(result.computation.num_messages() == script.num_messages(),
                  "not every scripted message was realized");
    return result;
}

}  // namespace syncts
