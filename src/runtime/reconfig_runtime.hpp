#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "runtime/synchronizer.hpp"
#include "topo/topology_manager.hpp"
#include "trace/computation.hpp"

/// \file reconfig_runtime.hpp
/// The rendezvous protocol over a *reconfigurable* topology.
///
/// A TopologyManager fixes a sequence of immutable epochs (docs/
/// TOPOLOGY.md); this driver pushes one scripted computation per epoch
/// through the REQ/ACK protocol of synchronizer.hpp on a single
/// continuous packet network. Epoch transitions follow the barrier
/// model: when every epoch-e message has committed and every sender is
/// unblocked, the whole system crosses into epoch e+1 at the current
/// virtual time — clocks are rebuilt for the new decomposition (the old
/// epoch's high-water mark folds into each engine's floor), scratch
/// buffers are resized to the new width d, and the per-epoch script
/// resumes. Per-directed-channel sequence numbers continue across the
/// barrier, so the duplicate-suppression state stays valid for late
/// copies of old traffic.
///
/// Late traffic is the interesting part: the network is allowed to hold
/// duplicated or delayed frames from epoch e while the system is in
/// e+1. Every frame carries its epoch (wire format v2; epoch-0 frames
/// are bit-identical to the pre-epoch v1 layout), and a receiver that
/// sees an epoch-stale REQ rejects it and answers with a NACK naming
/// the current epoch instead of replaying a cached ACK from a dead
/// topology. Epoch-stale ACKs and NACKs are dropped and counted. A
/// NACK that still matches an in-flight send re-encodes the REQ at the
/// current epoch and resends immediately — under the barrier model this
/// path is a safety net (a sender can never be blocked across a
/// transition), but it keeps the protocol honest if the barrier is ever
/// relaxed.
///
/// Counters published to SynchronizerOptions::metrics, beyond the
/// single-epoch `sync_*` set: `sync_epoch_transitions`,
/// `sync_epoch_rejects`, `sync_nacks_sent`, `sync_nack_drops`,
/// `sync_nack_retransmits` (docs/OBSERVABILITY.md).
///
/// Crash recovery (docs/RECOVERY.md): when the fault plan carries crash
/// rules (or RecoveryOptions::enabled is set), every process keeps a
/// durable store — a checksummed snapshot of its full protocol state
/// plus a write-ahead log of sent/committed/acknowledged frames with
/// group flush points. A crash wipes the volatile engine and the WAL's
/// unflushed tail; after the rule's downtime the process restarts,
/// replays the log over the latest snapshot (reconstructing state
/// bit-identical to a never-crashed process, enforced with ENSUREs on
/// every re-derived stamp), and runs a HELLO/HELLO_ACK rejoin handshake
/// so neighbors replay the frames it lost from their per-channel
/// windows. Re-executed sends reproduce the original bytes under the
/// original sequence numbers, so the realized computation and every
/// timestamp are unchanged by any crash schedule the run survives.
/// Snapshots double as WAL truncation points (the stability rule of
/// Drummond–Barbosa-style logging), and every epoch barrier checkpoints,
/// so a rewind never crosses a barrier. `recover_*` and
/// `net_down_drops` counters cover the whole layer.

namespace syncts {

/// One epoch's slice of a reconfigurable run — the same record
/// run_rendezvous_protocol produces for its single epoch.
struct EpochSegmentResult {
    /// Which epoch of the TopologyManager this segment ran under.
    EpochId epoch = 0;

    /// The realized computation on that epoch's topology: same messages
    /// and per-process orders as the epoch's script, instants renumbered
    /// to commit order.
    SyncComputation computation;

    /// message_stamps[m] — timestamp of realized message m (commit
    /// order), width = the epoch's decomposition size d. Per-epoch
    /// stamps are relative to the epoch barrier; add the engine floor
    /// for absolute values (docs/TOPOLOGY.md).
    std::vector<VectorTimestamp> message_stamps;

    /// For each realized message, the epoch-script MessageId it
    /// corresponds to.
    std::vector<MessageId> script_message;
};

struct ReconfigurableRunResult {
    /// One segment per epoch, in epoch order (possibly empty segments
    /// for epochs whose script has no messages).
    std::vector<EpochSegmentResult> segments;

    /// Total virtual time until the last packet was delivered.
    std::uint64_t virtual_duration = 0;

    /// Packets delivered off the wire across all epochs (REQ + ACK +
    /// NACK + faults-induced extras).
    std::uint64_t packets = 0;

    /// What the network injected over the whole run.
    FaultStats network_faults;

    /// Wire-level accounting of the sent traffic (docs/PROTOCOL.md).
    ProtocolStats protocol;
};

/// Replays `scripts[e]` through the protocol under epoch e of
/// `topology`, for every epoch, with barrier transitions in between.
/// Requires scripts.size() == topology.num_epochs() and each script's
/// topology to match its epoch's graph. Per-epoch timestamps are
/// bit-identical to a fresh single-epoch run of that epoch's script on
/// that epoch's decomposition (the headline property tests assert).
ReconfigurableRunResult run_reconfigurable_protocol(
    const TopologyManager& topology, std::span<const SyncComputation> scripts,
    const SynchronizerOptions& options = {});

}  // namespace syncts
