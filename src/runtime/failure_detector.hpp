#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

/// \file failure_detector.hpp
/// Accrual failure detection for the threaded synchronous network
/// (docs/RECOVERY.md).
///
/// Every completed rendezvous with a peer is a heartbeat; every send
/// watchdog expiry (ChannelTimeoutError) is accumulated silence. The
/// detector keeps an exponentially-weighted mean of the observed
/// inter-rendezvous intervals per peer and, following the phi-accrual
/// construction of Hayashibara et al. specialized to an exponential
/// inter-arrival model, reports a *suspicion level*
///
///     phi(peer) = -log10 P(peer is alive given the silence)
///               = silence / (mean_interval * ln 10)
///
/// instead of a binary verdict. Callers pick the threshold: phi >= 1
/// tolerates a 10% false-suspicion rate, phi >= 3 a 0.1% rate. A
/// successful rendezvous resets the silence, so suspicion is never
/// sticky — a slow peer that recovers is trusted again immediately,
/// which is the graceful-degradation half of the crash-recovery story
/// (the rejoin handshake is the other half).
///
/// Thread-safe: the network records observations from every process
/// thread concurrently.

namespace syncts {

class FailureDetector {
public:
    /// `phi_threshold` is the suspicion level at/above which a peer is
    /// reported suspected. Must be positive.
    explicit FailureDetector(double phi_threshold = 3.0);

    /// A rendezvous with `peer` completed after `interval_ms` of waiting:
    /// feed the interval estimate and clear the accumulated silence.
    void record_success(ProcessId peer, double interval_ms);

    /// A send toward `peer` waited `waited_ms` and gave up: accumulate
    /// the silence.
    void record_timeout(ProcessId peer, double waited_ms);

    /// Current suspicion level for `peer` (0 when never observed or
    /// recently successful).
    double phi(ProcessId peer) const;

    bool suspected(ProcessId peer) const;

    /// Peers whose suspicion level is at or above the threshold,
    /// ascending by id.
    std::vector<ProcessId> suspects() const;

    /// Forgets everything about `peer` (e.g. after it rejoins).
    void clear(ProcessId peer);

    double threshold() const noexcept { return threshold_; }

    /// Lifetime observation counts, for the net_* instrumentation.
    std::uint64_t successes() const;
    std::uint64_t timeouts() const;

private:
    struct PeerStats {
        double mean_interval_ms = 0;  ///< EWMA of successful intervals
        double silence_ms = 0;        ///< accumulated since last success
        std::uint64_t samples = 0;
    };

    double phi_locked(const PeerStats& stats) const;

    double threshold_;
    mutable std::mutex mutex_;
    std::unordered_map<ProcessId, PeerStats> stats_;
    std::uint64_t successes_ = 0;
    std::uint64_t timeouts_ = 0;
};

}  // namespace syncts
