#include "poset/streaming_closure.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace syncts {

namespace {

constexpr std::size_t kChunkPayloadHeaderBytes = 16;  // row_begin, row_count

void append_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (std::size_t i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint64_t read_u64le(std::span<const std::uint8_t> bytes,
                         std::size_t at) noexcept {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(bytes[at + i]) << (8 * i);
    }
    return v;
}

}  // namespace

StreamingClosure::StreamingClosure(std::size_t num_processes,
                                   std::size_t capacity_hint,
                                   StreamingClosureOptions options)
    : options_(options),
      reach_(num_processes),
      has_reach_(num_processes, false) {
    SYNCTS_REQUIRE(num_processes > 0, "need at least one process");
    SYNCTS_REQUIRE(options_.chunk_rows > 0, "chunk_rows must be positive");
    if (options_.cached_chunks == 0) options_.cached_chunks = 1;
    const std::size_t hint_words = (capacity_hint + 63) / 64 + 1;
    for (auto& row : reach_) row.reserve(hint_words);
    chunk_words_.reserve(options_.chunk_rows);
    chunk_row_offsets_.reserve(options_.chunk_rows);
    if (options_.metrics != nullptr) attach_metrics(*options_.metrics);
}

void StreamingClosure::attach_metrics(obs::MetricsRegistry& registry,
                                      const std::string& prefix) {
    metric_rows_ = &registry.counter(prefix + "_rows");
    metric_chunks_ = &registry.counter(prefix + "_chunks_retired");
    metric_loads_ = &registry.counter(prefix + "_chunk_loads");
    metric_resident_ = &registry.gauge(prefix + "_resident_rows");
    publish_residency();
}

void StreamingClosure::publish_residency() const {
    if (metric_resident_ == nullptr) return;
    metric_resident_->set(static_cast<std::int64_t>(chunk_row_offsets_.size() +
                                                    reach_.size()));
}

MessageId StreamingClosure::ingest(ProcessId sender, ProcessId receiver) {
    SYNCTS_REQUIRE(!finished_, "closure already finished");
    SYNCTS_REQUIRE(sender < reach_.size() && receiver < reach_.size(),
                   "endpoint process out of range");
    SYNCTS_REQUIRE(sender != receiver, "a message needs distinct endpoints");
    SYNCTS_REQUIRE(ingested_ < kNoMessage, "MessageId space exhausted");
    const MessageId id = static_cast<MessageId>(ingested_);
    const std::size_t words = row_words(id);

    // row(id) = reach[sender] | reach[receiver], built in the chunk
    // buffer directly — no scratch row.
    const std::size_t offset = chunk_words_.size();
    chunk_row_offsets_.push_back(offset);
    chunk_words_.resize(offset + words, 0);
    std::uint64_t* row = chunk_words_.data() + offset;
    if (has_reach_[sender]) {
        const auto& src = reach_[sender];
        for (std::size_t w = 0; w < src.size(); ++w) row[w] |= src[w];
    }
    if (has_reach_[receiver]) {
        const auto& src = reach_[receiver];
        for (std::size_t w = 0; w < src.size(); ++w) row[w] |= src[w];
    }
    for (std::size_t w = 0; w < words; ++w) {
        relation_count_ += static_cast<std::uint64_t>(std::popcount(row[w]));
    }

    // Advance the frontier: both endpoints' reach becomes row | {id}.
    auto& dst = reach_[sender];
    dst.assign(row, row + words);
    dst.resize(id / 64 + 1, 0);
    dst[id / 64] |= std::uint64_t{1} << (id % 64);
    reach_[receiver] = dst;
    has_reach_[sender] = true;
    has_reach_[receiver] = true;

    ++ingested_;
    if (metric_rows_ != nullptr) metric_rows_->inc();
    if (chunk_row_offsets_.size() == options_.chunk_rows) retire_chunk();
    publish_residency();
    return id;
}

void StreamingClosure::retire_chunk() {
    const std::uint64_t index = first_buffered_chunk_;
    const std::uint64_t row_begin = index * options_.chunk_rows;
    const std::uint64_t row_count = chunk_row_offsets_.size();

    std::vector<std::uint8_t> payload;
    payload.reserve(kChunkPayloadHeaderBytes + chunk_words_.size() * 8);
    append_u64le(payload, row_begin);
    append_u64le(payload, row_count);
    for (const std::uint64_t word : chunk_words_) append_u64le(payload, word);

    if (options_.spill != nullptr) {
        options_.spill->put(index, payload);
    } else {
        SYNCTS_ENSURE(retained_.size() == index,
                      "retained chunks must stay contiguous");
        retained_.push_back(std::move(payload));
    }
    chunk_words_.clear();
    chunk_row_offsets_.clear();
    ++first_buffered_chunk_;
    if (metric_chunks_ != nullptr) metric_chunks_->inc();
}

void StreamingClosure::finish() {
    if (finished_) return;
    if (!chunk_row_offsets_.empty()) retire_chunk();
    finished_ = true;
    publish_residency();
}

std::span<const std::uint8_t> StreamingClosure::chunk_payload(
    std::uint64_t index) const {
    if (options_.spill == nullptr) {
        SYNCTS_ENSURE(index < retained_.size(), "retired chunk out of range");
        return retained_[index];
    }
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
        if (it->index == index) {
            if (it != cache_.begin()) std::rotate(cache_.begin(), it, it + 1);
            return cache_.front().payload;
        }
    }
    cache_.emplace_front(CachedChunk{index, {}});
    options_.spill->get(index, cache_.front().payload);
    while (cache_.size() > options_.cached_chunks) cache_.pop_back();
    if (metric_loads_ != nullptr) metric_loads_->inc();
    return cache_.front().payload;
}

std::span<const std::uint64_t> StreamingClosure::row_in_payload(
    std::span<const std::uint8_t> payload, MessageId m) const {
    SYNCTS_ENSURE(payload.size() >= kChunkPayloadHeaderBytes,
                  "spill payload shorter than its header");
    const std::uint64_t row_begin = read_u64le(payload, 0);
    const std::uint64_t row_count = read_u64le(payload, 8);
    SYNCTS_ENSURE(m >= row_begin && m < row_begin + row_count,
                  "row not in this chunk");
    std::size_t word_offset = 0;
    for (std::uint64_t r = row_begin; r < m; ++r) {
        word_offset += row_words(static_cast<MessageId>(r));
    }
    const std::size_t words = row_words(m);
    SYNCTS_ENSURE(kChunkPayloadHeaderBytes + (word_offset + words) * 8 <=
                      payload.size(),
                  "spill payload shorter than its rows");
    // Rows are stored little-endian word by word; decode into a scratch
    // row only on big-endian hosts — on little-endian the bytes alias
    // the word layout directly.
    const auto* base = payload.data() + kChunkPayloadHeaderBytes +
                       word_offset * 8;
    static_assert(std::endian::native == std::endian::little,
                  "big-endian hosts need a decode copy here");
    return {reinterpret_cast<const std::uint64_t*>(base), words};
}

bool StreamingClosure::less(MessageId a, MessageId b) const {
    SYNCTS_REQUIRE(a < ingested_ && b < ingested_,
                   "message id out of range");
    if (a >= b) return false;  // all poset edges point forward in commit order
    const std::uint64_t first_buffered_row =
        first_buffered_chunk_ * options_.chunk_rows;
    std::span<const std::uint64_t> row;
    if (b >= first_buffered_row) {
        const std::size_t offset =
            chunk_row_offsets_[b - first_buffered_row];
        row = {chunk_words_.data() + offset, row_words(b)};
    } else {
        row = row_in_payload(chunk_payload(chunk_of(b)), b);
    }
    return (row[a / 64] >> (a % 64)) & 1;
}

void StreamingClosure::for_each_row(
    MessageId begin, MessageId end,
    const std::function<void(MessageId, std::span<const std::uint64_t>)>& fn)
    const {
    SYNCTS_REQUIRE(end <= ingested_, "row range out of range");
    const std::uint64_t first_buffered_row =
        first_buffered_chunk_ * options_.chunk_rows;
    std::uint64_t loaded_chunk = UINT64_MAX;
    std::span<const std::uint8_t> payload;
    std::size_t word_offset = 0;
    for (MessageId m = begin; m < end; ++m) {
        if (m >= first_buffered_row) {
            const std::size_t offset =
                chunk_row_offsets_[m - first_buffered_row];
            fn(m, {chunk_words_.data() + offset, row_words(m)});
            continue;
        }
        const std::uint64_t chunk = chunk_of(m);
        if (chunk != loaded_chunk) {
            payload = chunk_payload(chunk);
            loaded_chunk = chunk;
            word_offset = 0;
            for (std::uint64_t r = chunk * options_.chunk_rows; r < m; ++r) {
                word_offset += row_words(static_cast<MessageId>(r));
            }
        }
        const std::size_t words = row_words(m);
        SYNCTS_ENSURE(kChunkPayloadHeaderBytes + (word_offset + words) * 8 <=
                          payload.size(),
                      "spill payload shorter than its rows");
        const auto* base = payload.data() + kChunkPayloadHeaderBytes +
                           word_offset * 8;
        fn(m, {reinterpret_cast<const std::uint64_t*>(base), words});
        word_offset += words;
    }
}

}  // namespace syncts
