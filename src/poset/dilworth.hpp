#pragma once

#include <cstddef>
#include <vector>

#include "poset/poset.hpp"

/// \file dilworth.hpp
/// Dilworth decomposition: a minimum partition of a poset into chains, and
/// with it the poset's width (Theorem 8 uses width(M, ↦) ≤ ⌊N/2⌋, and the
/// offline algorithm of Fig. 9 builds one linear extension per chain).
///
/// Construction: Fulkerson's reduction — split every element x into x_left
/// and x_right, add bipartite edge (a_left, b_right) for every a < b, and
/// take a maximum matching. Matched pairs stitch into chains; the number of
/// chains is n − |matching|, which by Dilworth's theorem equals the width.

namespace syncts {

struct ChainPartition {
    /// chains[c] lists the elements of chain c in increasing poset order.
    std::vector<std::vector<std::size_t>> chains;

    /// chain_of[x] is the index of the chain containing element x.
    std::vector<std::size_t> chain_of;

    std::size_t width() const noexcept { return chains.size(); }
};

/// Minimum chain partition of a closed poset.
ChainPartition dilworth_chain_partition(const Poset& poset);

/// width(P) — the size of the largest antichain (== minimum chain count).
std::size_t poset_width(const Poset& poset);

/// A maximum antichain, extracted via König's theorem from the same
/// matching. Its size equals poset_width(poset).
std::vector<std::size_t> maximum_antichain(const Poset& poset);

/// True when the elements are pairwise incomparable.
bool is_antichain(const Poset& poset, const std::vector<std::size_t>& elems);

/// True when the chains partition 0..n-1 and each chain is totally ordered
/// in increasing poset order.
bool is_chain_partition(const Poset& poset, const ChainPartition& partition);

}  // namespace syncts
