#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/spill_store.hpp"
#include "obs/metrics.hpp"

/// \file streaming_closure.hpp
/// Out-of-core transitive closure of a synchronous computation's message
/// poset, computed in one streaming pass (docs/STREAMING.md).
///
/// The batch path (`message_poset` + `Poset::close`) holds all M bitset
/// rows resident — O(M²/64) words, perfect at 20k messages and
/// impossible at 10M. The streaming path exploits the structure of the
/// generating relation: every edge links consecutive participations of
/// one process, so each edge (a, b) has a < b in MessageId (commit)
/// order. That makes the closure a left-to-right recurrence over an
/// **antichain frontier** of at most N rows:
///
///   reach[p]  = inclusive down-set of process p's latest message
///   row(m)    = reach[sender] | reach[receiver]          (= below(m))
///   reach[sender] = reach[receiver] = row(m) | {m}
///
/// Only the N frontier rows stay resident. Completed rows accumulate in
/// a chunk buffer of `chunk_rows` rows; a full chunk is *retired* — its
/// level is wholly below the frontier, so no future row can change it —
/// and spilled to a checksummed file via `SpillStore` (or retained in
/// memory when no store is attached). Queries against retired rows
/// rehydrate the owning chunk through a small LRU cache.
///
/// Rows are stored ragged: row m only carries bits < m, so it occupies
/// ceil(m/64) words. The bit layout is identical to `Poset::below_`
/// truncated at the diagonal, which is what makes the bit-identity
/// contract testable word-for-word against the batch closure.

namespace syncts {

struct StreamingClosureOptions {
    /// Rows per retired chunk. Smaller chunks bound residency tighter;
    /// larger chunks amortize spill I/O. 4096 rows ≈ 2 MB at M = 4M.
    std::size_t chunk_rows = 4096;

    /// Retired chunks kept rehydrated for queries (LRU).
    std::size_t cached_chunks = 2;

    /// Destination for retired chunks. nullptr = retain chunks in
    /// memory (still chunked, still bit-identical — used by the small
    /// default path and by tests that want no filesystem).
    SpillStore* spill = nullptr;

    obs::MetricsRegistry* metrics = nullptr;
};

class StreamingClosure {
public:
    /// `capacity_hint` pre-sizes the frontier rows (they grow
    /// geometrically past it, so 0 is always safe).
    StreamingClosure(std::size_t num_processes, std::size_t capacity_hint,
                     StreamingClosureOptions options = {});

    /// Ingests the next message in commit order between `sender` and
    /// `receiver` and returns its MessageId (sequential from 0).
    MessageId ingest(ProcessId sender, ProcessId receiver);

    /// Retires the partial tail chunk. Ingestion may not continue after
    /// finish(); queries over every row become valid.
    void finish();

    std::size_t num_processes() const noexcept { return reach_.size(); }
    /// Messages ingested so far.
    std::size_t size() const noexcept { return ingested_; }
    bool finished() const noexcept { return finished_; }

    /// Sum of |below(m)| over all ingested rows — equals
    /// Poset::relation_count() of the batch closure.
    std::uint64_t relation_count() const noexcept { return relation_count_; }

    /// a < b in the message poset. `b` must be an ingested row; rows in
    /// retired chunks are rehydrated through the cache.
    bool less(MessageId a, MessageId b) const;

    /// Visits rows [begin, end) in id order with bounded residency: at
    /// most one retired chunk plus the frontier is resident at a time.
    /// `fn(m, words)` receives the ragged row. Requires finish() for
    /// rows in the tail chunk.
    void for_each_row(MessageId begin, MessageId end,
                      const std::function<void(MessageId,
                                               std::span<const std::uint64_t>)>&
                          fn) const;

    /// Words a ragged row for message m occupies: ceil(m / 64).
    static std::size_t row_words(MessageId m) noexcept {
        return (static_cast<std::size_t>(m) + 63) / 64;
    }

    /// Registers stream_* metrics under `prefix`:
    ///   <prefix>_rows           rows ingested
    ///   <prefix>_chunks_retired chunks spilled or retained
    ///   <prefix>_chunk_loads    retired-chunk rehydrations (cache misses)
    ///   <prefix>_resident_rows  gauge: frontier + buffered rows
    void attach_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "stream");

private:
    struct CachedChunk {
        std::uint64_t index;
        std::vector<std::uint8_t> payload;
    };

    std::uint64_t chunk_of(MessageId m) const noexcept {
        return m / options_.chunk_rows;
    }
    void retire_chunk();
    /// Payload bytes of retired chunk `index` (from retention, cache, or
    /// spill). Returns a span valid until the next cache mutation.
    std::span<const std::uint8_t> chunk_payload(std::uint64_t index) const;
    std::span<const std::uint64_t> row_in_payload(
        std::span<const std::uint8_t> payload, MessageId m) const;
    void publish_residency() const;

    StreamingClosureOptions options_;
    /// reach_[p] = below(last message of p) | {that message}; empty until
    /// p participates. Ragged growth: only words covering ingested ids.
    std::vector<std::vector<std::uint64_t>> reach_;
    std::vector<bool> has_reach_;

    /// Current (unretired) chunk: ragged rows back to back, plus the
    /// word offset of each row within the buffer.
    std::vector<std::uint64_t> chunk_words_;
    std::vector<std::size_t> chunk_row_offsets_;
    std::uint64_t first_buffered_chunk_ = 0;

    /// Retired chunks: encoded payloads (in-memory retention) or spill
    /// file ids. Payload layout: u64le row_begin, u64le row_count, then
    /// each ragged row's words little-endian, back to back.
    std::vector<std::vector<std::uint8_t>> retained_;
    mutable std::deque<CachedChunk> cache_;
    mutable std::vector<std::uint8_t> load_buffer_;

    std::size_t ingested_ = 0;
    std::uint64_t relation_count_ = 0;
    bool finished_ = false;

    obs::Counter* metric_rows_ = nullptr;
    obs::Counter* metric_chunks_ = nullptr;
    mutable obs::Counter* metric_loads_ = nullptr;
    mutable obs::Gauge* metric_resident_ = nullptr;
};

/// True when a computation of `num_messages` should stay on the batch
/// in-memory closure (the default below this threshold): the full bit
/// matrix at this size costs under ~32 MB, cheaper than any spill
/// traffic.
inline constexpr std::size_t kStreamingClosureThreshold = 16384;

}  // namespace syncts
