#include "poset/realizer.hpp"

#include <atomic>

#include "common/check.hpp"
#include "poset/linear_extension.hpp"

namespace syncts {

Realizer chain_realizer(const Poset& poset) {
    Realizer realizer;
    if (poset.size() == 0) return realizer;
    const ChainPartition partition = dilworth_chain_partition(poset);
    realizer.extensions.reserve(partition.chains.size());
    for (const auto& chain : partition.chains) {
        realizer.extensions.push_back(chain_low_extension(poset, chain));
    }
    return realizer;
}

namespace {

/// Serial core of the incomparable-pair sweep over a in [a_begin, a_end):
/// true when every incomparable pair rooted in the range is reversed
/// somewhere in the realizer. `abort_flag` (may be null) lets sibling
/// shards stop early once one of them found a violation.
bool reversed_in_range(const Poset& poset,
                       const std::vector<std::vector<std::size_t>>& positions,
                       std::size_t a_begin, std::size_t a_end,
                       const std::atomic<bool>* abort_flag) {
    const std::size_t n = poset.size();
    for (std::size_t a = a_begin; a < a_end; ++a) {
        if (abort_flag != nullptr &&
            abort_flag->load(std::memory_order_relaxed)) {
            return false;
        }
        for (std::size_t b = a + 1; b < n; ++b) {
            if (!poset.incomparable(a, b)) continue;
            bool a_first_everywhere = true;
            bool b_first_everywhere = true;
            for (const auto& pos : positions) {
                if (pos[a] < pos[b]) b_first_everywhere = false;
                if (pos[b] < pos[a]) a_first_everywhere = false;
            }
            if (a_first_everywhere || b_first_everywhere) return false;
        }
    }
    return true;
}

}  // namespace

bool realizes(const Poset& poset, const Realizer& realizer,
              const AnalysisOptions& options) {
    const std::size_t n = poset.size();
    if (n == 0) return true;
    if (realizer.extensions.empty()) return poset.relation_count() == 0 && n <= 1;

    std::vector<std::vector<std::size_t>> positions;
    positions.reserve(realizer.size());
    for (const auto& ext : realizer.extensions) {
        if (!poset.is_linear_extension(ext)) return false;
        positions.push_back(positions_of(ext));
    }
    // Intersection must add no order beyond P: every incomparable pair must
    // be reversed somewhere.
    if (!options.parallel() || n < 64) {
        return reversed_in_range(poset, positions, 0, n, nullptr);
    }
    std::atomic<bool> violated{false};
    PoolLease lease(options);
    lease.pool().parallel_for(
        n, 0, [&](std::size_t begin, std::size_t end) {
            if (!reversed_in_range(poset, positions, begin, end, &violated)) {
                violated.store(true, std::memory_order_relaxed);
            }
        });
    return !violated.load(std::memory_order_relaxed);
}

Realizer minimize_realizer(const Poset& poset, Realizer realizer,
                           const AnalysisOptions& options) {
    SYNCTS_REQUIRE(realizes(poset, realizer, options),
                   "can only minimize a valid realizer");
    // Try dropping extensions one at a time, largest index first so the
    // earlier (often more structured) extensions are preferred keepers.
    for (std::size_t i = realizer.extensions.size(); i-- > 0;) {
        if (realizer.extensions.size() == 1) break;
        Realizer candidate;
        candidate.extensions.reserve(realizer.extensions.size() - 1);
        for (std::size_t j = 0; j < realizer.extensions.size(); ++j) {
            if (j != i) candidate.extensions.push_back(realizer.extensions[j]);
        }
        if (realizes(poset, candidate, options)) {
            realizer = std::move(candidate);
        }
    }
    return realizer;
}

std::vector<std::vector<std::uint64_t>> realizer_timestamps(
    const Realizer& realizer) {
    SYNCTS_REQUIRE(!realizer.extensions.empty(),
                   "realizer must contain at least one extension");
    const std::size_t n = realizer.extensions.front().size();
    std::vector<std::vector<std::uint64_t>> stamps(
        n, std::vector<std::uint64_t>(realizer.size(), 0));
    for (std::size_t i = 0; i < realizer.size(); ++i) {
        const auto& ext = realizer.extensions[i];
        SYNCTS_REQUIRE(ext.size() == n, "extensions have differing sizes");
        for (std::size_t rank = 0; rank < n; ++rank) {
            stamps[ext[rank]][i] = rank;
        }
    }
    return stamps;
}

}  // namespace syncts
