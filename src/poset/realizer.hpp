#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "poset/dilworth.hpp"
#include "poset/poset.hpp"

/// \file realizer.hpp
/// Chain realizers: families of linear extensions whose intersection is the
/// poset. The offline algorithm (Fig. 9) timestamps message m with the
/// vector of m's ranks across the realizer's extensions, giving vectors of
/// size width(P) ≤ ⌊N/2⌋ (Theorem 8).

namespace syncts {

struct Realizer {
    /// extensions[i] is a permutation of 0..n-1 extending the poset.
    std::vector<std::vector<std::size_t>> extensions;

    std::size_t size() const noexcept { return extensions.size(); }
};

/// Builds a realizer with width(P) extensions: take a Dilworth chain
/// partition and, for each chain C, the linear extension that places every
/// element of C below everything incomparable to it. For an incomparable
/// pair (u, v), the extension of u's chain puts u first and the extension
/// of v's chain puts v first, so the intersection of the extensions is
/// exactly P (the constructive proof of dim ≤ width).
Realizer chain_realizer(const Poset& poset);

/// True when every extension is a linear extension of the poset and the
/// intersection of the extensions equals the poset exactly. The O(n²·w)
/// incomparable-pair sweep shards across the analysis pool (element
/// ranges; a verdict is a conjunction, so sharding cannot change it).
bool realizes(const Poset& poset, const Realizer& realizer,
              const AnalysisOptions& options = {});

/// Best-effort shrink: greedily drops extensions whose removal keeps the
/// intersection equal to the poset. dim(P) can be strictly below the
/// Dilworth width bound (Fig. 9 stops at width), so the chain realizer is
/// sometimes redundant; the result still realizes P and is never larger.
/// At least one extension is always kept. The per-candidate validation
/// sweeps run through `options` (this is the O(w²·n²) hot spot of
/// offline minimize_dimension).
Realizer minimize_realizer(const Poset& poset, Realizer realizer,
                           const AnalysisOptions& options = {});

/// Fig. 9 step 3: timestamp element m with V_m where V_m[i] is the number
/// of elements below m in extension i (its rank). For a valid realizer,
/// a < b in P ⟺ timestamp(a) < timestamp(b) component-wise.
std::vector<std::vector<std::uint64_t>> realizer_timestamps(
    const Realizer& realizer);

}  // namespace syncts
