#pragma once

#include <cstddef>
#include <vector>

#include "poset/poset.hpp"

/// \file linear_extension.hpp
/// Linear extensions of a closed poset: plain topological orders and the
/// "chain as low as possible" extensions the realizer construction needs.

namespace syncts {

/// Any linear extension (Kahn over the closed relation, smallest-index
/// tie-break, so the result is deterministic).
std::vector<std::size_t> linear_extension(const Poset& poset);

/// A linear extension of the *augmented* relation
///     P ∪ { (v, u) : v ∈ chain, u incomparable to v },
/// i.e. an extension of P in which every chain element is placed below
/// every element it is incomparable with. The augmented relation is acyclic
/// whenever `chain` is a chain of P (the standard lemma behind dim ≤ width):
/// a cycle would have to climb strictly through the chain forever.
/// Throws when `chain` is not a chain of P.
std::vector<std::size_t> chain_low_extension(
    const Poset& poset, const std::vector<std::size_t>& chain);

/// Positions of each element in an order: result[element] = index.
std::vector<std::size_t> positions_of(const std::vector<std::size_t>& order);

}  // namespace syncts
