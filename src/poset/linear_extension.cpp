#include "poset/linear_extension.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace syncts {

std::vector<std::size_t> linear_extension(const Poset& poset) {
    const std::size_t n = poset.size();
    std::vector<std::size_t> remaining_preds(n);
    for (std::size_t v = 0; v < n; ++v) {
        remaining_preds[v] = poset.down_set(v).count();
    }
    // Kahn with an always-sorted ready list: pick the smallest ready index.
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<char> emitted(n, 0);
    for (std::size_t step = 0; step < n; ++step) {
        std::size_t pick = n;
        for (std::size_t v = 0; v < n; ++v) {
            if (!emitted[v] && remaining_preds[v] == 0) {
                pick = v;
                break;
            }
        }
        SYNCTS_ENSURE(pick < n, "closed poset has no minimal element");
        emitted[pick] = 1;
        order.push_back(pick);
        poset.up_set(pick).for_each(
            [&](std::size_t w) { --remaining_preds[w]; });
    }
    return order;
}

std::vector<std::size_t> chain_low_extension(
    const Poset& poset, const std::vector<std::size_t>& chain) {
    const std::size_t n = poset.size();
    std::vector<char> in_chain(n, 0);
    for (std::size_t i = 0; i < chain.size(); ++i) {
        SYNCTS_REQUIRE(chain[i] < n, "chain element out of range");
        SYNCTS_REQUIRE(!in_chain[chain[i]], "duplicate chain element");
        in_chain[chain[i]] = 1;
        if (i + 1 < chain.size()) {
            SYNCTS_REQUIRE(poset.less(chain[i], chain[i + 1]),
                           "chain elements must be increasing in the poset");
        }
    }

    // Augmented in-degree of u: |down(u)| plus, for u outside the chain,
    // the number of chain elements incomparable to u.
    std::vector<std::size_t> remaining_preds(n);
    for (std::size_t u = 0; u < n; ++u) {
        remaining_preds[u] = poset.down_set(u).count();
        if (in_chain[u]) continue;
        for (const std::size_t v : chain) {
            if (poset.incomparable(u, v)) ++remaining_preds[u];
        }
    }

    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<char> emitted(n, 0);
    for (std::size_t step = 0; step < n; ++step) {
        // Prefer ready chain elements (keeps the chain as low as possible,
        // though any topological order of the augmented DAG is valid).
        std::size_t pick = n;
        for (std::size_t v = 0; v < n; ++v) {
            if (emitted[v] || remaining_preds[v] != 0) continue;
            if (in_chain[v]) {
                pick = v;
                break;
            }
            if (pick == n) pick = v;
        }
        SYNCTS_ENSURE(pick < n,
                      "augmented relation has a cycle; chain was not a chain");
        emitted[pick] = 1;
        order.push_back(pick);
        poset.up_set(pick).for_each([&](std::size_t w) {
            --remaining_preds[w];
        });
        if (in_chain[pick]) {
            for (std::size_t u = 0; u < n; ++u) {
                if (!in_chain[u] && poset.incomparable(u, pick)) {
                    --remaining_preds[u];
                }
            }
        }
    }
    return order;
}

std::vector<std::size_t> positions_of(const std::vector<std::size_t>& order) {
    std::vector<std::size_t> position(order.size(), 0);
    for (std::size_t i = 0; i < order.size(); ++i) {
        SYNCTS_REQUIRE(order[i] < order.size(), "order is not a permutation");
        position[order[i]] = i;
    }
    return position;
}

}  // namespace syncts
