#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/dyn_bitset.hpp"
#include "common/pool.hpp"

/// \file poset.hpp
/// Finite irreflexive poset over elements 0..n-1, stored as full
/// reachability bitsets after transitive closure.
///
/// In this library the elements are usually the messages of a synchronous
/// computation and the order is the synchronously-precedes relation ↦
/// (Section 2 of the paper); the offline algorithm (Fig. 9) and all
/// ground-truth verification run on this representation.

namespace syncts {

class Poset {
public:
    /// Creates an n-element poset with the empty order.
    explicit Poset(std::size_t n);

    std::size_t size() const noexcept { return n_; }

    /// Records the generating relation a < b (a != b). Relations may be
    /// added in any order; call close() before querying.
    void add_relation(std::size_t a, std::size_t b);

    /// Computes the transitive closure of the added relations. Throws
    /// std::invalid_argument when the generating relation has a cycle
    /// (i.e., it does not define a partial order).
    ///
    /// The closure is a level-synchronous blocked bit-matrix sweep: rows
    /// are grouped by longest-path depth, and within one level every row
    /// is the word-wise OR of its predecessors' rows (below_[b] =
    /// ∪_{a ∈ preds(b)} below_[a] ∪ {a}) — rows of one level depend only
    /// on lower levels, so the level's row block fans out across the
    /// analysis pool. The result is bit-identical at every thread count
    /// (set union is schedule-independent).
    void close(const AnalysisOptions& options);
    void close() { close(AnalysisOptions{}); }

    bool closed() const noexcept { return closed_; }

    /// True when a < b in the closed order.
    bool less(std::size_t a, std::size_t b) const;

    /// True when a and b are distinct and incomparable.
    bool incomparable(std::size_t a, std::size_t b) const;

    /// Bitset of all x with x < b.
    const DynBitset& down_set(std::size_t b) const;

    /// Bitset of all x with a < x.
    const DynBitset& up_set(std::size_t a) const;

    /// Direct (generating) successor lists, before closure. Useful for
    /// linear-extension algorithms that want sparse edges.
    const std::vector<std::vector<std::size_t>>& generators() const noexcept {
        return direct_;
    }

    /// Number of ordered pairs (a, b) with a < b.
    std::size_t relation_count() const;

    /// Minimal elements of the closed order.
    std::vector<std::size_t> minimal_elements() const;

    /// Maximal elements of the closed order.
    std::vector<std::size_t> maximal_elements() const;

    /// True when `order` is a permutation of 0..n-1 that extends the poset.
    bool is_linear_extension(const std::vector<std::size_t>& order) const;

private:
    void require_closed() const {
        SYNCTS_REQUIRE(closed_, "poset must be closed before querying");
    }

    std::size_t n_;
    bool closed_ = false;
    std::vector<std::vector<std::size_t>> direct_;
    std::vector<DynBitset> below_;  // below_[b] = { a : a < b }
    std::vector<DynBitset> above_;  // above_[a] = { b : a < b }
};

}  // namespace syncts
