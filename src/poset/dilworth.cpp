#include "poset/dilworth.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "poset/hopcroft_karp.hpp"

namespace syncts {

namespace {

BipartiteMatcher build_matcher(const Poset& poset) {
    const std::size_t n = poset.size();
    BipartiteMatcher matcher(n, n);
    for (std::size_t a = 0; a < n; ++a) {
        poset.up_set(a).for_each(
            [&](std::size_t b) { matcher.add_edge(a, b); });
    }
    return matcher;
}

}  // namespace

ChainPartition dilworth_chain_partition(const Poset& poset) {
    const std::size_t n = poset.size();
    BipartiteMatcher matcher = build_matcher(poset);
    matcher.solve();

    // x is a chain head iff nothing is matched *into* x (x_right unmatched).
    ChainPartition partition;
    partition.chain_of.assign(n, 0);
    for (std::size_t x = 0; x < n; ++x) {
        if (matcher.match_of_right(x) != BipartiteMatcher::npos) continue;
        std::vector<std::size_t> chain;
        std::size_t current = x;
        for (;;) {
            chain.push_back(current);
            const std::size_t next = matcher.match_of_left(current);
            if (next == BipartiteMatcher::npos) break;
            current = next;
        }
        const std::size_t chain_index = partition.chains.size();
        for (const std::size_t elem : chain) {
            partition.chain_of[elem] = chain_index;
        }
        partition.chains.push_back(std::move(chain));
    }
    SYNCTS_ENSURE(is_chain_partition(poset, partition),
                  "Dilworth construction produced an invalid chain partition");
    return partition;
}

std::size_t poset_width(const Poset& poset) {
    BipartiteMatcher matcher = build_matcher(poset);
    return poset.size() - matcher.solve();
}

std::vector<std::size_t> maximum_antichain(const Poset& poset) {
    const std::size_t n = poset.size();
    BipartiteMatcher matcher = build_matcher(poset);
    const std::size_t matched = matcher.solve();
    const auto [cover_left, cover_right] = matcher.minimum_vertex_cover();
    std::vector<std::size_t> antichain;
    for (std::size_t x = 0; x < n; ++x) {
        // x survives when neither copy is needed to cover a comparability
        // edge; the survivors are pairwise incomparable and n − |cover| of
        // them exist, matching the width by König + Dilworth.
        if (!cover_left[x] && !cover_right[x]) antichain.push_back(x);
    }
    SYNCTS_ENSURE(antichain.size() == n - matched,
                  "König antichain size mismatch");
    SYNCTS_ENSURE(is_antichain(poset, antichain),
                  "König construction produced comparable elements");
    return antichain;
}

bool is_antichain(const Poset& poset, const std::vector<std::size_t>& elems) {
    for (std::size_t i = 0; i < elems.size(); ++i) {
        for (std::size_t j = i + 1; j < elems.size(); ++j) {
            if (!poset.incomparable(elems[i], elems[j])) return false;
        }
    }
    return true;
}

bool is_chain_partition(const Poset& poset, const ChainPartition& partition) {
    std::vector<char> seen(poset.size(), 0);
    std::size_t total = 0;
    for (const auto& chain : partition.chains) {
        for (std::size_t i = 0; i < chain.size(); ++i) {
            if (chain[i] >= poset.size() || seen[chain[i]]) return false;
            seen[chain[i]] = 1;
            ++total;
            if (i + 1 < chain.size() && !poset.less(chain[i], chain[i + 1])) {
                return false;
            }
        }
    }
    return total == poset.size();
}

}  // namespace syncts
