#include "poset/poset.hpp"

#include <algorithm>
#include <vector>

namespace syncts {

Poset::Poset(std::size_t n) : n_(n), direct_(n) {}

void Poset::add_relation(std::size_t a, std::size_t b) {
    SYNCTS_REQUIRE(a < n_ && b < n_, "poset element out of range");
    SYNCTS_REQUIRE(a != b, "irreflexive order admits no a < a");
    SYNCTS_REQUIRE(!closed_, "cannot add relations after close()");
    direct_[a].push_back(b);
}

void Poset::close() {
    SYNCTS_REQUIRE(!closed_, "poset already closed");

    // Kahn topological sort over the generating edges.
    std::vector<std::size_t> indegree(n_, 0);
    for (std::size_t a = 0; a < n_; ++a) {
        for (const std::size_t b : direct_[a]) ++indegree[b];
    }
    std::vector<std::size_t> queue;
    queue.reserve(n_);
    for (std::size_t v = 0; v < n_; ++v) {
        if (indegree[v] == 0) queue.push_back(v);
    }
    std::vector<std::size_t> topo;
    topo.reserve(n_);
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::size_t v = queue[head];
        topo.push_back(v);
        for (const std::size_t w : direct_[v]) {
            if (--indegree[w] == 0) queue.push_back(w);
        }
    }
    SYNCTS_REQUIRE(topo.size() == n_,
                   "generating relation has a cycle: not a partial order");

    // below_[b] accumulates predecessors along topological order.
    below_.assign(n_, DynBitset(n_));
    for (const std::size_t a : topo) {
        for (const std::size_t b : direct_[a]) {
            below_[b] |= below_[a];
            below_[b].set(a);
        }
    }
    above_.assign(n_, DynBitset(n_));
    for (std::size_t b = 0; b < n_; ++b) {
        below_[b].for_each([&](std::size_t a) { above_[a].set(b); });
    }
    closed_ = true;
}

bool Poset::less(std::size_t a, std::size_t b) const {
    require_closed();
    SYNCTS_REQUIRE(a < n_ && b < n_, "poset element out of range");
    return below_[b].test(a);
}

bool Poset::incomparable(std::size_t a, std::size_t b) const {
    return a != b && !less(a, b) && !less(b, a);
}

const DynBitset& Poset::down_set(std::size_t b) const {
    require_closed();
    SYNCTS_REQUIRE(b < n_, "poset element out of range");
    return below_[b];
}

const DynBitset& Poset::up_set(std::size_t a) const {
    require_closed();
    SYNCTS_REQUIRE(a < n_, "poset element out of range");
    return above_[a];
}

std::size_t Poset::relation_count() const {
    require_closed();
    std::size_t total = 0;
    for (const auto& bits : below_) total += bits.count();
    return total;
}

std::vector<std::size_t> Poset::minimal_elements() const {
    require_closed();
    std::vector<std::size_t> result;
    for (std::size_t v = 0; v < n_; ++v) {
        if (below_[v].count() == 0) result.push_back(v);
    }
    return result;
}

std::vector<std::size_t> Poset::maximal_elements() const {
    require_closed();
    std::vector<std::size_t> result;
    for (std::size_t v = 0; v < n_; ++v) {
        if (above_[v].count() == 0) result.push_back(v);
    }
    return result;
}

bool Poset::is_linear_extension(const std::vector<std::size_t>& order) const {
    require_closed();
    if (order.size() != n_) return false;
    std::vector<std::size_t> position(n_, n_);
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i] >= n_ || position[order[i]] != n_) return false;
        position[order[i]] = i;
    }
    for (std::size_t b = 0; b < n_; ++b) {
        bool ok = true;
        below_[b].for_each([&](std::size_t a) {
            if (position[a] >= position[b]) ok = false;
        });
        if (!ok) return false;
    }
    return true;
}

}  // namespace syncts
