#include "poset/poset.hpp"

#include <algorithm>
#include <vector>

namespace syncts {

Poset::Poset(std::size_t n) : n_(n), direct_(n) {}

void Poset::add_relation(std::size_t a, std::size_t b) {
    SYNCTS_REQUIRE(a < n_ && b < n_, "poset element out of range");
    SYNCTS_REQUIRE(a != b, "irreflexive order admits no a < a");
    SYNCTS_REQUIRE(!closed_, "cannot add relations after close()");
    direct_[a].push_back(b);
}

void Poset::close(const AnalysisOptions& options) {
    SYNCTS_REQUIRE(!closed_, "poset already closed");

    // Kahn topological sort over the generating edges, tracking each
    // element's level (longest generating path from a minimal element).
    // Rows within one level have all their predecessors in strictly lower
    // levels, so a level is the unit of parallelism below.
    std::vector<std::size_t> indegree(n_, 0);
    for (std::size_t a = 0; a < n_; ++a) {
        for (const std::size_t b : direct_[a]) ++indegree[b];
    }
    std::vector<std::size_t> queue;
    queue.reserve(n_);
    for (std::size_t v = 0; v < n_; ++v) {
        if (indegree[v] == 0) queue.push_back(v);
    }
    std::vector<std::size_t> level(n_, 0);
    std::size_t num_levels = n_ == 0 ? 0 : 1;
    std::size_t sorted = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::size_t v = queue[head];
        ++sorted;
        for (const std::size_t w : direct_[v]) {
            if (level[v] + 1 > level[w]) {
                level[w] = level[v] + 1;
                if (level[w] + 1 > num_levels) num_levels = level[w] + 1;
            }
            if (--indegree[w] == 0) queue.push_back(w);
        }
    }
    SYNCTS_REQUIRE(sorted == n_,
                   "generating relation has a cycle: not a partial order");

    // Bucket rows by level, ascending index within a level.
    std::vector<std::vector<std::size_t>> by_level(num_levels);
    for (std::size_t v = 0; v < n_; ++v) by_level[level[v]].push_back(v);

    // Sparse predecessor lists drive the row-OR kernel.
    std::vector<std::vector<std::size_t>> preds(n_);
    for (std::size_t a = 0; a < n_; ++a) {
        for (const std::size_t b : direct_[a]) preds[b].push_back(a);
    }

    obs::Counter* word_ops =
        options.metrics != nullptr
            ? &options.metrics->counter("closure_word_ops")
            : nullptr;

    below_.assign(n_, DynBitset(n_));
    const auto close_rows = [&](const std::vector<std::size_t>& rows,
                                std::size_t begin, std::size_t end) {
        std::size_t ops = 0;
        for (std::size_t i = begin; i < end; ++i) {
            const std::size_t b = rows[i];
            DynBitset& row = below_[b];
            for (const std::size_t a : preds[b]) {
                ops += row.or_with(below_[a]);
                row.set(a);
            }
        }
        if (word_ops != nullptr && ops != 0) {
            word_ops->inc(static_cast<std::uint64_t>(ops));
        }
    };

    above_.assign(n_, DynBitset(n_));
    // Blocked transpose: a chunk owns the word range [word_begin,
    // word_end) of every below_ row, i.e. the above_ rows for elements
    // a in [word_begin*64, word_end*64) — each above_ row is written by
    // exactly one chunk.
    const std::size_t words_per_row = (n_ + 63) / 64;
    const auto transpose_words = [&](std::size_t word_begin,
                                     std::size_t word_end) {
        for (std::size_t b = 0; b < n_; ++b) {
            const DynBitset& row = below_[b];
            for (std::size_t w = word_begin; w < word_end; ++w) {
                std::uint64_t bits = row.word(w);
                while (bits != 0) {
                    const auto bit =
                        static_cast<unsigned>(__builtin_ctzll(bits));
                    above_[w * 64 + bit].set(b);
                    bits &= bits - 1;
                }
            }
        }
    };

    if (!options.parallel() || n_ < 2) {
        for (const auto& rows : by_level) close_rows(rows, 0, rows.size());
        // Block the transpose even when serial: a 32-word block keeps the
        // write window to 2048 above_ rows (~5 MB at n = 20k) instead of
        // scattering across the whole matrix — worth ~3x wall time on
        // large closures.
        constexpr std::size_t kBlockWords = 32;
        for (std::size_t w = 0; w < words_per_row; w += kBlockWords) {
            transpose_words(w, std::min(words_per_row, w + kBlockWords));
        }
    } else {
        PoolLease lease(options);
        Pool& pool = lease.pool();
        for (const auto& rows : by_level) {
            pool.parallel_for(rows.size(), 0,
                              [&](std::size_t begin, std::size_t end) {
                                  close_rows(rows, begin, end);
                              });
        }
        pool.parallel_for(words_per_row, 0, transpose_words);
    }
    closed_ = true;
}

bool Poset::less(std::size_t a, std::size_t b) const {
    require_closed();
    SYNCTS_REQUIRE(a < n_ && b < n_, "poset element out of range");
    return below_[b].test(a);
}

bool Poset::incomparable(std::size_t a, std::size_t b) const {
    return a != b && !less(a, b) && !less(b, a);
}

const DynBitset& Poset::down_set(std::size_t b) const {
    require_closed();
    SYNCTS_REQUIRE(b < n_, "poset element out of range");
    return below_[b];
}

const DynBitset& Poset::up_set(std::size_t a) const {
    require_closed();
    SYNCTS_REQUIRE(a < n_, "poset element out of range");
    return above_[a];
}

std::size_t Poset::relation_count() const {
    require_closed();
    std::size_t total = 0;
    for (const auto& bits : below_) total += bits.count();
    return total;
}

std::vector<std::size_t> Poset::minimal_elements() const {
    require_closed();
    std::vector<std::size_t> result;
    for (std::size_t v = 0; v < n_; ++v) {
        if (below_[v].count() == 0) result.push_back(v);
    }
    return result;
}

std::vector<std::size_t> Poset::maximal_elements() const {
    require_closed();
    std::vector<std::size_t> result;
    for (std::size_t v = 0; v < n_; ++v) {
        if (above_[v].count() == 0) result.push_back(v);
    }
    return result;
}

bool Poset::is_linear_extension(const std::vector<std::size_t>& order) const {
    require_closed();
    if (order.size() != n_) return false;
    std::vector<std::size_t> position(n_, n_);
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i] >= n_ || position[order[i]] != n_) return false;
        position[order[i]] = i;
    }
    for (std::size_t b = 0; b < n_; ++b) {
        bool ok = true;
        below_[b].for_each([&](std::size_t a) {
            if (position[a] >= position[b]) ok = false;
        });
        if (!ok) return false;
    }
    return true;
}

}  // namespace syncts
