#include "poset/hopcroft_karp.hpp"

#include <limits>

#include "common/check.hpp"

namespace syncts {

namespace {
constexpr std::size_t kInfinity = std::numeric_limits<std::size_t>::max();
}

BipartiteMatcher::BipartiteMatcher(std::size_t lefts, std::size_t rights)
    : lefts_(lefts),
      rights_(rights),
      adjacency_(lefts),
      match_left_(lefts, npos),
      match_right_(rights, npos) {}

void BipartiteMatcher::add_edge(std::size_t l, std::size_t r) {
    SYNCTS_REQUIRE(l < lefts_ && r < rights_, "matcher vertex out of range");
    SYNCTS_REQUIRE(!solved_, "cannot add edges after solve()");
    adjacency_[l].push_back(r);
}

bool BipartiteMatcher::bfs_layers() {
    layer_.assign(lefts_, kInfinity);
    std::vector<std::size_t> queue;
    for (std::size_t l = 0; l < lefts_; ++l) {
        if (match_left_[l] == npos) {
            layer_[l] = 0;
            queue.push_back(l);
        }
    }
    bool reachable_free_right = false;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::size_t l = queue[head];
        for (const std::size_t r : adjacency_[l]) {
            const std::size_t next = match_right_[r];
            if (next == npos) {
                reachable_free_right = true;
            } else if (layer_[next] == kInfinity) {
                layer_[next] = layer_[l] + 1;
                queue.push_back(next);
            }
        }
    }
    return reachable_free_right;
}

bool BipartiteMatcher::dfs_augment(std::size_t l) {
    for (const std::size_t r : adjacency_[l]) {
        const std::size_t next = match_right_[r];
        if (next == npos ||
            (layer_[next] == layer_[l] + 1 && dfs_augment(next))) {
            match_left_[l] = r;
            match_right_[r] = l;
            return true;
        }
    }
    layer_[l] = kInfinity;  // dead end; prune for this phase
    return false;
}

std::size_t BipartiteMatcher::solve() {
    if (solved_) return matching_size_;
    while (bfs_layers()) {
        for (std::size_t l = 0; l < lefts_; ++l) {
            if (match_left_[l] == npos && dfs_augment(l)) ++matching_size_;
        }
    }
    solved_ = true;
    return matching_size_;
}

std::size_t BipartiteMatcher::match_of_left(std::size_t l) const {
    SYNCTS_REQUIRE(l < lefts_, "matcher vertex out of range");
    return match_left_[l];
}

std::size_t BipartiteMatcher::match_of_right(std::size_t r) const {
    SYNCTS_REQUIRE(r < rights_, "matcher vertex out of range");
    return match_right_[r];
}

std::pair<std::vector<char>, std::vector<char>>
BipartiteMatcher::minimum_vertex_cover() {
    SYNCTS_REQUIRE(solved_, "solve() must run before minimum_vertex_cover()");
    // König: alternate BFS from unmatched left vertices; cover is
    // (unvisited lefts) ∪ (visited rights).
    std::vector<char> visited_left(lefts_, 0);
    std::vector<char> visited_right(rights_, 0);
    std::vector<std::size_t> queue;
    for (std::size_t l = 0; l < lefts_; ++l) {
        if (match_left_[l] == npos) {
            visited_left[l] = 1;
            queue.push_back(l);
        }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::size_t l = queue[head];
        for (const std::size_t r : adjacency_[l]) {
            if (visited_right[r]) continue;
            visited_right[r] = 1;
            const std::size_t next = match_right_[r];
            if (next != npos && !visited_left[next]) {
                visited_left[next] = 1;
                queue.push_back(next);
            }
        }
    }
    std::vector<char> cover_left(lefts_, 0);
    std::vector<char> cover_right(rights_, 0);
    for (std::size_t l = 0; l < lefts_; ++l) cover_left[l] = !visited_left[l];
    for (std::size_t r = 0; r < rights_; ++r) cover_right[r] = visited_right[r];
    return {cover_left, cover_right};
}

}  // namespace syncts
