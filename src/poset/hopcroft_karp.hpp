#pragma once

#include <cstddef>
#include <vector>

/// \file hopcroft_karp.hpp
/// Maximum bipartite matching in O(E·sqrt(V)) — the engine behind the
/// Dilworth chain partition used by the offline algorithm (Fig. 9) and by
/// the width computation of Theorem 8.

namespace syncts {

/// Bipartite graph with `lefts` left vertices and `rights` right vertices;
/// adjacency is given per left vertex.
class BipartiteMatcher {
public:
    BipartiteMatcher(std::size_t lefts, std::size_t rights);

    /// Adds an edge from left vertex l to right vertex r.
    void add_edge(std::size_t l, std::size_t r);

    /// Computes a maximum matching; returns its size. Idempotent.
    std::size_t solve();

    /// Right partner of left vertex l, or npos when unmatched.
    std::size_t match_of_left(std::size_t l) const;

    /// Left partner of right vertex r, or npos when unmatched.
    std::size_t match_of_right(std::size_t r) const;

    /// A minimum vertex cover (König): pair of (left-vertex flags,
    /// right-vertex flags). Only valid after solve().
    std::pair<std::vector<char>, std::vector<char>> minimum_vertex_cover();

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

private:
    bool bfs_layers();
    bool dfs_augment(std::size_t l);

    std::size_t lefts_;
    std::size_t rights_;
    std::vector<std::vector<std::size_t>> adjacency_;
    std::vector<std::size_t> match_left_;
    std::vector<std::size_t> match_right_;
    std::vector<std::size_t> layer_;
    bool solved_ = false;
    std::size_t matching_size_ = 0;
};

}  // namespace syncts
