#pragma once

#include <array>
#include <cstdint>
#include <limits>

/// \file rng.hpp
/// Deterministic, seedable pseudo-random generation for workload generators
/// and property tests.
///
/// We implement xoshiro256** seeded via SplitMix64 rather than relying on
/// std::mt19937 so that (a) generated workloads are bit-identical across
/// standard libraries, making EXPERIMENTS.md reproducible, and (b) bounded
/// draws use an explicit, documented rejection scheme.

namespace syncts {

/// SplitMix64 step — used to expand a single 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator, so it also plugs into <random>.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the full 256-bit state from a single user seed via SplitMix64.
    explicit constexpr Rng(std::uint64_t seed = 0x5EEDF00Dull) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform draw in [0, bound) with rejection (no modulo bias).
    /// bound == 0 is a caller error and returns 0.
    std::uint64_t below(std::uint64_t bound) noexcept;

    /// Uniform draw in the inclusive range [lo, hi].
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept;

    /// Bernoulli draw with probability numerator/denominator.
    bool chance(std::uint64_t numerator, std::uint64_t denominator) noexcept;

    /// Uniform double in [0, 1).
    double uniform01() noexcept;

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace syncts
