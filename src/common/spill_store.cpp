#include "common/spill_store.hpp"

#include <cstdio>
#include <filesystem>

#include "common/check.hpp"
#include "common/checksum.hpp"

namespace syncts {

namespace {

void append_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (std::size_t i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint64_t read_u64le(std::span<const std::uint8_t> bytes,
                         std::size_t at) noexcept {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(bytes[at + i]) << (8 * i);
    }
    return v;
}

}  // namespace

void SpillStore::encode_chunk(std::uint64_t id,
                              std::span<const std::uint8_t> payload,
                              std::vector<std::uint8_t>& out) {
    const std::size_t start = out.size();
    out.insert(out.end(), std::begin(kSpillMagic), std::end(kSpillMagic));
    out.push_back(kSpillVersion);
    append_u64le(out, id);
    append_u64le(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    common::append_checksum_trailer(out, start);
}

std::span<const std::uint8_t> SpillStore::decode_chunk(
    std::span<const std::uint8_t> bytes, std::uint64_t expected_id) {
    if (bytes.size() < kSpillHeaderBytes + common::kChecksumTrailerBytes) {
        throw SpillError(SpillError::Kind::format, expected_id,
                         "truncated frame (" + std::to_string(bytes.size()) +
                             " bytes)");
    }
    for (std::size_t i = 0; i < 4; ++i) {
        if (bytes[i] != static_cast<std::uint8_t>(kSpillMagic[i])) {
            throw SpillError(SpillError::Kind::format, expected_id,
                             "bad magic");
        }
    }
    if (bytes[4] != kSpillVersion) {
        throw SpillError(SpillError::Kind::format, expected_id,
                         "unsupported version " + std::to_string(bytes[4]));
    }
    const std::uint64_t id = read_u64le(bytes, 5);
    if (id != expected_id) {
        throw SpillError(SpillError::Kind::format, expected_id,
                         "frame carries id " + std::to_string(id));
    }
    const std::uint64_t payload_len = read_u64le(bytes, 13);
    const std::uint64_t expected_total =
        kSpillHeaderBytes + payload_len + common::kChecksumTrailerBytes;
    if (payload_len > bytes.size() || expected_total != bytes.size()) {
        throw SpillError(SpillError::Kind::format, expected_id,
                         "length field " + std::to_string(payload_len) +
                             " does not match frame of " +
                             std::to_string(bytes.size()) + " bytes");
    }
    const std::size_t sealed = kSpillHeaderBytes + payload_len;
    const std::uint64_t declared = common::read_checksum_trailer(bytes, sealed);
    const std::uint64_t actual = common::fnv1a64(bytes.subspan(0, sealed));
    if (declared != actual) {
        throw SpillError(SpillError::Kind::checksum, expected_id,
                         "checksum mismatch");
    }
    return bytes.subspan(kSpillHeaderBytes, payload_len);
}

SpillStore::SpillStore(std::string directory)
    : directory_(std::move(directory)) {
    SYNCTS_REQUIRE(!directory_.empty(), "spill directory must be non-empty");
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec) {
        throw SpillError(SpillError::Kind::io, 0,
                         "cannot create directory " + directory_ + ": " +
                             ec.message());
    }
}

SpillStore::~SpillStore() {
    if (keep_files_) return;
    for (const auto& [id, size] : sizes_) {
        (void)size;
        std::error_code ec;
        std::filesystem::remove(path_for(id), ec);
    }
}

std::string SpillStore::path_for(std::uint64_t id) const {
    return directory_ + "/chunk-" + std::to_string(id) + ".spill";
}

void SpillStore::put(std::uint64_t id, std::span<const std::uint8_t> payload) {
    encode_buffer_.clear();
    encode_chunk(id, payload, encode_buffer_);
    const std::string path = path_for(id);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        throw SpillError(SpillError::Kind::io, id, "cannot open " + path);
    }
    const std::size_t written =
        std::fwrite(encode_buffer_.data(), 1, encode_buffer_.size(), f);
    const bool closed_ok = std::fclose(f) == 0;
    if (written != encode_buffer_.size() || !closed_ok) {
        throw SpillError(SpillError::Kind::io, id, "short write to " + path);
    }
    sizes_[id] = encode_buffer_.size();
    bytes_written_ += payload.size();
    if (writes_metric_ != nullptr) writes_metric_->inc();
    if (bytes_written_metric_ != nullptr) {
        bytes_written_metric_->inc(payload.size());
    }
    if (chunks_metric_ != nullptr) {
        chunks_metric_->set(static_cast<std::int64_t>(sizes_.size()));
    }
}

void SpillStore::get(std::uint64_t id, std::vector<std::uint8_t>& out) {
    const auto it = sizes_.find(id);
    if (it == sizes_.end()) {
        throw SpillError(SpillError::Kind::io, id, "chunk was never written");
    }
    const std::string path = path_for(id);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        throw SpillError(SpillError::Kind::io, id, "cannot open " + path);
    }
    read_buffer_.resize(it->second);
    const std::size_t got =
        std::fread(read_buffer_.data(), 1, read_buffer_.size(), f);
    // Probe one extra byte so a file that grew behind our back is a typed
    // format error, not a silently ignored tail.
    const bool at_eof = std::fgetc(f) == EOF;
    std::fclose(f);
    if (got != read_buffer_.size() || !at_eof) {
        throw SpillError(SpillError::Kind::format, id,
                         "file size does not match recorded frame size");
    }
    const std::span<const std::uint8_t> payload =
        decode_chunk(read_buffer_, id);
    out.assign(payload.begin(), payload.end());
    bytes_read_ += payload.size();
    if (reads_metric_ != nullptr) reads_metric_->inc();
    if (bytes_read_metric_ != nullptr) bytes_read_metric_->inc(payload.size());
}

bool SpillStore::contains(std::uint64_t id) const {
    return sizes_.find(id) != sizes_.end();
}

void SpillStore::remove(std::uint64_t id) {
    const auto it = sizes_.find(id);
    if (it == sizes_.end()) return;
    std::error_code ec;
    std::filesystem::remove(path_for(id), ec);
    sizes_.erase(it);
    if (chunks_metric_ != nullptr) {
        chunks_metric_->set(static_cast<std::int64_t>(sizes_.size()));
    }
}

void SpillStore::attach_metrics(obs::MetricsRegistry& registry,
                                const std::string& prefix) {
    writes_metric_ = &registry.counter(prefix + "_writes");
    reads_metric_ = &registry.counter(prefix + "_reads");
    bytes_written_metric_ = &registry.counter(prefix + "_bytes_written");
    bytes_read_metric_ = &registry.counter(prefix + "_bytes_read");
    chunks_metric_ = &registry.gauge(prefix + "_chunks");
    chunks_metric_->set(static_cast<std::int64_t>(sizes_.size()));
}

}  // namespace syncts
