#include "common/timestamp_arena.hpp"

namespace syncts {

void leq_many(const TimestampArena& arena,
              std::span<const std::uint64_t> probe,
              std::span<std::uint8_t> out) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    SYNCTS_REQUIRE(out.size() == arena.size(),
                   "output size does not match the slot count");
    arena.note_kernel(arena.size());
    const std::size_t width = arena.width();
    const std::span<const std::uint64_t> slab = arena.slab();
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = ts::leq(probe, slab.subspan(i * width, width)) ? 1 : 0;
    }
}

void relate_many(const TimestampArena& arena,
                 std::span<const std::uint64_t> probe,
                 std::span<std::uint8_t> out) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    SYNCTS_REQUIRE(out.size() == arena.size(),
                   "output size does not match the slot count");
    arena.note_kernel(arena.size());
    const std::size_t width = arena.width();
    const std::span<const std::uint64_t> slab = arena.slab();
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = ts::relate(slab.subspan(i * width, width), probe);
    }
}

std::vector<TsHandle> dominators_of(const TimestampArena& arena,
                                    std::span<const std::uint64_t> probe) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    arena.note_kernel(arena.size());
    std::vector<TsHandle> result;
    const std::size_t width = arena.width();
    const std::span<const std::uint64_t> slab = arena.slab();
    for (std::size_t i = 0; i < arena.size(); ++i) {
        if (ts::less(probe, slab.subspan(i * width, width))) {
            result.push_back(static_cast<TsHandle>(i));
        }
    }
    return result;
}

}  // namespace syncts
