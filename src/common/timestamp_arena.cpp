#include "common/timestamp_arena.hpp"

#include "common/pool.hpp"
#include "common/ts_simd.hpp"

namespace syncts {

namespace {

/// Shared body of the sharded batch kernels: validates once, then runs
/// kernel(begin, end) over slot shards. Each shard touches only its own
/// rows of `out`, so the schedule cannot change the result.
template <typename Kernel>
void sharded_scan(const TimestampArena& arena,
                  std::span<const std::uint64_t> probe,
                  std::span<std::uint8_t> out, const AnalysisOptions& options,
                  Kernel&& kernel) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    SYNCTS_REQUIRE(out.size() == arena.size(),
                   "output size does not match the slot count");
    arena.note_kernel(arena.size());
    if (!options.parallel()) {
        kernel(std::size_t{0}, out.size());
        return;
    }
    PoolLease lease(options);
    lease.pool().parallel_for(out.size(), 0, kernel);
}

}  // namespace

void leq_many(const TimestampArena& arena,
              std::span<const std::uint64_t> probe,
              std::span<std::uint8_t> out, const AnalysisOptions& options) {
    const std::size_t width = arena.width();
    const std::span<const std::uint64_t> slab = arena.slab();
    sharded_scan(arena, probe, out, options,
                 [&, width](std::size_t begin, std::size_t end) {
                     simd::leq_many(slab.data() + begin * width, end - begin,
                                    width, probe.data(),
                                    out.data() + begin);
                 });
}

void relate_many(const TimestampArena& arena,
                 std::span<const std::uint64_t> probe,
                 std::span<std::uint8_t> out, const AnalysisOptions& options) {
    const std::size_t width = arena.width();
    const std::span<const std::uint64_t> slab = arena.slab();
    sharded_scan(arena, probe, out, options,
                 [&, width](std::size_t begin, std::size_t end) {
                     simd::relate_many(slab.data() + begin * width,
                                       end - begin, width, probe.data(),
                                       out.data() + begin);
                 });
}

void leq_many(const TimestampArena& arena,
              std::span<const std::uint64_t> probe,
              std::span<std::uint8_t> out) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    SYNCTS_REQUIRE(out.size() == arena.size(),
                   "output size does not match the slot count");
    arena.note_kernel(arena.size());
    simd::leq_many(arena.slab().data(), arena.size(), arena.width(),
                   probe.data(), out.data());
}

void relate_many(const TimestampArena& arena,
                 std::span<const std::uint64_t> probe,
                 std::span<std::uint8_t> out) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    SYNCTS_REQUIRE(out.size() == arena.size(),
                   "output size does not match the slot count");
    arena.note_kernel(arena.size());
    simd::relate_many(arena.slab().data(), arena.size(), arena.width(),
                      probe.data(), out.data());
}

std::vector<TsHandle> dominators_of(const TimestampArena& arena,
                                    std::span<const std::uint64_t> probe) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    arena.note_kernel(arena.size());
    std::vector<TsHandle> result;
    simd::dominators_of(arena.slab().data(), arena.size(), arena.width(),
                        probe.data(), result);
    return result;
}

// ---- SoaStripes ------------------------------------------------------

SoaStripes::SoaStripes(const TimestampArena& arena, SlabPool* pool)
    : width_(arena.width()), rows_(arena.size()), pool_(pool) {
    const std::size_t stripes =
        (rows_ + kSoaLane - 1) / kSoaLane;
    stripe_words_ = stripes * width_ * kSoaLane;
    if (stripe_words_ == 0) return;
    slab_ = pool_ != nullptr
                ? pool_->acquire(stripe_words_)
                : Slab{std::make_unique<std::uint64_t[]>(stripe_words_),
                       stripe_words_};
    // Transpose rows into component-major stripes; pad lanes stay zero
    // so the vector loads of a partial tail stripe are well-defined.
    std::fill_n(slab_.words.get(), stripe_words_, 0);
    const std::span<const std::uint64_t> rows = arena.slab();
    for (std::size_t i = 0; i < rows_; ++i) {
        const std::size_t stripe = i / kSoaLane;
        const std::size_t lane = i % kSoaLane;
        std::uint64_t* base =
            slab_.words.get() + stripe * width_ * kSoaLane + lane;
        const std::uint64_t* row = rows.data() + i * width_;
        for (std::size_t k = 0; k < width_; ++k) {
            base[k * kSoaLane] = row[k];
        }
    }
}

SoaStripes::~SoaStripes() {
    if (slab_ && pool_ != nullptr) {
        pool_->release(std::move(slab_));
    }
}

void SoaStripes::leq_many(std::span<const std::uint64_t> probe,
                          std::span<std::uint8_t> out) const {
    SYNCTS_REQUIRE(probe.size() == width_,
                   "probe width does not match the stripe width");
    SYNCTS_REQUIRE(out.size() == rows_,
                   "output size does not match the row count");
    if (width_ == 0) {
        std::fill(out.begin(), out.end(), std::uint8_t{1});
        return;
    }
    simd::leq_many_stripes(slab_.words.get(), rows_, width_, probe.data(),
                           out.data());
}

void SoaStripes::relate_many(std::span<const std::uint64_t> probe,
                             std::span<std::uint8_t> out) const {
    SYNCTS_REQUIRE(probe.size() == width_,
                   "probe width does not match the stripe width");
    SYNCTS_REQUIRE(out.size() == rows_,
                   "output size does not match the row count");
    if (width_ == 0) {
        std::fill(out.begin(), out.end(),
                  static_cast<std::uint8_t>(ts::kRowLeq | ts::kProbeLeq));
        return;
    }
    simd::relate_many_stripes(slab_.words.get(), rows_, width_, probe.data(),
                              out.data());
}

std::vector<TsHandle> SoaStripes::dominators_of(
    std::span<const std::uint64_t> probe) const {
    SYNCTS_REQUIRE(probe.size() == width_,
                   "probe width does not match the stripe width");
    std::vector<TsHandle> result;
    if (rows_ == 0 || width_ == 0) return result;
    // relate over the stripes, then filter: probe < row ⟺ the kProbeLeq
    // bit alone (probe ≤ row and row ≰ probe).
    std::vector<std::uint8_t> flags(rows_);
    simd::relate_many_stripes(slab_.words.get(), rows_, width_, probe.data(),
                              flags.data());
    for (std::size_t i = 0; i < rows_; ++i) {
        if (flags[i] == ts::kProbeLeq) {
            result.push_back(static_cast<TsHandle>(i));
        }
    }
    return result;
}

}  // namespace syncts
