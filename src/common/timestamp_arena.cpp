#include "common/timestamp_arena.hpp"

#include "common/pool.hpp"

namespace syncts {

namespace {

/// Shared body of the sharded batch kernels: validates once, then runs
/// kernel(begin, end) over slot shards. Each shard touches only its own
/// rows of `out`, so the schedule cannot change the result.
template <typename Kernel>
void sharded_scan(const TimestampArena& arena,
                  std::span<const std::uint64_t> probe,
                  std::span<std::uint8_t> out, const AnalysisOptions& options,
                  Kernel&& kernel) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    SYNCTS_REQUIRE(out.size() == arena.size(),
                   "output size does not match the slot count");
    arena.note_kernel(arena.size());
    if (!options.parallel()) {
        kernel(std::size_t{0}, out.size());
        return;
    }
    PoolLease lease(options);
    lease.pool().parallel_for(out.size(), 0, kernel);
}

}  // namespace

void leq_many(const TimestampArena& arena,
              std::span<const std::uint64_t> probe,
              std::span<std::uint8_t> out, const AnalysisOptions& options) {
    const std::size_t width = arena.width();
    const std::span<const std::uint64_t> slab = arena.slab();
    sharded_scan(arena, probe, out, options,
                 [&, width](std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                         out[i] = ts::leq(probe,
                                          slab.subspan(i * width, width))
                                      ? 1
                                      : 0;
                     }
                 });
}

void relate_many(const TimestampArena& arena,
                 std::span<const std::uint64_t> probe,
                 std::span<std::uint8_t> out, const AnalysisOptions& options) {
    const std::size_t width = arena.width();
    const std::span<const std::uint64_t> slab = arena.slab();
    sharded_scan(arena, probe, out, options,
                 [&, width](std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                         out[i] =
                             ts::relate(slab.subspan(i * width, width), probe);
                     }
                 });
}

void leq_many(const TimestampArena& arena,
              std::span<const std::uint64_t> probe,
              std::span<std::uint8_t> out) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    SYNCTS_REQUIRE(out.size() == arena.size(),
                   "output size does not match the slot count");
    arena.note_kernel(arena.size());
    const std::size_t width = arena.width();
    const std::span<const std::uint64_t> slab = arena.slab();
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = ts::leq(probe, slab.subspan(i * width, width)) ? 1 : 0;
    }
}

void relate_many(const TimestampArena& arena,
                 std::span<const std::uint64_t> probe,
                 std::span<std::uint8_t> out) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    SYNCTS_REQUIRE(out.size() == arena.size(),
                   "output size does not match the slot count");
    arena.note_kernel(arena.size());
    const std::size_t width = arena.width();
    const std::span<const std::uint64_t> slab = arena.slab();
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = ts::relate(slab.subspan(i * width, width), probe);
    }
}

std::vector<TsHandle> dominators_of(const TimestampArena& arena,
                                    std::span<const std::uint64_t> probe) {
    SYNCTS_REQUIRE(probe.size() == arena.width(),
                   "probe width does not match the arena width");
    arena.note_kernel(arena.size());
    std::vector<TsHandle> result;
    const std::size_t width = arena.width();
    const std::span<const std::uint64_t> slab = arena.slab();
    for (std::size_t i = 0; i < arena.size(); ++i) {
        if (ts::less(probe, slab.subspan(i * width, width))) {
            result.push_back(static_cast<TsHandle>(i));
        }
    }
    return result;
}

}  // namespace syncts
