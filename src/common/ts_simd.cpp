#include "common/ts_simd.hpp"

#include <span>

#include "common/ts_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define SYNCTS_X86 1
#include <immintrin.h>
#endif

/// \file ts_simd.cpp
/// Scalar and AVX2 backends for the batch timestamp kernels. The AVX2
/// bodies carry per-function target attributes, so this translation unit
/// compiles with the project's portable baseline flags and the vector
/// code is only ever *executed* after avx2_available() says the host has
/// it — the same binary runs unchanged on pre-AVX2 hardware.

namespace syncts::simd {

bool avx2_available() noexcept {
#if defined(SYNCTS_X86) && (defined(__GNUC__) || defined(__clang__))
    static const bool available = __builtin_cpu_supports("avx2") != 0;
    return available;
#else
    return false;
#endif
}

// ---- Scalar backends (the PR 4 unrolled kernels) ---------------------

void leq_many_scalar(const std::uint64_t* slab, std::size_t rows,
                     std::size_t width, const std::uint64_t* probe,
                     std::uint8_t* out) noexcept {
    const std::span<const std::uint64_t> p{probe, width};
    for (std::size_t i = 0; i < rows; ++i) {
        out[i] = ts::leq(p, {slab + i * width, width}) ? 1 : 0;
    }
}

void relate_many_scalar(const std::uint64_t* slab, std::size_t rows,
                        std::size_t width, const std::uint64_t* probe,
                        std::uint8_t* out) noexcept {
    const std::span<const std::uint64_t> p{probe, width};
    for (std::size_t i = 0; i < rows; ++i) {
        out[i] = ts::relate({slab + i * width, width}, p);
    }
}

void dominators_of_scalar(const std::uint64_t* slab, std::size_t rows,
                          std::size_t width, const std::uint64_t* probe,
                          std::vector<std::uint32_t>& out) {
    const std::span<const std::uint64_t> p{probe, width};
    for (std::size_t i = 0; i < rows; ++i) {
        if (ts::less(p, {slab + i * width, width})) {
            out.push_back(static_cast<std::uint32_t>(i));
        }
    }
}

void leq_many_stripes_scalar(const std::uint64_t* stripes, std::size_t rows,
                             std::size_t width, const std::uint64_t* probe,
                             std::uint8_t* out) noexcept {
    constexpr std::size_t kLane = 4;
    for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t stripe = i / kLane;
        const std::size_t lane = i % kLane;
        const std::uint64_t* base = stripes + stripe * width * kLane + lane;
        bool ok = true;
        for (std::size_t k = 0; k < width; ++k) {
            ok = ok && probe[k] <= base[k * kLane];
        }
        out[i] = ok ? 1 : 0;
    }
}

void relate_many_stripes_scalar(const std::uint64_t* stripes,
                                std::size_t rows, std::size_t width,
                                const std::uint64_t* probe,
                                std::uint8_t* out) noexcept {
    constexpr std::size_t kLane = 4;
    for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t stripe = i / kLane;
        const std::size_t lane = i % kLane;
        const std::uint64_t* base = stripes + stripe * width * kLane + lane;
        bool row_above = false;
        bool probe_above = false;
        for (std::size_t k = 0; k < width; ++k) {
            const std::uint64_t row = base[k * kLane];
            row_above |= row > probe[k];
            probe_above |= probe[k] > row;
        }
        out[i] = static_cast<std::uint8_t>((row_above ? 0 : ts::kRowLeq) |
                                           (probe_above ? 0 : ts::kProbeLeq));
    }
}

// ---- AVX2 backends ---------------------------------------------------

#if defined(SYNCTS_X86) && (defined(__GNUC__) || defined(__clang__))

namespace {

/// Unsigned 64-bit a > b per lane via the sign-flip trick (AVX2 only has
/// the signed compare).
__attribute__((target("avx2"), always_inline)) inline __m256i
cmpgt_u64(__m256i a, __m256i b) noexcept {
    const __m256i sign =
        _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                              _mm256_xor_si256(b, sign));
}

/// probe[k..k+4) > row[k..k+4) per lane — the leq violation mask for one
/// 4-component block.
__attribute__((target("avx2"), always_inline)) inline __m256i
leq_violation(const std::uint64_t* probe, const std::uint64_t* row,
              std::size_t k) noexcept {
    const __m256i vp =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(probe + k));
    const __m256i vr =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + k));
    return cmpgt_u64(vp, vr);
}

}  // namespace

__attribute__((target("avx2"))) void leq_many_avx2(
    const std::uint64_t* slab, std::size_t rows, std::size_t width,
    const std::uint64_t* probe, std::uint8_t* out) noexcept {
    const __m256i sign =
        _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
    // Two rows per iteration: the probe load and its sign flip are
    // shared, and the two violation accumulators form independent
    // dependency chains, which is what actually buys the speedup over
    // the autovectorized scalar loop. The chunked check every 16
    // components keeps fail-fast rows from paying for the full width
    // (the scalar kernel short-circuits at the first failing word).
    std::size_t i = 0;
    for (; i + 2 <= rows; i += 2) {
        const std::uint64_t* r0 = slab + i * width;
        const std::uint64_t* r1 = r0 + width;
        __m256i v0 = _mm256_setzero_si256();
        __m256i v1 = _mm256_setzero_si256();
        std::size_t k = 0;
        for (; k + 16 <= width;) {
            for (const std::size_t stop = k + 16; k < stop; k += 4) {
                const __m256i p = _mm256_xor_si256(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(probe + k)),
                    sign);
                const __m256i a = _mm256_xor_si256(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(r0 + k)),
                    sign);
                const __m256i b = _mm256_xor_si256(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(r1 + k)),
                    sign);
                v0 = _mm256_or_si256(v0, _mm256_cmpgt_epi64(p, a));
                v1 = _mm256_or_si256(v1, _mm256_cmpgt_epi64(p, b));
            }
            if (_mm256_testz_si256(v0, v0) == 0 &&
                _mm256_testz_si256(v1, v1) == 0) {
                break;
            }
        }
        bool bad0 = _mm256_testz_si256(v0, v0) == 0;
        bool bad1 = _mm256_testz_si256(v1, v1) == 0;
        if (!bad0 || !bad1) {
            for (; k + 4 <= width; k += 4) {
                if (!bad0) {
                    const __m256i violation = leq_violation(probe, r0, k);
                    bad0 = _mm256_testz_si256(violation, violation) == 0;
                }
                if (!bad1) {
                    const __m256i violation = leq_violation(probe, r1, k);
                    bad1 = _mm256_testz_si256(violation, violation) == 0;
                }
                if (bad0 && bad1) break;
            }
            for (; k < width && !(bad0 && bad1); ++k) {
                bad0 = bad0 || probe[k] > r0[k];
                bad1 = bad1 || probe[k] > r1[k];
            }
        }
        out[i] = bad0 ? 0 : 1;
        out[i + 1] = bad1 ? 0 : 1;
    }
    for (; i < rows; ++i) {
        const std::uint64_t* row = slab + i * width;
        bool bad = false;
        std::size_t k = 0;
        for (; k + 4 <= width; k += 4) {
            const __m256i violation = leq_violation(probe, row, k);
            if (_mm256_testz_si256(violation, violation) == 0) {
                bad = true;
                break;
            }
        }
        if (!bad) {
            for (; k < width; ++k) {
                bad = probe[k] > row[k];
                if (bad) break;
            }
        }
        out[i] = bad ? 0 : 1;
    }
}

__attribute__((target("avx2"))) void relate_many_avx2(
    const std::uint64_t* slab, std::size_t rows, std::size_t width,
    const std::uint64_t* probe, std::uint8_t* out) noexcept {
    for (std::size_t i = 0; i < rows; ++i) {
        const std::uint64_t* row = slab + i * width;
        __m256i row_gt = _mm256_setzero_si256();
        __m256i probe_gt = _mm256_setzero_si256();
        bool resolved = false;
        std::size_t k = 0;
        for (; k + 4 <= width; k += 4) {
            const __m256i vp = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(probe + k));
            const __m256i vr = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(row + k));
            row_gt = _mm256_or_si256(row_gt, cmpgt_u64(vr, vp));
            probe_gt = _mm256_or_si256(probe_gt, cmpgt_u64(vp, vr));
            // Both directions violated — the rows are concurrent and no
            // later component can change either bit.
            if (_mm256_testz_si256(row_gt, row_gt) == 0 &&
                _mm256_testz_si256(probe_gt, probe_gt) == 0) {
                resolved = true;
                break;
            }
        }
        bool row_above = _mm256_testz_si256(row_gt, row_gt) == 0;
        bool probe_above = _mm256_testz_si256(probe_gt, probe_gt) == 0;
        if (!resolved) {
            for (; k < width; ++k) {
                row_above |= row[k] > probe[k];
                probe_above |= probe[k] > row[k];
                if (row_above && probe_above) break;
            }
        }
        out[i] = static_cast<std::uint8_t>((row_above ? 0 : ts::kRowLeq) |
                                           (probe_above ? 0 : ts::kProbeLeq));
    }
}

__attribute__((target("avx2"))) void dominators_of_avx2(
    const std::uint64_t* slab, std::size_t rows, std::size_t width,
    const std::uint64_t* probe, std::vector<std::uint32_t>& out) {
    for (std::size_t i = 0; i < rows; ++i) {
        const std::uint64_t* row = slab + i * width;
        __m256i strict = _mm256_setzero_si256();
        bool bad = false;
        std::size_t k = 0;
        for (; k + 4 <= width; k += 4) {
            const __m256i vp = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(probe + k));
            const __m256i vr = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(row + k));
            const __m256i violation = cmpgt_u64(vp, vr);
            // A violated block disqualifies the row outright ("above"
            // no longer matters), so stop loading components.
            if (_mm256_testz_si256(violation, violation) == 0) {
                bad = true;
                break;
            }
            strict = _mm256_or_si256(strict, cmpgt_u64(vr, vp));
        }
        if (bad) continue;
        bool above = _mm256_testz_si256(strict, strict) == 0;
        for (; k < width; ++k) {
            if (probe[k] > row[k]) {
                bad = true;
                break;
            }
            above |= row[k] > probe[k];
        }
        if (!bad && above) {
            out.push_back(static_cast<std::uint32_t>(i));
        }
    }
}

__attribute__((target("avx2"))) void leq_many_stripes_avx2(
    const std::uint64_t* stripes, std::size_t rows, std::size_t width,
    const std::uint64_t* probe, std::uint8_t* out) noexcept {
    constexpr std::size_t kLane = 4;
    const std::size_t num_stripes = (rows + kLane - 1) / kLane;
    for (std::size_t s = 0; s < num_stripes; ++s) {
        const std::uint64_t* base = stripes + s * width * kLane;
        __m256i violation = _mm256_setzero_si256();
        for (std::size_t k = 0; k < width; ++k) {
            const __m256i vp =
                _mm256_set1_epi64x(static_cast<long long>(probe[k]));
            const __m256i vr = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(base + k * kLane));
            violation = _mm256_or_si256(violation, cmpgt_u64(vp, vr));
            // All four lanes violated — every row in the stripe is
            // resolved (pad lanes violating only strengthens this).
            if (_mm256_movemask_epi8(violation) == -1) break;
        }
        alignas(32) std::uint64_t lanes[kLane];
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), violation);
        const std::size_t row0 = s * kLane;
        const std::size_t live = rows - row0 < kLane ? rows - row0 : kLane;
        for (std::size_t l = 0; l < live; ++l) {
            out[row0 + l] = lanes[l] == 0 ? 1 : 0;
        }
    }
}

__attribute__((target("avx2"))) void relate_many_stripes_avx2(
    const std::uint64_t* stripes, std::size_t rows, std::size_t width,
    const std::uint64_t* probe, std::uint8_t* out) noexcept {
    constexpr std::size_t kLane = 4;
    const std::size_t num_stripes = (rows + kLane - 1) / kLane;
    for (std::size_t s = 0; s < num_stripes; ++s) {
        const std::uint64_t* base = stripes + s * width * kLane;
        __m256i row_gt = _mm256_setzero_si256();
        __m256i probe_gt = _mm256_setzero_si256();
        for (std::size_t k = 0; k < width; ++k) {
            const __m256i vp =
                _mm256_set1_epi64x(static_cast<long long>(probe[k]));
            const __m256i vr = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(base + k * kLane));
            row_gt = _mm256_or_si256(row_gt, cmpgt_u64(vr, vp));
            probe_gt = _mm256_or_si256(probe_gt, cmpgt_u64(vp, vr));
            // Every lane concurrent in both directions — resolved.
            if (_mm256_movemask_epi8(_mm256_and_si256(row_gt, probe_gt)) ==
                -1) {
                break;
            }
        }
        alignas(32) std::uint64_t row_lanes[kLane];
        alignas(32) std::uint64_t probe_lanes[kLane];
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(row_lanes), row_gt);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(probe_lanes),
                            probe_gt);
        const std::size_t row0 = s * kLane;
        const std::size_t live = rows - row0 < kLane ? rows - row0 : kLane;
        for (std::size_t l = 0; l < live; ++l) {
            out[row0 + l] = static_cast<std::uint8_t>(
                (row_lanes[l] != 0 ? 0 : ts::kRowLeq) |
                (probe_lanes[l] != 0 ? 0 : ts::kProbeLeq));
        }
    }
}

#else  // non-x86 hosts: the AVX2 names resolve to the scalar bodies.

void leq_many_avx2(const std::uint64_t* slab, std::size_t rows,
                   std::size_t width, const std::uint64_t* probe,
                   std::uint8_t* out) noexcept {
    leq_many_scalar(slab, rows, width, probe, out);
}

void relate_many_avx2(const std::uint64_t* slab, std::size_t rows,
                      std::size_t width, const std::uint64_t* probe,
                      std::uint8_t* out) noexcept {
    relate_many_scalar(slab, rows, width, probe, out);
}

void dominators_of_avx2(const std::uint64_t* slab, std::size_t rows,
                        std::size_t width, const std::uint64_t* probe,
                        std::vector<std::uint32_t>& out) {
    dominators_of_scalar(slab, rows, width, probe, out);
}

void leq_many_stripes_avx2(const std::uint64_t* stripes, std::size_t rows,
                           std::size_t width, const std::uint64_t* probe,
                           std::uint8_t* out) noexcept {
    leq_many_stripes_scalar(stripes, rows, width, probe, out);
}

void relate_many_stripes_avx2(const std::uint64_t* stripes,
                              std::size_t rows, std::size_t width,
                              const std::uint64_t* probe,
                              std::uint8_t* out) noexcept {
    relate_many_stripes_scalar(stripes, rows, width, probe, out);
}

#endif

}  // namespace syncts::simd
