#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

/// \file ids.hpp
/// Strongly-named identifier aliases shared by every module.
///
/// Processes are numbered 0..N-1 (the paper writes P_1..P_N; we use
/// zero-based indices throughout the implementation and only shift to
/// one-based numbering when printing paper figures verbatim).

namespace syncts {

/// Index of a process in the system, 0-based.
using ProcessId = std::uint32_t;

/// Index of a message within a computation, 0-based, in *instant order*:
/// synchronous messages are logically instantaneous, so every computation
/// admits a global total order of message instants consistent with all
/// per-process event orders (Charron-Bost et al.). MessageId is the rank of
/// a message in one such order.
using MessageId = std::uint32_t;

/// Index of an edge group in an edge decomposition, 0-based. One vector-clock
/// component is assigned per group.
using GroupId = std::uint32_t;

/// Index of an event in a per-process event sequence, 0-based.
using EventIndex = std::uint32_t;

/// Index of a topology epoch, 0-based. Epoch 0 is the initial topology a
/// system boots with; every reconfiguration (channel/process add or
/// remove) starts the next epoch. Wire frames carry the sender's epoch so
/// that a reconfiguration can be detected and NACKed by the rendezvous
/// protocol (frames predating the epoch mechanism decode as epoch 0).
using EpochId = std::uint32_t;

/// Sentinel for "no process".
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Sentinel for "no message" (e.g. "no message precedes this event").
inline constexpr MessageId kNoMessage = std::numeric_limits<MessageId>::max();

/// Sentinel for "no group".
inline constexpr GroupId kNoGroup = std::numeric_limits<GroupId>::max();

}  // namespace syncts
