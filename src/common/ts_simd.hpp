#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file ts_simd.hpp
/// Runtime-dispatched SIMD backends for the batch timestamp kernels.
///
/// The public arena kernels (timestamp_arena.hpp leq_many/relate_many/
/// dominators_of and the SoaStripes scans) call through here: on hosts
/// with AVX2 the `*_avx2` bodies run (compiled with a per-function
/// target attribute, so the rest of the library keeps the portable
/// baseline ISA); everywhere else the `*_scalar` bodies — the PR 4
/// 4-way-unrolled kernels — run. Both backends are exposed by name so
/// the differential tests can pin them against each other on the same
/// host: every output is a small integer (0/1 or relate flags), so
/// "bit-identical" is an exact contract, not a tolerance.
///
/// Layout contracts:
///  - Row-major: `slab` is rows*width words, row i at slab[i*width].
///  - Stripes (SoA): blocks of kSoaLane=4 rows; stripe s stores
///    component k of its four lanes at stripes[(s*width + k)*4 .. +4);
///    pad lanes of the last partial stripe are zero and their outputs
///    are not written.
///
/// The unsigned 64-bit vector compare uses the classic sign-flip trick:
/// x >u y  ⟺  (x ^ 2^63) >s (y ^ 2^63), since AVX2 only has a signed
/// 64-bit compare (_mm256_cmpgt_epi64).

namespace syncts::simd {

/// True when the running CPU supports AVX2 (cached after the first
/// call). The dispatched kernels below consult this once per batch, not
/// per row.
bool avx2_available() noexcept;

// ---- Row-major backends ----------------------------------------------

void leq_many_scalar(const std::uint64_t* slab, std::size_t rows,
                     std::size_t width, const std::uint64_t* probe,
                     std::uint8_t* out) noexcept;
void relate_many_scalar(const std::uint64_t* slab, std::size_t rows,
                        std::size_t width, const std::uint64_t* probe,
                        std::uint8_t* out) noexcept;
void dominators_of_scalar(const std::uint64_t* slab, std::size_t rows,
                          std::size_t width, const std::uint64_t* probe,
                          std::vector<std::uint32_t>& out);

/// AVX2 bodies; falling back to the scalar bodies on hosts without
/// AVX2 support (callers normally go through the dispatched forms).
void leq_many_avx2(const std::uint64_t* slab, std::size_t rows,
                   std::size_t width, const std::uint64_t* probe,
                   std::uint8_t* out) noexcept;
void relate_many_avx2(const std::uint64_t* slab, std::size_t rows,
                      std::size_t width, const std::uint64_t* probe,
                      std::uint8_t* out) noexcept;
void dominators_of_avx2(const std::uint64_t* slab, std::size_t rows,
                        std::size_t width, const std::uint64_t* probe,
                        std::vector<std::uint32_t>& out);

// ---- Stripe (SoA) backends -------------------------------------------

void leq_many_stripes_scalar(const std::uint64_t* stripes, std::size_t rows,
                             std::size_t width, const std::uint64_t* probe,
                             std::uint8_t* out) noexcept;
void relate_many_stripes_scalar(const std::uint64_t* stripes,
                                std::size_t rows, std::size_t width,
                                const std::uint64_t* probe,
                                std::uint8_t* out) noexcept;

void leq_many_stripes_avx2(const std::uint64_t* stripes, std::size_t rows,
                           std::size_t width, const std::uint64_t* probe,
                           std::uint8_t* out) noexcept;
void relate_many_stripes_avx2(const std::uint64_t* stripes,
                              std::size_t rows, std::size_t width,
                              const std::uint64_t* probe,
                              std::uint8_t* out) noexcept;

// ---- Dispatched entry points -----------------------------------------

inline void leq_many(const std::uint64_t* slab, std::size_t rows,
                     std::size_t width, const std::uint64_t* probe,
                     std::uint8_t* out) noexcept {
    if (avx2_available()) {
        leq_many_avx2(slab, rows, width, probe, out);
    } else {
        leq_many_scalar(slab, rows, width, probe, out);
    }
}

inline void relate_many(const std::uint64_t* slab, std::size_t rows,
                        std::size_t width, const std::uint64_t* probe,
                        std::uint8_t* out) noexcept {
    if (avx2_available()) {
        relate_many_avx2(slab, rows, width, probe, out);
    } else {
        relate_many_scalar(slab, rows, width, probe, out);
    }
}

inline void dominators_of(const std::uint64_t* slab, std::size_t rows,
                          std::size_t width, const std::uint64_t* probe,
                          std::vector<std::uint32_t>& out) {
    if (avx2_available()) {
        dominators_of_avx2(slab, rows, width, probe, out);
    } else {
        dominators_of_scalar(slab, rows, width, probe, out);
    }
}

inline void leq_many_stripes(const std::uint64_t* stripes, std::size_t rows,
                             std::size_t width, const std::uint64_t* probe,
                             std::uint8_t* out) noexcept {
    if (avx2_available()) {
        leq_many_stripes_avx2(stripes, rows, width, probe, out);
    } else {
        leq_many_stripes_scalar(stripes, rows, width, probe, out);
    }
}

inline void relate_many_stripes(const std::uint64_t* stripes,
                                std::size_t rows, std::size_t width,
                                const std::uint64_t* probe,
                                std::uint8_t* out) noexcept {
    if (avx2_available()) {
        relate_many_stripes_avx2(stripes, rows, width, probe, out);
    } else {
        relate_many_stripes_scalar(stripes, rows, width, probe, out);
    }
}

}  // namespace syncts::simd
