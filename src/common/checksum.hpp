#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// \file checksum.hpp
/// The one FNV-1a 64 implementation shared by every framed format in the
/// tree: wire frames (src/clocks/wire), clock-state blobs
/// (src/clocks/clock_engine), WAL records (src/recover/wal), snapshots
/// (src/recover/snapshot), and the flight recorder's SYFR dump
/// (src/obs/flight_recorder). Each of those formats trails its payload
/// with the 8-byte little-endian hash of everything before it; keeping
/// the constants here means a format cannot drift from its validators.

namespace syncts::common {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ull;

/// Bytes every FNV-trailed format appends: the hash, little-endian.
inline constexpr std::size_t kChecksumTrailerBytes = 8;

/// FNV-1a 64-bit hash of `bytes`.
inline std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
    std::uint64_t hash = kFnv1aOffsetBasis;
    for (const std::uint8_t byte : bytes) {
        hash ^= byte;
        hash *= kFnv1aPrime;
    }
    return hash;
}

/// Appends the little-endian checksum trailer for `out[start..]` — the
/// shared "seal this record" tail of every framed encoder.
inline void append_checksum_trailer(std::vector<std::uint8_t>& out,
                                    std::size_t start = 0) {
    std::uint64_t checksum = fnv1a64({out.data() + start, out.size() - start});
    for (std::size_t i = 0; i < kChecksumTrailerBytes; ++i) {
        out.push_back(static_cast<std::uint8_t>(checksum));
        checksum >>= 8;
    }
}

/// Reads the little-endian checksum trailer at bytes[at..at+8).
inline std::uint64_t read_checksum_trailer(
    std::span<const std::uint8_t> bytes, std::size_t at) noexcept {
    std::uint64_t declared = 0;
    for (std::size_t i = 0; i < kChecksumTrailerBytes; ++i) {
        declared |= static_cast<std::uint64_t>(bytes[at + i]) << (8 * i);
    }
    return declared;
}

}  // namespace syncts::common
