#pragma once

#include <climits>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

/// \file ts_kernels.hpp
/// The innermost timestamp kernels: every vector-order operation of
/// Equation (2), expressed over raw component spans so the same code path
/// serves the legacy VectorTimestamp value type, TimestampArena rows, and
/// decoded wire payloads without copying into an owning object first.
///
/// The kernels assume the caller has already matched widths (the public
/// wrappers — VectorTimestamp methods, TimestampArena ops — validate and
/// throw); here a mismatch is a programming error.
///
/// The loops are manually unrolled kUnroll lanes wide with branchless
/// bodies, so the main block is straight-line max/compare chains the
/// compiler turns into SIMD (4 × u64 = one 256-bit register). The
/// predicates accumulate violation masks per block and test once per
/// block, keeping the early exit the batch kernels (leq_many/relate_many)
/// rely on without a branch per lane.

namespace syncts::ts {

/// Lanes per unrolled block. The guard below is what actually backs the
/// vectorizability claim: timestamp components must be exactly 64-bit
/// unsigned words (the arena slab, the wire format, and DynBitset all
/// assume it) and the block must fill a whole power-of-two vector
/// register, or the unrolled bodies silently deoptimize to scalar code.
inline constexpr std::size_t kUnroll = 4;

static_assert(sizeof(std::uint64_t) * CHAR_BIT == 64,
              "timestamp components must be exactly 64-bit words");
static_assert((kUnroll & (kUnroll - 1)) == 0 && kUnroll >= 2,
              "unroll factor must be a power of two");
static_assert(kUnroll * sizeof(std::uint64_t) == 32,
              "one unrolled block must fill a 256-bit vector register");
static_assert(std::is_trivially_copyable_v<std::uint64_t>);

/// dst[k] = max(dst[k], src[k]) — the merge of Fig. 5 lines (05)/(09).
inline void join(std::span<std::uint64_t> dst,
                 std::span<const std::uint64_t> src) noexcept {
    const std::size_t n = dst.size();
    std::size_t k = 0;
    for (; k + kUnroll <= n; k += kUnroll) {
        dst[k] = src[k] > dst[k] ? src[k] : dst[k];
        dst[k + 1] = src[k + 1] > dst[k + 1] ? src[k + 1] : dst[k + 1];
        dst[k + 2] = src[k + 2] > dst[k + 2] ? src[k + 2] : dst[k + 2];
        dst[k + 3] = src[k + 3] > dst[k + 3] ? src[k + 3] : dst[k + 3];
    }
    for (; k < n; ++k) {
        if (src[k] > dst[k]) dst[k] = src[k];
    }
}

/// dst = src (widths equal).
inline void copy(std::span<std::uint64_t> dst,
                 std::span<const std::uint64_t> src) noexcept {
    for (std::size_t k = 0; k < dst.size(); ++k) dst[k] = src[k];
}

/// dst = max(a, b) — join without clobbering either input.
inline void join_into(std::span<std::uint64_t> dst,
                      std::span<const std::uint64_t> a,
                      std::span<const std::uint64_t> b) noexcept {
    const std::size_t n = dst.size();
    std::size_t k = 0;
    for (; k + kUnroll <= n; k += kUnroll) {
        dst[k] = a[k] > b[k] ? a[k] : b[k];
        dst[k + 1] = a[k + 1] > b[k + 1] ? a[k + 1] : b[k + 1];
        dst[k + 2] = a[k + 2] > b[k + 2] ? a[k + 2] : b[k + 2];
        dst[k + 3] = a[k + 3] > b[k + 3] ? a[k + 3] : b[k + 3];
    }
    for (; k < n; ++k) {
        dst[k] = a[k] > b[k] ? a[k] : b[k];
    }
}

inline void zero(std::span<std::uint64_t> v) noexcept {
    for (auto& c : v) c = 0;
}

/// v[k]++ — Fig. 5 lines (06)/(10).
inline void increment(std::span<std::uint64_t> v, std::size_t k) noexcept {
    ++v[k];
}

inline bool equal(std::span<const std::uint64_t> u,
                  std::span<const std::uint64_t> v) noexcept {
    const std::size_t n = u.size();
    std::size_t k = 0;
    for (; k + kUnroll <= n; k += kUnroll) {
        const std::uint64_t diff = (u[k] ^ v[k]) | (u[k + 1] ^ v[k + 1]) |
                                   (u[k + 2] ^ v[k + 2]) |
                                   (u[k + 3] ^ v[k + 3]);
        if (diff != 0) return false;
    }
    for (; k < n; ++k) {
        if (u[k] != v[k]) return false;
    }
    return true;
}

/// Component-wise ≤ (reflexive).
inline bool leq(std::span<const std::uint64_t> u,
                std::span<const std::uint64_t> v) noexcept {
    const std::size_t n = u.size();
    std::size_t k = 0;
    for (; k + kUnroll <= n; k += kUnroll) {
        // Violation mask per block: branchless lanes, one test per block.
        const bool bad = (u[k] > v[k]) | (u[k + 1] > v[k + 1]) |
                         (u[k + 2] > v[k + 2]) | (u[k + 3] > v[k + 3]);
        if (bad) return false;
    }
    for (; k < n; ++k) {
        if (u[k] > v[k]) return false;
    }
    return true;
}

/// The strict vector order of Equation (2):
///     u < v ⟺ (∀k: u[k] ≤ v[k]) ∧ (∃j: u[j] < v[j]).
inline bool less(std::span<const std::uint64_t> u,
                 std::span<const std::uint64_t> v) noexcept {
    const std::size_t n = u.size();
    bool strict = false;
    std::size_t k = 0;
    for (; k + kUnroll <= n; k += kUnroll) {
        const bool bad = (u[k] > v[k]) | (u[k + 1] > v[k + 1]) |
                         (u[k + 2] > v[k + 2]) | (u[k + 3] > v[k + 3]);
        if (bad) return false;
        strict |= (u[k] < v[k]) | (u[k + 1] < v[k + 1]) |
                  (u[k + 2] < v[k + 2]) | (u[k + 3] < v[k + 3]);
    }
    for (; k < n; ++k) {
        if (u[k] > v[k]) return false;
        if (u[k] < v[k]) strict = true;
    }
    return strict;
}

/// Neither u ≤ v nor v ≤ u (so in particular u ≠ v).
inline bool concurrent(std::span<const std::uint64_t> u,
                       std::span<const std::uint64_t> v) noexcept {
    const std::size_t n = u.size();
    bool u_above = false;  // some u[k] > v[k]
    bool v_above = false;  // some v[k] > u[k]
    std::size_t k = 0;
    for (; k + kUnroll <= n; k += kUnroll) {
        u_above |= (u[k] > v[k]) | (u[k + 1] > v[k + 1]) |
                   (u[k + 2] > v[k + 2]) | (u[k + 3] > v[k + 3]);
        v_above |= (v[k] > u[k]) | (v[k + 1] > u[k + 1]) |
                   (v[k + 2] > u[k + 2]) | (v[k + 3] > u[k + 3]);
        if (u_above && v_above) return true;
    }
    for (; k < n; ++k) {
        if (u[k] > v[k]) u_above = true;
        if (v[k] > u[k]) v_above = true;
        if (u_above && v_above) return true;
    }
    return false;
}

/// Sum of components — a cheap proxy for "how much causal history".
inline std::uint64_t total(std::span<const std::uint64_t> v) noexcept {
    std::uint64_t sum = 0;
    for (const auto c : v) sum += c;
    return sum;
}

/// Bit flags produced by relate(): how `row` compares to `probe`.
/// relate(row, probe) == kRowLeq | kProbeLeq ⟺ equal; == kRowLeq ⟺
/// row < probe; == kProbeLeq ⟺ probe < row; == 0 ⟺ concurrent.
inline constexpr std::uint8_t kRowLeq = 1;    ///< row ≤ probe
inline constexpr std::uint8_t kProbeLeq = 2;  ///< probe ≤ row

/// One-pass three-way relation, the building block of the batch kernels.
inline std::uint8_t relate(std::span<const std::uint64_t> row,
                           std::span<const std::uint64_t> probe) noexcept {
    const std::size_t n = row.size();
    bool row_above = false;    // some row[k] > probe[k]
    bool probe_above = false;  // some probe[k] > row[k]
    std::size_t k = 0;
    for (; k + kUnroll <= n; k += kUnroll) {
        row_above |= (row[k] > probe[k]) | (row[k + 1] > probe[k + 1]) |
                     (row[k + 2] > probe[k + 2]) |
                     (row[k + 3] > probe[k + 3]);
        probe_above |= (probe[k] > row[k]) | (probe[k + 1] > row[k + 1]) |
                       (probe[k + 2] > row[k + 2]) |
                       (probe[k + 3] > row[k + 3]);
        if (row_above && probe_above) return 0;
    }
    for (; k < n; ++k) {
        row_above |= row[k] > probe[k];
        probe_above |= probe[k] > row[k];
        if (row_above && probe_above) return 0;
    }
    return static_cast<std::uint8_t>(
        (row_above ? 0 : kRowLeq) | (probe_above ? 0 : kProbeLeq));
}

}  // namespace syncts::ts
