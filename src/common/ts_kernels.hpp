#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

/// \file ts_kernels.hpp
/// The innermost timestamp kernels: every vector-order operation of
/// Equation (2), expressed over raw component spans so the same code path
/// serves the legacy VectorTimestamp value type, TimestampArena rows, and
/// decoded wire payloads without copying into an owning object first.
///
/// The kernels assume the caller has already matched widths (the public
/// wrappers — VectorTimestamp methods, TimestampArena ops — validate and
/// throw); here a mismatch is a programming error, kept cheap so the
/// per-message hot path of Fig. 5 is a handful of straight-line loops the
/// compiler can unroll and vectorize.

namespace syncts::ts {

/// dst[k] = max(dst[k], src[k]) — the merge of Fig. 5 lines (05)/(09).
inline void join(std::span<std::uint64_t> dst,
                 std::span<const std::uint64_t> src) noexcept {
    for (std::size_t k = 0; k < dst.size(); ++k) {
        if (src[k] > dst[k]) dst[k] = src[k];
    }
}

/// dst = src (widths equal).
inline void copy(std::span<std::uint64_t> dst,
                 std::span<const std::uint64_t> src) noexcept {
    for (std::size_t k = 0; k < dst.size(); ++k) dst[k] = src[k];
}

/// dst = max(a, b) — join without clobbering either input.
inline void join_into(std::span<std::uint64_t> dst,
                      std::span<const std::uint64_t> a,
                      std::span<const std::uint64_t> b) noexcept {
    for (std::size_t k = 0; k < dst.size(); ++k) {
        dst[k] = a[k] > b[k] ? a[k] : b[k];
    }
}

inline void zero(std::span<std::uint64_t> v) noexcept {
    for (auto& c : v) c = 0;
}

/// v[k]++ — Fig. 5 lines (06)/(10).
inline void increment(std::span<std::uint64_t> v, std::size_t k) noexcept {
    ++v[k];
}

inline bool equal(std::span<const std::uint64_t> u,
                  std::span<const std::uint64_t> v) noexcept {
    for (std::size_t k = 0; k < u.size(); ++k) {
        if (u[k] != v[k]) return false;
    }
    return true;
}

/// Component-wise ≤ (reflexive).
inline bool leq(std::span<const std::uint64_t> u,
                std::span<const std::uint64_t> v) noexcept {
    for (std::size_t k = 0; k < u.size(); ++k) {
        if (u[k] > v[k]) return false;
    }
    return true;
}

/// The strict vector order of Equation (2):
///     u < v ⟺ (∀k: u[k] ≤ v[k]) ∧ (∃j: u[j] < v[j]).
inline bool less(std::span<const std::uint64_t> u,
                 std::span<const std::uint64_t> v) noexcept {
    bool strict = false;
    for (std::size_t k = 0; k < u.size(); ++k) {
        if (u[k] > v[k]) return false;
        if (u[k] < v[k]) strict = true;
    }
    return strict;
}

/// Neither u ≤ v nor v ≤ u (so in particular u ≠ v).
inline bool concurrent(std::span<const std::uint64_t> u,
                       std::span<const std::uint64_t> v) noexcept {
    bool u_above = false;  // some u[k] > v[k]
    bool v_above = false;  // some v[k] > u[k]
    for (std::size_t k = 0; k < u.size(); ++k) {
        if (u[k] > v[k]) u_above = true;
        if (v[k] > u[k]) v_above = true;
        if (u_above && v_above) return true;
    }
    return false;
}

/// Sum of components — a cheap proxy for "how much causal history".
inline std::uint64_t total(std::span<const std::uint64_t> v) noexcept {
    std::uint64_t sum = 0;
    for (const auto c : v) sum += c;
    return sum;
}

/// Bit flags produced by relate(): how `row` compares to `probe`.
/// relate(row, probe) == kRowLeq | kProbeLeq ⟺ equal; == kRowLeq ⟺
/// row < probe; == kProbeLeq ⟺ probe < row; == 0 ⟺ concurrent.
inline constexpr std::uint8_t kRowLeq = 1;    ///< row ≤ probe
inline constexpr std::uint8_t kProbeLeq = 2;  ///< probe ≤ row

/// One-pass three-way relation, the building block of the batch kernels.
inline std::uint8_t relate(std::span<const std::uint64_t> row,
                           std::span<const std::uint64_t> probe) noexcept {
    std::uint8_t flags = kRowLeq | kProbeLeq;
    for (std::size_t k = 0; k < row.size(); ++k) {
        if (row[k] > probe[k]) flags &= static_cast<std::uint8_t>(~kRowLeq);
        if (probe[k] > row[k]) flags &= static_cast<std::uint8_t>(~kProbeLeq);
        if (flags == 0) return 0;
    }
    return flags;
}

}  // namespace syncts::ts
