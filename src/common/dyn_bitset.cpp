#include "common/dyn_bitset.hpp"

namespace syncts {

DynBitset& DynBitset::operator|=(const DynBitset& other) noexcept {
    const std::size_t n = words_.size() < other.words_.size()
                              ? words_.size()
                              : other.words_.size();
    for (std::size_t i = 0; i < n; ++i) words_[i] |= other.words_[i];
    return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& other) noexcept {
    const std::size_t n = words_.size() < other.words_.size()
                              ? words_.size()
                              : other.words_.size();
    for (std::size_t i = 0; i < n; ++i) words_[i] &= other.words_[i];
    for (std::size_t i = n; i < words_.size(); ++i) words_[i] = 0;
    return *this;
}

std::size_t DynBitset::or_with(const DynBitset& other, std::size_t word_begin,
                               std::size_t word_end) noexcept {
    std::size_t end = words_.size() < other.words_.size()
                          ? words_.size()
                          : other.words_.size();
    if (word_end < end) end = word_end;
    if (word_begin >= end) return 0;
    for (std::size_t i = word_begin; i < end; ++i) {
        words_[i] |= other.words_[i];
    }
    return end - word_begin;
}

std::size_t DynBitset::count_and(const DynBitset& other) const noexcept {
    const std::size_t n = words_.size() < other.words_.size()
                              ? words_.size()
                              : other.words_.size();
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        total += static_cast<std::size_t>(
            __builtin_popcountll(words_[i] & other.words_[i]));
    }
    return total;
}

bool DynBitset::is_subset_of(const DynBitset& other) const noexcept {
    if (other.words_.size() < words_.size()) {
        for (std::size_t i = other.words_.size(); i < words_.size(); ++i) {
            if (words_[i] != 0) return false;
        }
    }
    const std::size_t n = words_.size() < other.words_.size()
                              ? words_.size()
                              : other.words_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if ((words_[i] & ~other.words_[i]) != 0) return false;
    }
    return true;
}

bool DynBitset::intersects(const DynBitset& other) const noexcept {
    const std::size_t n = words_.size() < other.words_.size()
                              ? words_.size()
                              : other.words_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
}

std::size_t DynBitset::count() const noexcept {
    std::size_t total = 0;
    for (const auto w : words_) {
        total += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return total;
}

std::size_t DynBitset::find_next(std::size_t from) const noexcept {
    if (from >= size_) return size_;
    std::size_t w = from / kBits;
    std::uint64_t bits = words_[w] & (~std::uint64_t{0} << (from % kBits));
    for (;;) {
        if (bits != 0) {
            const std::size_t pos =
                w * kBits + static_cast<unsigned>(__builtin_ctzll(bits));
            return pos < size_ ? pos : size_;
        }
        if (++w >= words_.size()) return size_;
        bits = words_[w];
    }
}

}  // namespace syncts
