#include "common/rng.hpp"

namespace syncts {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Classic rejection (as in arc4random_uniform): discard draws below
    // 2^64 mod bound so the remainder is exactly uniform.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t raw = (*this)();
        if (raw >= threshold) return raw % bound;
    }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + below(hi - lo + 1);
}

bool Rng::chance(std::uint64_t numerator, std::uint64_t denominator) noexcept {
    if (denominator == 0) return false;
    return below(denominator) < numerator;
}

double Rng::uniform01() noexcept {
    // 53 top bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

}  // namespace syncts
