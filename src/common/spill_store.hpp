#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

/// \file spill_store.hpp
/// Checksummed spill files for out-of-core analysis (docs/STREAMING.md).
///
/// The streaming closure retires completed chunk of bitset rows below the
/// frontier to disk and rehydrates them on demand. `SpillStore` owns that
/// directory: each chunk becomes one self-validating file
///
///   "SYSP" | version u8 | chunk id u64le | payload length u64le |
///   payload bytes | FNV-1a 64 trailer over everything before it
///
/// following the same trailer discipline as every other framed format in
/// the tree (checksum.hpp) and the SlabPool recycling discipline for its
/// scratch buffers (the encode buffer is reused across put() calls, so a
/// steady-state spill loop performs no per-chunk heap allocation beyond
/// the file I/O itself). Files the store wrote are unlinked when the
/// store is destroyed unless `keep_files(true)` was requested.
///
/// Corruption is a typed `SpillError`, never silent: a truncated file, a
/// flipped bit, a wrong chunk id, or a hostile length field all throw.

namespace syncts {

inline constexpr char kSpillMagic[4] = {'S', 'Y', 'S', 'P'};
inline constexpr std::uint8_t kSpillVersion = 1;

/// Header bytes before the payload: magic + version + id + length.
inline constexpr std::size_t kSpillHeaderBytes = 4 + 1 + 8 + 8;

/// Typed error for spill-file corruption or I/O failure.
class SpillError : public std::runtime_error {
public:
    enum class Kind { io, format, checksum };

    SpillError(Kind kind, std::uint64_t chunk_id, const std::string& what)
        : std::runtime_error("spill chunk " + std::to_string(chunk_id) +
                             ": " + what),
          kind_(kind),
          chunk_id_(chunk_id) {}

    Kind kind() const noexcept { return kind_; }
    std::uint64_t chunk_id() const noexcept { return chunk_id_; }

private:
    Kind kind_;
    std::uint64_t chunk_id_;
};

class SpillStore {
public:
    /// Opens (creating if needed) `directory` as the spill root.
    /// Throws SpillError{io} if the directory cannot be created.
    explicit SpillStore(std::string directory);

    ~SpillStore();

    SpillStore(const SpillStore&) = delete;
    SpillStore& operator=(const SpillStore&) = delete;

    /// Writes chunk `id` (overwriting any previous payload for the id).
    void put(std::uint64_t id, std::span<const std::uint8_t> payload);

    /// Reads and validates chunk `id` into `out` (replacing its
    /// contents; capacity is reused across calls by the caller).
    /// Throws SpillError on a missing, truncated, or corrupt file.
    void get(std::uint64_t id, std::vector<std::uint8_t>& out);

    bool contains(std::uint64_t id) const;

    /// Unlinks chunk `id` (no-op when absent).
    void remove(std::uint64_t id);

    /// When true, files survive the store's destruction (default false:
    /// spill data is scratch state, not a durable artifact).
    void keep_files(bool keep) noexcept { keep_files_ = keep; }

    const std::string& directory() const noexcept { return directory_; }
    std::size_t chunk_count() const noexcept { return sizes_.size(); }
    std::uint64_t bytes_written() const noexcept { return bytes_written_; }
    std::uint64_t bytes_read() const noexcept { return bytes_read_; }

    /// Registers spill_* metrics under `prefix` (docs/OBSERVABILITY.md):
    ///   <prefix>_writes / _reads     chunk put / get counts
    ///   <prefix>_bytes_written / _bytes_read   file payload traffic
    ///   <prefix>_chunks              live chunk files (gauge)
    void attach_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "spill");

    /// Pure codec halves, separated from the filesystem so the format is
    /// fuzzable in-memory (tests/fuzz_parsers_test.cpp). encode_chunk
    /// appends the framed bytes to `out`; decode_chunk validates a full
    /// frame and returns a span over the payload inside `bytes`.
    static void encode_chunk(std::uint64_t id,
                             std::span<const std::uint8_t> payload,
                             std::vector<std::uint8_t>& out);
    static std::span<const std::uint8_t> decode_chunk(
        std::span<const std::uint8_t> bytes, std::uint64_t expected_id);

private:
    std::string path_for(std::uint64_t id) const;

    std::string directory_;
    std::unordered_map<std::uint64_t, std::uint64_t> sizes_;
    std::vector<std::uint8_t> encode_buffer_;
    std::vector<std::uint8_t> read_buffer_;
    std::uint64_t bytes_written_ = 0;
    std::uint64_t bytes_read_ = 0;
    bool keep_files_ = false;

    obs::Counter* writes_metric_ = nullptr;
    obs::Counter* reads_metric_ = nullptr;
    obs::Counter* bytes_written_metric_ = nullptr;
    obs::Counter* bytes_read_metric_ = nullptr;
    obs::Gauge* chunks_metric_ = nullptr;
};

}  // namespace syncts
