#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file dyn_bitset.hpp
/// A compact runtime-sized bitset used for transitive-closure rows,
/// reachability sets, and adjacency tests. Supports the bulk operations the
/// poset and trace modules need (or-assign, subset test, popcount, iteration
/// over set bits) which std::vector<bool> does not provide efficiently.

namespace syncts {

class DynBitset {
public:
    DynBitset() = default;

    /// Creates a bitset of `size` bits, all clear.
    explicit DynBitset(std::size_t size)
        : size_(size), words_((size + kBits - 1) / kBits, 0) {}

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    bool test(std::size_t pos) const noexcept {
        return (words_[pos / kBits] >> (pos % kBits)) & 1u;
    }

    void set(std::size_t pos) noexcept {
        words_[pos / kBits] |= (std::uint64_t{1} << (pos % kBits));
    }

    void reset(std::size_t pos) noexcept {
        words_[pos / kBits] &= ~(std::uint64_t{1} << (pos % kBits));
    }

    void clear() noexcept {
        for (auto& w : words_) w = 0;
    }

    /// Number of 64-bit words backing the set (ceil(size / 64)).
    std::size_t num_words() const noexcept { return words_.size(); }

    /// Word i, bits [i*64, i*64+64) — the closure kernel's unit of work.
    std::uint64_t word(std::size_t i) const noexcept { return words_[i]; }

    /// words_[i] |= bits. The caller owns bit bookkeeping past size().
    void or_word(std::size_t i, std::uint64_t bits) noexcept {
        words_[i] |= bits;
    }

    /// this |= other over the word range [word_begin, word_end) only —
    /// the blocked row-OR at the heart of the parallel transitive
    /// closure. Returns the number of words touched.
    std::size_t or_with(const DynBitset& other, std::size_t word_begin = 0,
                        std::size_t word_end = SIZE_MAX) noexcept;

    /// popcount(*this & other) without materializing the intersection.
    std::size_t count_and(const DynBitset& other) const noexcept;

    /// Bitwise OR-assign; both operands must have the same size.
    DynBitset& operator|=(const DynBitset& other) noexcept;

    /// Bitwise AND-assign; both operands must have the same size.
    DynBitset& operator&=(const DynBitset& other) noexcept;

    /// True when every bit set here is also set in `other`.
    bool is_subset_of(const DynBitset& other) const noexcept;

    /// True when the two sets share at least one bit.
    bool intersects(const DynBitset& other) const noexcept;

    /// Number of set bits.
    std::size_t count() const noexcept;

    /// Index of the first set bit at or after `from`; size() when none.
    std::size_t find_next(std::size_t from) const noexcept;

    /// Calls fn(index) for every set bit in ascending order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits != 0) {
                const auto bit =
                    static_cast<unsigned>(__builtin_ctzll(bits));
                fn(w * kBits + bit);
                bits &= bits - 1;
            }
        }
    }

    friend bool operator==(const DynBitset& a, const DynBitset& b) noexcept {
        return a.size_ == b.size_ && a.words_ == b.words_;
    }

private:
    static constexpr std::size_t kBits = 64;

    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace syncts
