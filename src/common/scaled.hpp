#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

/// \file scaled.hpp
/// Parsing for human-scaled counts ("500", "250k", "10m") shared by the
/// CLI tools. Extracted from syncts_stats so the suffix arithmetic is
/// testable and overflow-checked in one place: a 10m-event streaming run
/// must not wrap anywhere between the flag parser and the derived
/// counters it feeds.

namespace syncts::common {

/// Parses a decimal count with an optional k (×1e3) or m (×1e6) suffix.
/// Returns nullopt on empty input, a non-digit prefix, trailing garbage
/// after the suffix, or a value whose scaled form overflows uint64.
inline std::optional<std::uint64_t> parse_scaled_count(std::string_view text) {
    if (text.empty()) return std::nullopt;
    std::uint64_t value = 0;
    std::size_t i = 0;
    for (; i < text.size(); ++i) {
        const char c = text[i];
        if (c < '0' || c > '9') break;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
        value = value * 10 + digit;
    }
    if (i == 0) return std::nullopt;  // no digits at all
    std::uint64_t scale = 1;
    if (i < text.size()) {
        const char suffix = text[i];
        if (suffix == 'k' || suffix == 'K') {
            scale = 1000;
        } else if (suffix == 'm' || suffix == 'M') {
            scale = 1'000'000;
        } else {
            return std::nullopt;
        }
        if (i + 1 != text.size()) return std::nullopt;  // trailing garbage
    }
    if (scale != 1 && value > UINT64_MAX / scale) return std::nullopt;
    return value * scale;
}

}  // namespace syncts::common
