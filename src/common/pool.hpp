#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

/// \file pool.hpp
/// syncts::Pool — the analysis-side work-stealing thread pool, plus the
/// AnalysisOptions knob every post-hoc pipeline (Poset::close, offline
/// realizer validation, ground-truth verification, the batch precedence
/// kernels) threads through.
///
/// Model: a fixed set of worker threads parked on a condition variable;
/// parallel_for splits an index range [0, n) into contiguous chunks,
/// stripes the chunks across all participants (workers + the calling
/// thread, which always joins the work), and lets idle participants steal
/// chunks from other stripes once their own runs dry. Chunks are claimed
/// with one relaxed fetch_add each, so the scheduling cost per chunk is a
/// few atomic ops — size chunks accordingly (the auto grain targets ~8
/// chunks per participant).
///
/// Determinism contract (docs/PARALLELISM.md): the pool schedules *which
/// thread* runs a chunk nondeterministically, but the chunk layout for a
/// given (n, grain, threads) is fixed, every chunk computes over a
/// disjoint index range, and map_chunks hands back per-chunk results in
/// chunk (= index) order. Reductions written against map_chunks/
/// parallel_for_chunks are therefore bit-identical run-to-run and
/// thread-count-to-thread-count as long as the per-chunk function is a
/// pure function of its index range — which every analysis kernel in this
/// library is. Tested against the serial paths over 500 seeded workloads
/// in tests/parallel_test.cpp.

namespace syncts {

class Pool;

/// Opt-in knob for the analysis pipelines. Defaults reproduce the serial
/// behaviour exactly (threads == 1, no pool, no metrics).
struct AnalysisOptions {
    /// Worker count for the analysis pipelines; 0 means "one per hardware
    /// thread". 1 runs inline on the caller with no pool machinery.
    std::size_t threads = 1;

    /// Reuse an existing pool instead of spawning one per call (the
    /// 500-seed equivalence tests and syncts_stats do this). When set, the
    /// pool's own thread count wins over `threads`.
    Pool* pool = nullptr;

    /// When set, analysis kernels register and bump their counters here
    /// (analysis_tasks, closure_word_ops, ...). All analysis counters are
    /// deterministic at a fixed thread count.
    obs::MetricsRegistry* metrics = nullptr;

    /// True when the caller asked for any parallel machinery.
    bool parallel() const noexcept { return pool != nullptr || threads != 1; }
};

/// Fixed-size work-stealing pool. Spawns threads-1 workers (the caller is
/// always the extra participant); thread-safe for one parallel_for at a
/// time (concurrent submissions from different threads serialize on an
/// internal mutex).
class Pool {
public:
    /// `threads` participants total; 0 means one per hardware thread.
    explicit Pool(std::size_t threads = 0);
    ~Pool();

    Pool(const Pool&) = delete;
    Pool& operator=(const Pool&) = delete;

    /// Total participants (workers + the calling thread).
    std::size_t threads() const noexcept { return workers_.size() + 1; }

    /// 0 -> hardware_concurrency (at least 1), otherwise `requested`.
    static std::size_t resolve_threads(std::size_t requested) noexcept;

    /// Runs body(begin, end) over chunks of [0, n); blocks until every
    /// chunk completed. `grain` is the chunk size in indices; 0 picks
    /// max(1, n / (threads * 8)). Exceptions from the body are rethrown
    /// on the caller (first one wins; remaining chunks still run).
    void parallel_for(std::size_t n, std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>& body);

    /// As parallel_for but the body also receives the chunk index —
    /// the building block for deterministic sharded reductions.
    void parallel_for_chunks(
        std::size_t n, std::size_t grain,
        const std::function<void(std::size_t, std::size_t, std::size_t)>&
            body);

    /// Deterministic map over chunks: returns map(begin, end) per chunk,
    /// in chunk order, so reducing the result left-to-right is independent
    /// of the runtime schedule.
    template <typename T, typename Map>
    std::vector<T> map_chunks(std::size_t n, std::size_t grain, Map&& map) {
        std::vector<T> out(num_chunks(n, effective_grain(n, grain)));
        parallel_for_chunks(
            n, grain,
            [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                out[chunk] = map(begin, end);
            });
        return out;
    }

    /// Chunk size actually used for (n, grain) at this pool's width.
    std::size_t effective_grain(std::size_t n,
                                std::size_t grain) const noexcept;

    static std::size_t num_chunks(std::size_t n, std::size_t grain) noexcept {
        return grain == 0 ? 0 : (n + grain - 1) / grain;
    }

    /// Registers `<prefix>_tasks` (chunks dispatched — deterministic for a
    /// fixed thread count) and starts counting. The registry must outlive
    /// the pool.
    void attach_metrics(obs::MetricsRegistry& registry,
                        std::string_view prefix = "analysis");
    void detach_metrics() noexcept { metric_tasks_ = nullptr; }

private:
    struct Job;

    void worker_main(std::size_t worker_index);
    void run_participant(Job& job, std::size_t participant) noexcept;

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::mutex submit_mu_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    Job* job_ = nullptr;
    std::uint64_t epoch_ = 0;
    std::size_t active_ = 0;
    bool stop_ = false;
    obs::Counter* metric_tasks_ = nullptr;
};

/// Resolves AnalysisOptions to a usable pool: borrows options.pool when
/// set, otherwise owns a freshly spawned one for the lease's lifetime.
/// Callers should check options.parallel() first and keep the serial path
/// pool-free.
class PoolLease {
public:
    explicit PoolLease(const AnalysisOptions& options)
        : borrowed_(options.pool),
          owned_(borrowed_ == nullptr
                     ? new Pool(Pool::resolve_threads(options.threads))
                     : nullptr) {
        // A borrowed pool's metrics attachment belongs to its owner; only
        // a pool spawned for this lease picks up the options' registry.
        if (owned_ != nullptr && options.metrics != nullptr) {
            owned_->attach_metrics(*options.metrics);
        }
    }
    ~PoolLease() { delete owned_; }

    PoolLease(const PoolLease&) = delete;
    PoolLease& operator=(const PoolLease&) = delete;

    Pool& pool() noexcept { return owned_ != nullptr ? *owned_ : *borrowed_; }

private:
    Pool* borrowed_;
    Pool* owned_;
};

}  // namespace syncts
