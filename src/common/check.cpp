#include "common/check.hpp"

#include <sstream>

namespace syncts::detail {

namespace {

std::string format_failure(const char* kind, const char* expr,
                           const char* file, int line,
                           const std::string& what) {
    std::ostringstream os;
    os << kind << " failed: (" << expr << ") at " << file << ':' << line
       << " — " << what;
    return os.str();
}

}  // namespace

void throw_requirement_failure(const char* expr, const char* file, int line,
                               const std::string& what) {
    throw std::invalid_argument(
        format_failure("requirement", expr, file, line, what));
}

void throw_invariant_failure(const char* expr, const char* file, int line,
                             const std::string& what) {
    throw std::logic_error(
        format_failure("invariant", expr, file, line, what));
}

}  // namespace syncts::detail
