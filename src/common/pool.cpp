#include "common/pool.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"

namespace syncts {

/// One parallel_for invocation. Chunks are striped across participants;
/// each participant claims chunks from its own stripe with a relaxed
/// fetch_add and, once the stripe is dry, steals from the other stripes in
/// round-robin order. The cursors may overshoot their stripe end by one
/// per thief — harmless, the bound check rejects the overshoot.
struct Pool::Job {
    std::size_t n = 0;
    std::size_t grain = 0;
    std::size_t chunks = 0;
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body =
        nullptr;
    /// cursor[p] walks [stripe_begin[p], stripe_end[p]).
    std::unique_ptr<std::atomic<std::size_t>[]> cursor;
    std::vector<std::size_t> stripe_end;
    std::atomic<std::size_t> done{0};
    std::mutex error_mu;
    std::exception_ptr error;
};

Pool::Pool(std::size_t threads) {
    const std::size_t total = resolve_threads(threads);
    workers_.reserve(total - 1);
    for (std::size_t w = 0; w + 1 < total; ++w) {
        workers_.emplace_back([this, w] { worker_main(w); });
    }
}

Pool::~Pool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

std::size_t Pool::resolve_threads(std::size_t requested) noexcept {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t Pool::effective_grain(std::size_t n,
                                  std::size_t grain) const noexcept {
    if (n == 0) return 1;
    if (grain != 0) return grain;
    // ~8 chunks per participant: enough slack for stealing to balance,
    // few enough that the per-chunk claim cost stays invisible.
    return std::max<std::size_t>(1, n / (threads() * 8));
}

void Pool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
    parallel_for_chunks(
        n, grain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
            body(begin, end);
        });
}

void Pool::parallel_for_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
    if (n == 0) return;
    const std::size_t g = effective_grain(n, grain);
    const std::size_t chunks = num_chunks(n, g);
    if (metric_tasks_ != nullptr) {
        metric_tasks_->inc(static_cast<std::uint64_t>(chunks));
    }
    const auto run_chunk = [&](std::size_t chunk) {
        const std::size_t begin = chunk * g;
        body(chunk, begin, std::min(n, begin + g));
    };
    if (workers_.empty() || chunks <= 1) {
        for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
        return;
    }

    // One job at a time; concurrent callers queue up here.
    std::lock_guard<std::mutex> submit(submit_mu_);

    Job job;
    job.n = n;
    job.grain = g;
    job.chunks = chunks;
    job.body = &body;
    const std::size_t participants = threads();
    job.cursor =
        std::make_unique<std::atomic<std::size_t>[]>(participants);
    job.stripe_end.resize(participants);
    for (std::size_t p = 0; p < participants; ++p) {
        job.cursor[p].store(chunks * p / participants,
                            std::memory_order_relaxed);
        job.stripe_end[p] = chunks * (p + 1) / participants;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = &job;
        ++epoch_;
    }
    work_cv_.notify_all();

    run_participant(job, 0);

    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] {
            return job.done.load(std::memory_order_acquire) == job.chunks &&
                   active_ == 0;
        });
        job_ = nullptr;  // late wakers must not touch the dead job
    }
    if (job.error) std::rethrow_exception(job.error);
}

void Pool::worker_main(std::size_t worker_index) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
        Job* job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock,
                          [&] { return stop_ || epoch_ != seen_epoch; });
            if (stop_) return;
            seen_epoch = epoch_;
            job = job_;
            if (job != nullptr) ++active_;
        }
        if (job == nullptr) continue;  // job finished before we woke
        run_participant(*job, worker_index + 1);
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
        }
        done_cv_.notify_all();
    }
}

void Pool::run_participant(Job& job, std::size_t participant) noexcept {
    const std::size_t participants = threads();
    std::size_t completed = 0;
    for (std::size_t v = 0; v < participants; ++v) {
        const std::size_t victim = (participant + v) % participants;
        for (;;) {
            const std::size_t chunk = job.cursor[victim].fetch_add(
                1, std::memory_order_relaxed);
            if (chunk >= job.stripe_end[victim]) break;
            const std::size_t begin = chunk * job.grain;
            const std::size_t end = std::min(job.n, begin + job.grain);
            try {
                (*job.body)(chunk, begin, end);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job.error_mu);
                if (!job.error) job.error = std::current_exception();
            }
            ++completed;
        }
    }
    if (completed != 0 &&
        job.done.fetch_add(completed, std::memory_order_acq_rel) +
                completed ==
            job.chunks) {
        done_cv_.notify_all();
    }
}

void Pool::attach_metrics(obs::MetricsRegistry& registry,
                          std::string_view prefix) {
    metric_tasks_ = &registry.counter(std::string(prefix) + "_tasks");
}

}  // namespace syncts
