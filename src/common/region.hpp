#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "obs/metrics.hpp"

/// \file region.hpp
/// Epoch-scoped region memory for timestamp slabs (docs/MEMORY.md).
///
/// Long-lived multi-epoch servers retire whole epochs at once: every
/// timestamp allocated during epoch e becomes reclaimable together, the
/// moment the Drummond–Barbosa-style stability frontier shows epoch e is
/// durable everywhere. That calls for region allocation, not per-object
/// frees — a `Region` is the epoch's arena backed by slabs leased from a
/// `SlabPool`, and closing the region returns every slab in O(1), no
/// per-handle bookkeeping.
///
/// Three layers:
///  - `Slab` / `SlabPool`: power-of-two size-classed recycling of raw
///    std::uint64_t chunks. Steady state across epoch churn performs zero
///    heap allocations: epoch e+1's arena is served from epoch e−k's
///    returned slabs.
///  - `TimestampArena` (timestamp_arena.hpp) optionally draws its slab
///    from a pool instead of the heap; its destructor gives the slab
///    back.
///  - `RegionStore`: the epoch → region map. Handles become
///    `RegionHandle{epoch, index}` pairs validated against live regions,
///    so a read against a retired epoch is a typed `RegionError`, never a
///    dangling span. `pin()`/`unpin()` let crash recovery and analysis
///    hold a region open past its stability point; `close()` on a pinned
///    region is deferred until the last unpin.

namespace syncts {

class TimestampArena;

/// Typed error for timestamp-handle-space exhaustion: the arena cannot
/// grow past `max_slots` (at most 2^32−1, the 32-bit handle space).
/// Thrown instead of silently wrapping handles — exhaustion is an
/// operational condition a long-lived server must be able to catch and
/// shed load on, not UB.
class ArenaFullError : public std::length_error {
public:
    ArenaFullError(std::size_t requested_slots, std::size_t max_slots)
        : std::length_error(
              "timestamp arena full: slot " +
              std::to_string(requested_slots) + " would exceed the " +
              std::to_string(max_slots) + "-slot handle space"),
          requested_slots_(requested_slots),
          max_slots_(max_slots) {}

    std::size_t requested_slots() const noexcept { return requested_slots_; }
    std::size_t max_slots() const noexcept { return max_slots_; }

private:
    std::size_t requested_slots_;
    std::size_t max_slots_;
};

/// Typed error for touching a region that is not live (never opened, or
/// already retired to the pool).
class RegionError : public std::logic_error {
public:
    explicit RegionError(EpochId epoch)
        : std::logic_error("region for epoch " + std::to_string(epoch) +
                           " is not live"),
          epoch_(epoch) {}

    EpochId epoch() const noexcept { return epoch_; }

private:
    EpochId epoch_;
};

/// A raw chunk of std::uint64_t words. Move-only; ownership passes
/// through the pool by value.
struct Slab {
    std::unique_ptr<std::uint64_t[]> words;
    std::size_t capacity_words = 0;

    Slab() = default;
    Slab(std::unique_ptr<std::uint64_t[]> w, std::size_t cap) noexcept
        : words(std::move(w)), capacity_words(cap) {}

    explicit operator bool() const noexcept { return words != nullptr; }
};

/// Recycles slabs across regions in power-of-two size classes.
///
/// `acquire(min_words)` rounds the request up to the next size class and
/// pops a cached slab of that class when one exists (pure pointer moves),
/// else heap-allocates. `release()` pushes the slab back into its class
/// in O(1); nothing is freed until `trim()` or destruction, so a server
/// cycling epochs of similar width reaches a zero-allocation steady
/// state whose footprint is O(live width), not O(epochs).
///
/// Not thread-safe: one pool per protocol run / analysis, like the
/// arenas it feeds.
class SlabPool {
public:
    SlabPool() = default;
    SlabPool(const SlabPool&) = delete;
    SlabPool& operator=(const SlabPool&) = delete;

    /// A slab with capacity_words >= max(min_words, 1) — recycled when a
    /// matching class is cached, freshly allocated otherwise.
    Slab acquire(std::size_t min_words);

    /// Returns a slab to its size class in O(1). Empty slabs are ignored.
    void release(Slab&& slab) noexcept;

    /// Frees every cached slab (the pool stays usable).
    void trim() noexcept;

    /// Bytes currently cached in the pool (released, awaiting reuse).
    std::size_t cached_bytes() const noexcept { return cached_bytes_; }

    /// Bytes currently on lease (acquired, not yet released).
    std::size_t leased_bytes() const noexcept { return leased_bytes_; }

    /// High-water mark of leased + cached bytes — the pool's real
    /// footprint. The epoch-churn soak gates on this staying O(live
    /// width) instead of O(epochs).
    std::size_t peak_bytes() const noexcept { return peak_bytes_; }

    std::uint64_t acquires() const noexcept { return acquires_; }
    std::uint64_t reuses() const noexcept { return reuses_; }

    /// Registers `<prefix>_acquires/_reuses/_releases` counters and
    /// `<prefix>_cached_bytes/_leased_bytes/_peak_bytes` gauges. The
    /// registry must outlive the pool.
    void attach_metrics(obs::MetricsRegistry& registry,
                        std::string_view prefix = "slabpool");

private:
    static std::size_t size_class(std::size_t words) noexcept;
    void note_footprint() noexcept;

    /// Buckets by log2(capacity_words); 64 covers every size_t class.
    std::array<std::vector<Slab>, 64> buckets_{};
    std::size_t cached_bytes_ = 0;
    std::size_t leased_bytes_ = 0;
    std::size_t peak_bytes_ = 0;
    std::uint64_t acquires_ = 0;
    std::uint64_t reuses_ = 0;
    std::uint64_t releases_ = 0;
    obs::Counter* metric_acquires_ = nullptr;
    obs::Counter* metric_reuses_ = nullptr;
    obs::Counter* metric_releases_ = nullptr;
    obs::Gauge* metric_cached_bytes_ = nullptr;
    obs::Gauge* metric_leased_bytes_ = nullptr;
    obs::Gauge* metric_peak_bytes_ = nullptr;
};

/// A timestamp handle qualified by the epoch whose region owns the slot.
/// The pair form makes retired-region reads detectable: RegionStore
/// validates the epoch against its live map before producing a span.
struct RegionHandle {
    EpochId epoch = 0;
    std::uint32_t index = 0;

    friend bool operator==(RegionHandle a, RegionHandle b) noexcept {
        return a.epoch == b.epoch && a.index == b.index;
    }
};

/// The epoch → region map: one pool-backed TimestampArena per live
/// epoch, retired wholesale.
class RegionStore {
public:
    /// The pool must outlive the store (closed regions return their
    /// slabs to it).
    explicit RegionStore(SlabPool& pool) : pool_(&pool) {}

    RegionStore(const RegionStore&) = delete;
    RegionStore& operator=(const RegionStore&) = delete;

    /// Out of line: TimestampArena is incomplete here.
    ~RegionStore();

    /// Opens epoch `epoch`'s region with an arena of `width`-component
    /// timestamps, pre-reserving `reserve_slots` slots from the pool.
    /// The epoch must not already be live.
    TimestampArena& open(EpochId epoch, std::size_t width,
                         std::size_t reserve_slots = 0);

    bool live(EpochId epoch) const noexcept {
        return regions_.find(epoch) != regions_.end();
    }

    /// The live region's arena; throws RegionError when retired/unknown.
    TimestampArena& arena(EpochId epoch);
    const TimestampArena& arena(EpochId epoch) const;

    /// Validated component view of the slot behind `h` — the {epoch,
    /// index} pair is checked against the live map first.
    std::span<const std::uint64_t> span(RegionHandle h) const;
    std::span<std::uint64_t> span(RegionHandle h);

    /// Holds the region open past close(): recovery replay and analysis
    /// pin the epochs they read so stability-driven retirement cannot
    /// pull the slab out from under them.
    void pin(EpochId epoch);

    /// Drops one pin; executes a deferred close() when the last pin on a
    /// closing region is released.
    void unpin(EpochId epoch);

    /// Retires the region: every slab returns to the pool in O(1). On a
    /// pinned region the close is deferred to the last unpin. Unknown
    /// epochs throw RegionError.
    void close(EpochId epoch);

    /// Lowest live epoch; `fallback` when no region is live.
    EpochId frontier(EpochId fallback = 0) const noexcept {
        return regions_.empty() ? fallback : regions_.begin()->first;
    }

    std::size_t live_regions() const noexcept { return regions_.size(); }

    SlabPool& pool() noexcept { return *pool_; }

    /// Registers `<prefix>_opens/_closes/_deferred_closes` counters and
    /// a `<prefix>_live` gauge.
    void attach_metrics(obs::MetricsRegistry& registry,
                        std::string_view prefix = "region");

private:
    struct Region {
        std::unique_ptr<TimestampArena> arena;
        std::uint32_t pins = 0;
        bool close_deferred = false;
    };

    void retire(std::map<EpochId, Region>::iterator it);

    SlabPool* pool_;
    /// Ordered so frontier() is the first key.
    std::map<EpochId, Region> regions_;
    obs::Counter* metric_opens_ = nullptr;
    obs::Counter* metric_closes_ = nullptr;
    obs::Counter* metric_deferred_ = nullptr;
    obs::Gauge* metric_live_ = nullptr;
};

}  // namespace syncts
