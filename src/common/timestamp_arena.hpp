#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/ts_kernels.hpp"
#include "obs/metrics.hpp"

/// \file timestamp_arena.hpp
/// Arena storage for vector timestamps: one flat std::uint64_t slab per
/// system instead of one heap vector per timestamp.
///
/// Every timestamp in a system shares one width (d for the online
/// algorithm, N for the Fidge–Mattern baselines, width(P) offline), so the
/// arena stores the width once and packs the components of slot h at
/// slab[h*width .. (h+1)*width). Handles are plain 32-bit slot indices —
/// stable across growth (the slab may reallocate, but handles index rows,
/// not addresses), trivially serializable, and half the size of a pointer
/// in the structures that hold them (TimestampedTrace keeps one per
/// message).
///
/// The layout flattens what used to be a std::vector<VectorTimestamp> —
/// M separate allocations, each with its own capacity/size header and
/// pointer chase — into a single structure-of-arrays slab with zero
/// per-timestamp overhead, so the batch precedence kernels (leq_many,
/// relate_many, dominators_of) stream rows at memory bandwidth.
///
/// Spans returned by span()/row() are invalidated by allocate()/reserve()
/// (slab growth may reallocate); re-fetch after any allocation, exactly as
/// with std::vector iterators.

namespace syncts {

/// Index of a timestamp slot within a TimestampArena, 0-based, dense.
using TsHandle = std::uint32_t;

/// Sentinel for "no timestamp slot".
inline constexpr TsHandle kNoTimestamp =
    std::numeric_limits<TsHandle>::max();

class TimestampArena {
public:
    /// Arena for timestamps of `width` components each; optionally
    /// pre-reserves room for `reserve_slots` slots.
    explicit TimestampArena(std::size_t width, std::size_t reserve_slots = 0)
        : width_(width) {
        slab_.reserve(width_ * reserve_slots);
    }

    /// Components per timestamp (fixed for the arena's lifetime).
    std::size_t width() const noexcept { return width_; }

    /// Number of allocated slots.
    std::size_t size() const noexcept {
        return width_ == 0 ? zero_width_slots_ : slab_.size() / width_;
    }

    /// Slots the slab can hold before reallocating.
    std::size_t capacity() const noexcept {
        return width_ == 0 ? zero_width_slots_ : slab_.capacity() / width_;
    }

    /// Pre-grows the slab to hold at least `slots` slots.
    void reserve(std::size_t slots) { slab_.reserve(slots * width_); }

    /// Allocates one zero-initialized slot and returns its handle.
    TsHandle allocate() {
        const std::size_t slot = size();
        SYNCTS_REQUIRE(slot < kNoTimestamp, "timestamp arena full");
        if (width_ == 0) {
            ++zero_width_slots_;
        } else {
            if (metric_growths_ != nullptr &&
                slab_.size() + width_ > slab_.capacity()) {
                metric_growths_->inc();
            }
            slab_.resize(slab_.size() + width_, 0);
        }
        if (metric_slots_ != nullptr) {
            metric_slots_->inc();
            metric_bytes_->set(static_cast<std::int64_t>(
                slab_.capacity() * sizeof(std::uint64_t)));
        }
        return static_cast<TsHandle>(slot);
    }

    /// Allocates one slot holding a copy of `components` (width must
    /// match).
    TsHandle allocate(std::span<const std::uint64_t> components) {
        SYNCTS_REQUIRE(components.size() == width_,
                       "component count does not match the arena width");
        const TsHandle h = allocate();
        ts::copy(span(h), components);
        return h;
    }

    /// Mutable view of slot h's components.
    std::span<std::uint64_t> span(TsHandle h) {
        SYNCTS_REQUIRE(h < size(), "timestamp handle out of range");
        return {slab_.data() + static_cast<std::size_t>(h) * width_, width_};
    }

    /// Read-only view of slot h's components.
    std::span<const std::uint64_t> span(TsHandle h) const {
        SYNCTS_REQUIRE(h < size(), "timestamp handle out of range");
        return {slab_.data() + static_cast<std::size_t>(h) * width_, width_};
    }

    /// Drops every slot but keeps the slab's capacity — the steady-state
    /// reuse path (no allocation on the next size() allocations up to
    /// capacity()).
    void clear() noexcept {
        slab_.clear();
        zero_width_slots_ = 0;
        if (metric_clears_ != nullptr) metric_clears_->inc();
    }

    /// The whole slab (row h at [h*width, (h+1)*width)) — for bulk
    /// serialization and the batch kernels.
    std::span<const std::uint64_t> slab() const noexcept { return slab_; }

    /// Registers this arena's metrics under `<prefix>_*` and starts
    /// counting: `_slots` (handle churn), `_slab_growths` (reallocations),
    /// `_slab_bytes` (capacity gauge), `_clears`, `_kernel_calls` and
    /// `_kernel_rows` (batch-kernel traffic). Registration allocates; the
    /// instrumented hot path does not (one branch + relaxed add). The
    /// registry must outlive the arena.
    void attach_metrics(obs::MetricsRegistry& registry,
                        std::string_view prefix = "arena") {
        const std::string p(prefix);
        metric_slots_ = &registry.counter(p + "_slots");
        metric_growths_ = &registry.counter(p + "_slab_growths");
        metric_clears_ = &registry.counter(p + "_clears");
        metric_bytes_ = &registry.gauge(p + "_slab_bytes");
        metric_kernel_calls_ = &registry.counter(p + "_kernel_calls");
        metric_kernel_rows_ = &registry.counter(p + "_kernel_rows");
        metric_bytes_->set(static_cast<std::int64_t>(
            slab_.capacity() * sizeof(std::uint64_t)));
    }

    /// Detaches from the registry (hot path reverts to the null branch).
    void detach_metrics() noexcept {
        metric_slots_ = nullptr;
        metric_growths_ = nullptr;
        metric_clears_ = nullptr;
        metric_bytes_ = nullptr;
        metric_kernel_calls_ = nullptr;
        metric_kernel_rows_ = nullptr;
    }

    /// Batch kernels report their traffic here (no-op when detached).
    void note_kernel(std::size_t rows) const noexcept {
        if (metric_kernel_calls_ != nullptr) {
            metric_kernel_calls_->inc();
            metric_kernel_rows_->inc(static_cast<std::uint64_t>(rows));
        }
    }

    /// Equality is over contents only (width and rows), not over the
    /// metrics attachment.
    friend bool operator==(const TimestampArena& a, const TimestampArena& b) {
        return a.width_ == b.width_ && a.slab_ == b.slab_ &&
               a.zero_width_slots_ == b.zero_width_slots_;
    }

private:
    std::size_t width_;
    std::vector<std::uint64_t> slab_;
    /// Width-0 arenas (degenerate but legal: empty realizers) have no slab
    /// bytes, so the slot count is tracked explicitly.
    std::size_t zero_width_slots_ = 0;
    /// Optional instrumentation (see attach_metrics); nullptr = disabled.
    obs::Counter* metric_slots_ = nullptr;
    obs::Counter* metric_growths_ = nullptr;
    obs::Counter* metric_clears_ = nullptr;
    obs::Gauge* metric_bytes_ = nullptr;
    obs::Counter* metric_kernel_calls_ = nullptr;
    obs::Counter* metric_kernel_rows_ = nullptr;
};

struct AnalysisOptions;

/// out[i] = (probe ≤ slot i), for every slot. `out.size()` must equal
/// `arena.size()`. The batch form of the Section 2 ≤ test.
void leq_many(const TimestampArena& arena,
              std::span<const std::uint64_t> probe,
              std::span<std::uint8_t> out);

/// Sharded form: slot ranges are split across the analysis pool; each
/// shard writes its own disjoint out range, so the result is byte-equal
/// to the serial form at any thread count.
void leq_many(const TimestampArena& arena,
              std::span<const std::uint64_t> probe,
              std::span<std::uint8_t> out, const AnalysisOptions& options);

/// out[i] = ts::relate(slot i, probe) (bit kRowLeq: slot ≤ probe, bit
/// kProbeLeq: probe ≤ slot) — one pass answering before/after/equal/
/// concurrent for probe vs every slot.
void relate_many(const TimestampArena& arena,
                 std::span<const std::uint64_t> probe,
                 std::span<std::uint8_t> out);

/// Sharded form; same determinism contract as the sharded leq_many.
void relate_many(const TimestampArena& arena,
                 std::span<const std::uint64_t> probe,
                 std::span<std::uint8_t> out, const AnalysisOptions& options);

/// Handles of every slot whose timestamp strictly dominates `probe`
/// (probe < slot in the vector order) — "everything causally after
/// probe", the building block of frontier/orphan queries.
std::vector<TsHandle> dominators_of(const TimestampArena& arena,
                                    std::span<const std::uint64_t> probe);

}  // namespace syncts
