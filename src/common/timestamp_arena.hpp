#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/region.hpp"
#include "common/ts_kernels.hpp"
#include "obs/metrics.hpp"

/// \file timestamp_arena.hpp
/// Arena storage for vector timestamps: one flat std::uint64_t slab per
/// system instead of one heap vector per timestamp.
///
/// Every timestamp in a system shares one width (d for the online
/// algorithm, N for the Fidge–Mattern baselines, width(P) offline), so the
/// arena stores the width once and packs the components of slot h at
/// slab[h*width .. (h+1)*width). Handles are plain 32-bit slot indices —
/// stable across growth (the slab may reallocate, but handles index rows,
/// not addresses), trivially serializable, and half the size of a pointer
/// in the structures that hold them (TimestampedTrace keeps one per
/// message).
///
/// The layout flattens what used to be a std::vector<VectorTimestamp> —
/// M separate allocations, each with its own capacity/size header and
/// pointer chase — into a single slab with zero per-timestamp overhead,
/// so the batch precedence kernels (leq_many, relate_many, dominators_of)
/// stream rows at memory bandwidth, with AVX2 paths dispatched at runtime
/// (ts_simd.hpp) and a component-major SoA mirror (SoaStripes) for the
/// narrow-width scans.
///
/// Since the epoch-region refactor (docs/MEMORY.md) the slab is an
/// explicit `Slab` that may be leased from a `SlabPool` (region.hpp):
/// pool-backed arenas acquire recycled chunks on growth and return the
/// slab on destruction, so cycling epoch-scoped arenas through one pool
/// is allocation-free in steady state. Growth doubles the slab but is
/// clamped to `max_slots` (at most the 2^32−1 handle space) and throws a
/// typed ArenaFullError instead of wrapping handles.
///
/// Spans returned by span()/row() are invalidated by allocate()/reserve()
/// (slab growth may reallocate); re-fetch after any allocation, exactly as
/// with std::vector iterators.

namespace syncts {

/// Index of a timestamp slot within a TimestampArena, 0-based, dense.
using TsHandle = std::uint32_t;

/// Sentinel for "no timestamp slot".
inline constexpr TsHandle kNoTimestamp =
    std::numeric_limits<TsHandle>::max();

class TimestampArena {
public:
    /// Arena for timestamps of `width` components each; optionally
    /// pre-reserves room for `reserve_slots` slots. With a `pool` the
    /// slab is leased from it (and returned on destruction); the pool
    /// must outlive the arena. `max_slots` caps growth below the 32-bit
    /// handle space — allocate() past it throws ArenaFullError.
    explicit TimestampArena(std::size_t width, std::size_t reserve_slots = 0,
                            SlabPool* pool = nullptr,
                            std::size_t max_slots = kNoTimestamp)
        : width_(width),
          pool_(pool),
          max_slots_(std::min<std::size_t>(max_slots, kNoTimestamp)) {
        if (reserve_slots > 0 && width_ > 0) reserve(reserve_slots);
    }

    TimestampArena(const TimestampArena& other)
        : width_(other.width_),
          size_words_(other.size_words_),
          zero_width_slots_(other.zero_width_slots_),
          pool_(other.pool_),
          max_slots_(other.max_slots_) {
        if (other.size_words_ > 0) {
            slab_ = acquire_slab(other.size_words_);
            std::copy_n(other.slab_.words.get(), size_words_,
                        slab_.words.get());
        }
    }

    TimestampArena(TimestampArena&& other) noexcept
        : width_(other.width_),
          slab_(std::move(other.slab_)),
          size_words_(other.size_words_),
          zero_width_slots_(other.zero_width_slots_),
          pool_(other.pool_),
          max_slots_(other.max_slots_) {
        other.slab_ = Slab{};
        other.size_words_ = 0;
        other.zero_width_slots_ = 0;
    }

    TimestampArena& operator=(const TimestampArena& other) {
        if (this != &other) {
            TimestampArena copy(other);
            *this = std::move(copy);
        }
        return *this;
    }

    TimestampArena& operator=(TimestampArena&& other) noexcept {
        if (this != &other) {
            release_slab();
            width_ = other.width_;
            slab_ = std::move(other.slab_);
            size_words_ = other.size_words_;
            zero_width_slots_ = other.zero_width_slots_;
            pool_ = other.pool_;
            max_slots_ = other.max_slots_;
            other.slab_ = Slab{};
            other.size_words_ = 0;
            other.zero_width_slots_ = 0;
        }
        return *this;
    }

    ~TimestampArena() { release_slab(); }

    /// Components per timestamp (fixed for the arena's lifetime).
    std::size_t width() const noexcept { return width_; }

    /// Number of allocated slots.
    std::size_t size() const noexcept {
        return width_ == 0 ? zero_width_slots_ : size_words_ / width_;
    }

    /// Slots the slab can hold before reallocating.
    std::size_t capacity() const noexcept {
        return width_ == 0 ? zero_width_slots_
                           : slab_.capacity_words / width_;
    }

    /// Slot ceiling (see the constructor) — never above kNoTimestamp.
    std::size_t max_slots() const noexcept { return max_slots_; }

    /// The pool this arena leases from (nullptr = plain heap).
    SlabPool* pool() const noexcept { return pool_; }

    /// Pre-grows the slab to hold at least `slots` slots; throws
    /// ArenaFullError past max_slots().
    void reserve(std::size_t slots) {
        if (width_ == 0 || slots <= capacity()) return;
        if (slots > max_slots_) throw ArenaFullError(slots, max_slots_);
        grow_to(slots * width_);
    }

    /// Allocates one zero-initialized slot and returns its handle;
    /// throws ArenaFullError when the slot ceiling (at most the 32-bit
    /// handle space) is exhausted.
    TsHandle allocate() {
        const std::size_t slot = size();
        if (slot >= max_slots_) throw ArenaFullError(slot + 1, max_slots_);
        if (width_ == 0) {
            ++zero_width_slots_;
        } else {
            if (size_words_ + width_ > slab_.capacity_words) {
                grow_for_one_more();
                if (metric_growths_ != nullptr) metric_growths_->inc();
            }
            std::fill_n(slab_.words.get() + size_words_, width_, 0);
            size_words_ += width_;
        }
        if (metric_slots_ != nullptr) {
            metric_slots_->inc();
            metric_bytes_->set(static_cast<std::int64_t>(
                slab_.capacity_words * sizeof(std::uint64_t)));
        }
        return static_cast<TsHandle>(slot);
    }

    /// Allocates one slot holding a copy of `components` (width must
    /// match).
    TsHandle allocate(std::span<const std::uint64_t> components) {
        SYNCTS_REQUIRE(components.size() == width_,
                       "component count does not match the arena width");
        const TsHandle h = allocate();
        ts::copy(span(h), components);
        return h;
    }

    /// Mutable view of slot h's components.
    std::span<std::uint64_t> span(TsHandle h) {
        SYNCTS_REQUIRE(h < size(), "timestamp handle out of range");
        return {slab_.words.get() + static_cast<std::size_t>(h) * width_,
                width_};
    }

    /// Read-only view of slot h's components.
    std::span<const std::uint64_t> span(TsHandle h) const {
        SYNCTS_REQUIRE(h < size(), "timestamp handle out of range");
        return {slab_.words.get() + static_cast<std::size_t>(h) * width_,
                width_};
    }

    /// Drops every slot but keeps the slab — the steady-state reuse path
    /// (no allocation on the next capacity() allocations).
    void clear() noexcept {
        size_words_ = 0;
        zero_width_slots_ = 0;
        if (metric_clears_ != nullptr) metric_clears_->inc();
    }

    /// The whole slab (row h at [h*width, (h+1)*width)) — for bulk
    /// serialization and the batch kernels.
    std::span<const std::uint64_t> slab() const noexcept {
        return {slab_.words.get(), size_words_};
    }

    /// Registers this arena's metrics under `<prefix>_*` and starts
    /// counting: `_slots` (handle churn), `_slab_growths` (reallocations),
    /// `_slab_bytes` (capacity gauge), `_clears`, `_kernel_calls` and
    /// `_kernel_rows` (batch-kernel traffic). Registration allocates; the
    /// instrumented hot path does not (one branch + relaxed add). The
    /// registry must outlive the arena.
    void attach_metrics(obs::MetricsRegistry& registry,
                        std::string_view prefix = "arena") {
        const std::string p(prefix);
        metric_slots_ = &registry.counter(p + "_slots");
        metric_growths_ = &registry.counter(p + "_slab_growths");
        metric_clears_ = &registry.counter(p + "_clears");
        metric_bytes_ = &registry.gauge(p + "_slab_bytes");
        metric_kernel_calls_ = &registry.counter(p + "_kernel_calls");
        metric_kernel_rows_ = &registry.counter(p + "_kernel_rows");
        metric_bytes_->set(static_cast<std::int64_t>(
            slab_.capacity_words * sizeof(std::uint64_t)));
    }

    /// Detaches from the registry (hot path reverts to the null branch).
    void detach_metrics() noexcept {
        metric_slots_ = nullptr;
        metric_growths_ = nullptr;
        metric_clears_ = nullptr;
        metric_bytes_ = nullptr;
        metric_kernel_calls_ = nullptr;
        metric_kernel_rows_ = nullptr;
    }

    /// Batch kernels report their traffic here (no-op when detached).
    void note_kernel(std::size_t rows) const noexcept {
        if (metric_kernel_calls_ != nullptr) {
            metric_kernel_calls_->inc();
            metric_kernel_rows_->inc(static_cast<std::uint64_t>(rows));
        }
    }

    /// Equality is over contents only (width and rows), not over the
    /// metrics attachment, pool backing, or slot ceiling.
    friend bool operator==(const TimestampArena& a, const TimestampArena& b) {
        return a.width_ == b.width_ &&
               a.zero_width_slots_ == b.zero_width_slots_ &&
               a.size_words_ == b.size_words_ &&
               std::equal(a.slab_.words.get(),
                          a.slab_.words.get() + a.size_words_,
                          b.slab_.words.get());
    }

private:
    Slab acquire_slab(std::size_t min_words) {
        if (pool_ != nullptr) return pool_->acquire(min_words);
        return Slab{std::make_unique<std::uint64_t[]>(min_words), min_words};
    }

    void release_slab() noexcept {
        if (!slab_) return;
        if (pool_ != nullptr) {
            pool_->release(std::move(slab_));
        }
        slab_ = Slab{};
    }

    void grow_to(std::size_t min_words) {
        Slab grown = acquire_slab(min_words);
        if (size_words_ > 0) {
            std::copy_n(slab_.words.get(), size_words_, grown.words.get());
        }
        release_slab();
        slab_ = std::move(grown);
    }

    /// Doubling growth for one more row, clamped to the slot ceiling so
    /// the word count cannot overflow (max_slots_ <= 2^32−1 keeps
    /// slots*width within std::size_t for any sane width).
    void grow_for_one_more() {
        const std::size_t cap_slots = slab_.capacity_words / width_;
        const std::size_t doubled = std::max<std::size_t>(cap_slots * 2, 8);
        grow_to(std::min(doubled, max_slots_) * width_);
    }

    std::size_t width_;
    Slab slab_;
    /// Words in use; size() rows of width_ words each.
    std::size_t size_words_ = 0;
    /// Width-0 arenas (degenerate but legal: empty realizers) have no slab
    /// bytes, so the slot count is tracked explicitly.
    std::size_t zero_width_slots_ = 0;
    /// Recycling pool (region.hpp); nullptr = plain heap slab.
    SlabPool* pool_ = nullptr;
    /// Growth ceiling in slots, at most kNoTimestamp.
    std::size_t max_slots_ = kNoTimestamp;
    /// Optional instrumentation (see attach_metrics); nullptr = disabled.
    obs::Counter* metric_slots_ = nullptr;
    obs::Counter* metric_growths_ = nullptr;
    obs::Counter* metric_clears_ = nullptr;
    obs::Gauge* metric_bytes_ = nullptr;
    obs::Counter* metric_kernel_calls_ = nullptr;
    obs::Counter* metric_kernel_rows_ = nullptr;
};

/// Typed error for a read of a stamp the window has already retired (or
/// not yet produced) — the streaming analogue of RegionError: a stale
/// logical id is an operational condition, never a dangling span.
class RetiredStampError : public std::out_of_range {
public:
    RetiredStampError(std::uint64_t id, std::uint64_t frontier,
                      std::uint64_t next)
        : std::out_of_range("stamp " + std::to_string(id) +
                            " is outside the resident window [" +
                            std::to_string(frontier) + ", " +
                            std::to_string(next) + ")"),
          id_(id) {}

    std::uint64_t id() const noexcept { return id_; }

private:
    std::uint64_t id_;
};

/// Windowed recycling over an unbounded stamp stream (docs/STREAMING.md).
///
/// A streaming ingestion run produces one stamp per message, forever —
/// far past the 2^32−1 handle space a plain `TimestampArena` guards with
/// `ArenaFullError`. `WindowedTimestampArena` keeps the guard and removes
/// the ceiling: it pre-sizes an arena of `window` slots, addresses them
/// by **64-bit logical id** (slot = id mod window), and retires the
/// oldest stamp wholesale whenever a push would exceed the window —
/// exactly the region-retirement discipline, one ring step at a time.
/// Logical ids never wrap and never alias: a read outside
/// [frontier, next) throws `RetiredStampError`.
class WindowedTimestampArena {
public:
    /// `first_id` seeds the logical id stream — tests use it to cross
    /// the 2^32 boundary without four billion pushes.
    WindowedTimestampArena(std::size_t width, std::size_t window,
                           SlabPool* pool = nullptr,
                           std::uint64_t first_id = 0)
        : arena_(width, window, pool),
          window_(window),
          frontier_(first_id),
          next_(first_id) {
        SYNCTS_REQUIRE(window > 0, "window must be positive");
        SYNCTS_REQUIRE(window <= kNoTimestamp,
                       "window cannot exceed the 32-bit slot space");
        for (std::size_t i = 0; i < window; ++i) arena_.allocate();
    }

    std::size_t width() const noexcept { return arena_.width(); }
    std::size_t window() const noexcept { return window_; }

    /// Oldest resident logical id (== next() when nothing is resident).
    std::uint64_t frontier() const noexcept { return frontier_; }
    /// Logical id the next push() will return.
    std::uint64_t next() const noexcept { return next_; }
    /// Resident stamps, at most window().
    std::size_t resident() const noexcept {
        return static_cast<std::size_t>(next_ - frontier_);
    }

    bool is_resident(std::uint64_t id) const noexcept {
        return id >= frontier_ && id < next_;
    }

    /// Appends a stamp, retiring the oldest resident one when the window
    /// is full. Returns the stamp's logical id.
    std::uint64_t push(std::span<const std::uint64_t> components) {
        SYNCTS_REQUIRE(components.size() == arena_.width(),
                       "component count must equal arena width");
        const std::uint64_t id = next_;
        if (resident() == window_) ++frontier_;  // wholesale ring retire
        ++next_;
        auto dst = arena_.span(slot_of(id));
        std::copy(components.begin(), components.end(), dst.begin());
        return id;
    }

    /// Resident stamp for `id`; throws RetiredStampError outside the
    /// window.
    std::span<const std::uint64_t> span(std::uint64_t id) const {
        if (!is_resident(id)) throw RetiredStampError(id, frontier_, next_);
        return arena_.span(slot_of(id));
    }

    /// Registers the backing arena's metrics plus the resident-rows
    /// gauge <prefix>_resident_rows (docs/OBSERVABILITY.md).
    void attach_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "window") {
        arena_.attach_metrics(registry, prefix);
        metric_resident_ = &registry.gauge(prefix + "_resident_rows");
        metric_resident_->set(static_cast<std::int64_t>(resident()));
    }

    /// Publishes the current residency to the gauge (cheap; callers
    /// sample at their own cadence rather than per push).
    void publish_residency() noexcept {
        if (metric_resident_ != nullptr) {
            metric_resident_->set(static_cast<std::int64_t>(resident()));
        }
    }

private:
    TsHandle slot_of(std::uint64_t id) const noexcept {
        return static_cast<TsHandle>(id % window_);
    }

    TimestampArena arena_;
    std::size_t window_;
    std::uint64_t frontier_;
    std::uint64_t next_;
    obs::Gauge* metric_resident_ = nullptr;
};

struct AnalysisOptions;

/// out[i] = (probe ≤ slot i), for every slot. `out.size()` must equal
/// `arena.size()`. The batch form of the Section 2 ≤ test. Dispatches to
/// the AVX2 kernel when the host supports it (ts_simd.hpp); the scalar
/// fallback is bit-identical.
void leq_many(const TimestampArena& arena,
              std::span<const std::uint64_t> probe,
              std::span<std::uint8_t> out);

/// Sharded form: slot ranges are split across the analysis pool; each
/// shard writes its own disjoint out range, so the result is byte-equal
/// to the serial form at any thread count.
void leq_many(const TimestampArena& arena,
              std::span<const std::uint64_t> probe,
              std::span<std::uint8_t> out, const AnalysisOptions& options);

/// out[i] = ts::relate(slot i, probe) (bit kRowLeq: slot ≤ probe, bit
/// kProbeLeq: probe ≤ slot) — one pass answering before/after/equal/
/// concurrent for probe vs every slot. Runtime-dispatched like leq_many.
void relate_many(const TimestampArena& arena,
                 std::span<const std::uint64_t> probe,
                 std::span<std::uint8_t> out);

/// Sharded form; same determinism contract as the sharded leq_many.
void relate_many(const TimestampArena& arena,
                 std::span<const std::uint64_t> probe,
                 std::span<std::uint8_t> out, const AnalysisOptions& options);

/// Handles of every slot whose timestamp strictly dominates `probe`
/// (probe < slot in the vector order) — "everything causally after
/// probe", the building block of frontier/orphan queries.
std::vector<TsHandle> dominators_of(const TimestampArena& arena,
                                    std::span<const std::uint64_t> probe);

/// Lanes per SoA stripe (rows interleaved per component group); one
/// 256-bit register covers one component of kSoaLane slots.
inline constexpr std::size_t kSoaLane = 4;

/// Component-major (SoA) mirror of an arena for the narrow-width batch
/// scans: rows are grouped into stripes of kSoaLane slots and each
/// stripe stores component k of its lanes contiguously, so one vector
/// load covers component k of four slots at any width. Built from a
/// frozen arena (allocate() on the source invalidates the mirror); the
/// stripe slab follows the same pool discipline as the arena's.
class SoaStripes {
public:
    /// Snapshot of `arena` in stripe layout; `pool` backs the stripe
    /// slab (nullptr = heap).
    explicit SoaStripes(const TimestampArena& arena,
                        SlabPool* pool = nullptr);

    SoaStripes(SoaStripes&& other) noexcept
        : width_(other.width_),
          rows_(other.rows_),
          stripe_words_(other.stripe_words_),
          slab_(std::move(other.slab_)),
          pool_(other.pool_) {
        other.slab_ = Slab{};
        other.stripe_words_ = 0;
        other.rows_ = 0;
    }
    SoaStripes(const SoaStripes&) = delete;
    SoaStripes& operator=(const SoaStripes&) = delete;
    SoaStripes& operator=(SoaStripes&&) = delete;
    ~SoaStripes();

    std::size_t width() const noexcept { return width_; }
    std::size_t rows() const noexcept { return rows_; }

    /// Stripe slab: stripe s, component k, lane l at
    /// [s*width*kSoaLane + k*kSoaLane + l]; pad lanes are zero.
    std::span<const std::uint64_t> stripes() const noexcept {
        return {slab_.words.get(), stripe_words_};
    }

    /// out[i] = (probe ≤ row i); bit-identical to the arena kernel.
    void leq_many(std::span<const std::uint64_t> probe,
                  std::span<std::uint8_t> out) const;

    /// out[i] = ts::relate(row i, probe); bit-identical to the arena
    /// kernel.
    void relate_many(std::span<const std::uint64_t> probe,
                     std::span<std::uint8_t> out) const;

    /// Handles of rows strictly dominating probe; bit-identical to the
    /// arena kernel.
    std::vector<TsHandle> dominators_of(
        std::span<const std::uint64_t> probe) const;

private:
    std::size_t width_ = 0;
    std::size_t rows_ = 0;
    std::size_t stripe_words_ = 0;
    Slab slab_;
    SlabPool* pool_ = nullptr;
};

}  // namespace syncts
