#pragma once

#include <stdexcept>
#include <string>

/// \file check.hpp
/// Precondition / invariant checking helpers.
///
/// Library entry points validate their arguments with SYNCTS_REQUIRE (throws
/// std::invalid_argument: caller error) and internal invariants with
/// SYNCTS_ENSURE (throws std::logic_error: library bug). Both are always on —
/// the checks in this library are O(1) or amortized into already-linear work,
/// and correctness of causality tracking is the entire point of the system.

namespace syncts::detail {

[[noreturn]] void throw_requirement_failure(const char* expr, const char* file,
                                            int line, const std::string& what);

[[noreturn]] void throw_invariant_failure(const char* expr, const char* file,
                                          int line, const std::string& what);

}  // namespace syncts::detail

/// Validate a caller-supplied precondition; throws std::invalid_argument.
#define SYNCTS_REQUIRE(expr, msg)                                           \
    do {                                                                    \
        if (!(expr)) {                                                      \
            ::syncts::detail::throw_requirement_failure(#expr, __FILE__,    \
                                                        __LINE__, (msg));   \
        }                                                                   \
    } while (false)

/// Validate an internal invariant; throws std::logic_error.
#define SYNCTS_ENSURE(expr, msg)                                            \
    do {                                                                    \
        if (!(expr)) {                                                      \
            ::syncts::detail::throw_invariant_failure(#expr, __FILE__,      \
                                                      __LINE__, (msg));     \
        }                                                                   \
    } while (false)
