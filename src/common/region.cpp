#include "common/region.hpp"

#include <bit>

#include "common/timestamp_arena.hpp"

namespace syncts {

// ---- SlabPool --------------------------------------------------------

std::size_t SlabPool::size_class(std::size_t words) noexcept {
    return static_cast<std::size_t>(
        std::bit_width(std::bit_ceil(words < 1 ? std::size_t{1} : words)) -
        1);
}

Slab SlabPool::acquire(std::size_t min_words) {
    const std::size_t words =
        std::bit_ceil(min_words < 1 ? std::size_t{1} : min_words);
    const std::size_t cls = size_class(words);
    ++acquires_;
    if (metric_acquires_ != nullptr) metric_acquires_->inc();
    std::vector<Slab>& bucket = buckets_[cls];
    Slab slab;
    if (!bucket.empty()) {
        slab = std::move(bucket.back());
        bucket.pop_back();
        cached_bytes_ -= slab.capacity_words * sizeof(std::uint64_t);
        ++reuses_;
        if (metric_reuses_ != nullptr) metric_reuses_->inc();
    } else {
        slab = Slab{std::make_unique<std::uint64_t[]>(words), words};
    }
    leased_bytes_ += slab.capacity_words * sizeof(std::uint64_t);
    note_footprint();
    return slab;
}

void SlabPool::release(Slab&& slab) noexcept {
    if (!slab) return;
    const std::size_t bytes = slab.capacity_words * sizeof(std::uint64_t);
    if (leased_bytes_ >= bytes) leased_bytes_ -= bytes;
    cached_bytes_ += bytes;
    ++releases_;
    buckets_[size_class(slab.capacity_words)].push_back(std::move(slab));
    if (metric_releases_ != nullptr) metric_releases_->inc();
    note_footprint();
}

void SlabPool::trim() noexcept {
    for (auto& bucket : buckets_) bucket.clear();
    cached_bytes_ = 0;
    if (metric_cached_bytes_ != nullptr) metric_cached_bytes_->set(0);
}

void SlabPool::note_footprint() noexcept {
    const std::size_t footprint = cached_bytes_ + leased_bytes_;
    if (footprint > peak_bytes_) peak_bytes_ = footprint;
    if (metric_cached_bytes_ != nullptr) {
        metric_cached_bytes_->set(static_cast<std::int64_t>(cached_bytes_));
        metric_leased_bytes_->set(static_cast<std::int64_t>(leased_bytes_));
        metric_peak_bytes_->set_max(static_cast<std::int64_t>(peak_bytes_));
    }
}

void SlabPool::attach_metrics(obs::MetricsRegistry& registry,
                              std::string_view prefix) {
    const std::string p(prefix);
    metric_acquires_ = &registry.counter(p + "_acquires");
    metric_reuses_ = &registry.counter(p + "_reuses");
    metric_releases_ = &registry.counter(p + "_releases");
    metric_cached_bytes_ = &registry.gauge(p + "_cached_bytes");
    metric_leased_bytes_ = &registry.gauge(p + "_leased_bytes");
    metric_peak_bytes_ = &registry.gauge(p + "_peak_bytes");
    metric_acquires_->inc(acquires_);
    metric_reuses_->inc(reuses_);
    metric_releases_->inc(releases_);
    note_footprint();
}

// ---- RegionStore -----------------------------------------------------

RegionStore::~RegionStore() = default;

TimestampArena& RegionStore::open(EpochId epoch, std::size_t width,
                                  std::size_t reserve_slots) {
    SYNCTS_REQUIRE(!live(epoch), "region already live for this epoch");
    Region region;
    region.arena = std::make_unique<TimestampArena>(width, reserve_slots,
                                                    pool_);
    auto [it, inserted] = regions_.emplace(epoch, std::move(region));
    SYNCTS_ENSURE(inserted, "region map insert failed");
    if (metric_opens_ != nullptr) metric_opens_->inc();
    if (metric_live_ != nullptr) {
        metric_live_->set(static_cast<std::int64_t>(regions_.size()));
    }
    return *it->second.arena;
}

TimestampArena& RegionStore::arena(EpochId epoch) {
    const auto it = regions_.find(epoch);
    if (it == regions_.end()) throw RegionError(epoch);
    return *it->second.arena;
}

const TimestampArena& RegionStore::arena(EpochId epoch) const {
    const auto it = regions_.find(epoch);
    if (it == regions_.end()) throw RegionError(epoch);
    return *it->second.arena;
}

std::span<const std::uint64_t> RegionStore::span(RegionHandle h) const {
    return arena(h.epoch).span(h.index);
}

std::span<std::uint64_t> RegionStore::span(RegionHandle h) {
    return arena(h.epoch).span(h.index);
}

void RegionStore::pin(EpochId epoch) {
    const auto it = regions_.find(epoch);
    if (it == regions_.end()) throw RegionError(epoch);
    ++it->second.pins;
}

void RegionStore::unpin(EpochId epoch) {
    const auto it = regions_.find(epoch);
    if (it == regions_.end()) throw RegionError(epoch);
    SYNCTS_REQUIRE(it->second.pins > 0, "unpin without a matching pin");
    --it->second.pins;
    if (it->second.pins == 0 && it->second.close_deferred) retire(it);
}

void RegionStore::close(EpochId epoch) {
    const auto it = regions_.find(epoch);
    if (it == regions_.end()) throw RegionError(epoch);
    if (it->second.pins > 0) {
        it->second.close_deferred = true;
        if (metric_deferred_ != nullptr) metric_deferred_->inc();
        return;
    }
    retire(it);
}

void RegionStore::retire(std::map<EpochId, Region>::iterator it) {
    // The arena destructor returns the slab to the pool wholesale —
    // O(1), no per-handle work.
    regions_.erase(it);
    if (metric_closes_ != nullptr) metric_closes_->inc();
    if (metric_live_ != nullptr) {
        metric_live_->set(static_cast<std::int64_t>(regions_.size()));
    }
}

void RegionStore::attach_metrics(obs::MetricsRegistry& registry,
                                 std::string_view prefix) {
    const std::string p(prefix);
    metric_opens_ = &registry.counter(p + "_opens");
    metric_closes_ = &registry.counter(p + "_closes");
    metric_deferred_ = &registry.counter(p + "_deferred_closes");
    metric_live_ = &registry.gauge(p + "_live");
    metric_live_->set(static_cast<std::int64_t>(regions_.size()));
}

}  // namespace syncts
