#include "topo/reconfig.hpp"

#include <set>
#include <stdexcept>

#include "common/check.hpp"

namespace syncts {

namespace {

/// SplitMix64 — tiny, portable, and deterministic across standard
/// libraries (unlike the std distributions), which the 500-seed schedule
/// tests and the CI gates rely on.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4b5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// Mutable mirror of the evolving topology: Graph has no edge removal (its
/// dense indices are append-only), so feasibility is tracked here.
struct SimTopology {
    std::size_t num_vertices = 0;
    std::set<Edge> edges;

    explicit SimTopology(const Graph& g)
        : num_vertices(g.num_vertices()),
          edges(g.edges().begin(), g.edges().end()) {}

    bool has(ProcessId a, ProcessId b) const {
        return edges.count(Edge::make(a, b)) != 0;
    }

    void apply(const ReconfigOp& op) {
        switch (op.kind) {
            case ReconfigOp::Kind::add_channel:
                SYNCTS_REQUIRE(op.a < num_vertices && op.b < num_vertices,
                               "reconfig: channel endpoint out of range");
                SYNCTS_REQUIRE(!has(op.a, op.b),
                               "reconfig: channel already exists");
                edges.insert(Edge::make(op.a, op.b));
                break;
            case ReconfigOp::Kind::remove_channel:
                SYNCTS_REQUIRE(has(op.a, op.b),
                               "reconfig: channel does not exist");
                edges.erase(Edge::make(op.a, op.b));
                break;
            case ReconfigOp::Kind::add_process:
                if (op.a != kNoProcess) {
                    SYNCTS_REQUIRE(op.a < num_vertices,
                                   "reconfig: attach point out of range");
                    edges.insert(Edge::make(
                        op.a, static_cast<ProcessId>(num_vertices)));
                }
                ++num_vertices;
                break;
        }
    }
};

std::vector<std::string_view> split(std::string_view text, char sep) {
    std::vector<std::string_view> parts;
    while (true) {
        const std::size_t pos = text.find(sep);
        parts.push_back(text.substr(0, pos));
        if (pos == std::string_view::npos) break;
        text.remove_prefix(pos + 1);
    }
    return parts;
}

std::uint64_t parse_number(std::string_view token, const char* what) {
    SYNCTS_REQUIRE(!token.empty(), std::string("reconfig: empty ") + what);
    std::uint64_t value = 0;
    for (char c : token) {
        SYNCTS_REQUIRE(c >= '0' && c <= '9',
                       std::string("reconfig: malformed ") + what + " '" +
                           std::string(token) + "'");
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

ProcessId parse_process(std::string_view token) {
    return static_cast<ProcessId>(parse_number(token, "process id"));
}

void append_random_ops(SimTopology& sim, std::size_t count,
                       std::uint64_t seed, std::vector<ReconfigOp>& out) {
    std::uint64_t state = seed;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t n = sim.num_vertices;
        std::vector<Edge> missing;
        for (ProcessId u = 0; u < n; ++u) {
            for (ProcessId v = u + 1; v < n; ++v) {
                if (!sim.has(u, v)) missing.push_back(Edge{u, v});
            }
        }
        const bool can_add = !missing.empty();
        // Keep at least one channel so every epoch has a non-trivial
        // decomposition (width ≥ 1) for the clock layers to run on.
        const bool can_remove = sim.edges.size() >= 2;

        ReconfigOp op;
        const std::uint64_t roll = splitmix64(state) % 4;
        if (roll == 0 || (!can_add && !can_remove)) {
            op.kind = ReconfigOp::Kind::add_process;
            op.a = static_cast<ProcessId>(splitmix64(state) % n);
        } else if ((roll == 1 && can_remove) || !can_add) {
            op.kind = ReconfigOp::Kind::remove_channel;
            std::vector<Edge> edges(sim.edges.begin(), sim.edges.end());
            const Edge& e = edges[splitmix64(state) % edges.size()];
            op.a = e.u;
            op.b = e.v;
        } else {
            op.kind = ReconfigOp::Kind::add_channel;
            const Edge& e = missing[splitmix64(state) % missing.size()];
            op.a = e.u;
            op.b = e.v;
        }
        sim.apply(op);
        out.push_back(op);
    }
}

}  // namespace

std::string ReconfigOp::to_string() const {
    switch (kind) {
        case Kind::add_channel:
            return "addc:" + std::to_string(a) + ":" + std::to_string(b);
        case Kind::remove_channel:
            return "delc:" + std::to_string(a) + ":" + std::to_string(b);
        case Kind::add_process:
            return a == kNoProcess ? "addp" : "addp:" + std::to_string(a);
    }
    return "?";
}

std::vector<ReconfigOp> parse_reconfig_schedule(std::string_view text,
                                                const Graph& initial) {
    SimTopology sim(initial);
    std::vector<ReconfigOp> ops;
    if (text.empty()) return ops;
    for (std::string_view token : split(text, ',')) {
        const std::vector<std::string_view> parts = split(token, ':');
        const std::string_view name = parts[0];
        if (name == "addc" || name == "delc") {
            SYNCTS_REQUIRE(parts.size() == 3,
                           "reconfig: expected " + std::string(name) +
                               ":<a>:<b>, got '" + std::string(token) + "'");
            ReconfigOp op;
            op.kind = name == "addc" ? ReconfigOp::Kind::add_channel
                                     : ReconfigOp::Kind::remove_channel;
            op.a = parse_process(parts[1]);
            op.b = parse_process(parts[2]);
            sim.apply(op);
            ops.push_back(op);
        } else if (name == "addp") {
            SYNCTS_REQUIRE(parts.size() <= 2,
                           "reconfig: expected addp or addp:<a>, got '" +
                               std::string(token) + "'");
            ReconfigOp op;
            op.kind = ReconfigOp::Kind::add_process;
            if (parts.size() == 2) op.a = parse_process(parts[1]);
            sim.apply(op);
            ops.push_back(op);
        } else if (name == "rand") {
            SYNCTS_REQUIRE(parts.size() == 3,
                           "reconfig: expected rand:<k>:<seed>, got '" +
                               std::string(token) + "'");
            append_random_ops(sim, parse_number(parts[1], "rand count"),
                              parse_number(parts[2], "rand seed"), ops);
        } else {
            throw std::invalid_argument("reconfig: unknown op '" +
                                        std::string(token) + "'");
        }
    }
    return ops;
}

std::vector<ReconfigOp> random_reconfig_schedule(const Graph& initial,
                                                 std::size_t count,
                                                 std::uint64_t seed) {
    SimTopology sim(initial);
    std::vector<ReconfigOp> ops;
    append_random_ops(sim, count, seed, ops);
    return ops;
}

const EpochTransition& apply(TopologyManager& manager, const ReconfigOp& op) {
    switch (op.kind) {
        case ReconfigOp::Kind::add_channel:
            return manager.add_channel(op.a, op.b);
        case ReconfigOp::Kind::remove_channel:
            return manager.remove_channel(op.a, op.b);
        case ReconfigOp::Kind::add_process:
            return op.a == kNoProcess ? manager.add_process()
                                      : manager.add_process(op.a);
    }
    throw std::invalid_argument("reconfig: unknown op kind");
}

}  // namespace syncts
