#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "topo/epoch.hpp"

/// \file topology_manager.hpp
/// Owner of the epoch sequence: the one mutable object in the otherwise
/// immutable topology pipeline.
///
/// A TopologyManager starts at epoch 0 with an initial (Graph,
/// EdgeDecomposition) pair and turns every reconfiguration —
/// add_channel / remove_channel / add_process — into the next immutable
/// epoch plus an EpochTransition describing exactly which vector
/// components survive. Decompositions are produced by the incremental
/// greedy patch of topo/incremental.hpp (full Fig. 7 fallback under the
/// quality guard), so the Theorem 6 bound holds in every epoch. Consumers
/// hold shared_ptr<const EdgeDecomposition> snapshots; nothing already
/// handed out is ever mutated.

namespace syncts {

class TopologyManager {
public:
    /// Epoch 0 = `initial` decomposed by the full Fig. 7 greedy run.
    explicit TopologyManager(Graph initial);

    /// Epoch 0 = a caller-provided complete decomposition (e.g. the exact
    /// cover decomposer, or one read back by decomp_io).
    explicit TopologyManager(EdgeDecomposition initial);

    std::size_t num_epochs() const noexcept { return epochs_.size(); }
    EpochId current_epoch_id() const noexcept {
        return epochs_.back().id;
    }

    const Epoch& epoch(EpochId id) const;
    const Epoch& current() const noexcept { return epochs_.back(); }

    std::shared_ptr<const EdgeDecomposition> decomposition(EpochId id) const {
        return epoch(id).decomposition;
    }
    std::shared_ptr<const EdgeDecomposition> current_decomposition() const {
        return epochs_.back().decomposition;
    }

    /// Largest process count over all epochs — the engine-table size a
    /// multi-epoch runtime provisions up front (docs/MEMORY.md).
    std::size_t max_num_processes() const noexcept;

    /// Largest decomposition width over all epochs — the widest
    /// timestamp row any epoch's region will ever hold, so the figure
    /// that bounds a run's steady-state slab footprint.
    std::size_t max_width() const noexcept;

    /// The transition that produced epoch `id` (id ≥ 1).
    const EpochTransition& transition_into(EpochId id) const;
    std::span<const EpochTransition> transitions() const noexcept {
        return transitions_;
    }

    /// Opens the channel {a, b}; starts the next epoch. Throws when the
    /// channel already exists or an endpoint is out of range.
    const EpochTransition& add_channel(ProcessId a, ProcessId b);

    /// Closes the channel {a, b}; starts the next epoch. Throws when the
    /// channel does not exist.
    const EpochTransition& remove_channel(ProcessId a, ProcessId b);

    /// Adds an isolated process (no channels yet); starts the next epoch.
    /// Every existing group survives — the decomposition is unchanged, only
    /// the process space grows. The new process id is
    /// new_num_processes - 1 of the returned transition.
    const EpochTransition& add_process();

    /// Adds a process with one channel to `attach_to`; starts the next
    /// epoch in a single transition (the common "client joins" case).
    const EpochTransition& add_process(ProcessId attach_to);

    /// Registers topo_* counters and gauges (topo_epochs,
    /// topo_channels_added, topo_channels_removed, topo_processes_added,
    /// topo_groups_preserved, topo_groups_rebuilt, topo_full_rebuilds,
    /// topo_width, topo_processes). The registry must outlive the manager
    /// or a detach_metrics() call.
    void attach_metrics(obs::MetricsRegistry& registry);
    void detach_metrics() noexcept;

private:
    const EpochTransition& advance(Graph next, std::span<const Edge> changed,
                                   bool pure_process_add);
    void publish_gauges() noexcept;

    std::vector<Epoch> epochs_;
    std::vector<EpochTransition> transitions_;

    obs::Counter* epochs_counter_ = nullptr;
    obs::Counter* channels_added_ = nullptr;
    obs::Counter* channels_removed_ = nullptr;
    obs::Counter* processes_added_ = nullptr;
    obs::Counter* groups_preserved_ = nullptr;
    obs::Counter* groups_rebuilt_ = nullptr;
    obs::Counter* full_rebuilds_ = nullptr;
    obs::Gauge* width_gauge_ = nullptr;
    obs::Gauge* processes_gauge_ = nullptr;
};

}  // namespace syncts
