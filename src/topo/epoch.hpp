#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "decomp/edge_decomposition.hpp"

/// \file epoch.hpp
/// Epoch-versioned topology: the value types behind dynamic channel and
/// process reconfiguration.
///
/// The paper fixes G = (V, E) and its star/triangle edge decomposition
/// once, before the computation starts (Section 3.2: "we assume that
/// information about edge decomposition is known by all processes"). A
/// production system reconfigures under live traffic, so we version the
/// topology in *epochs*: each epoch is an immutable (Graph,
/// EdgeDecomposition) pair, and moving from epoch e to e+1 is described by
/// an explicit EpochTransition — which vector components survive (their
/// star/triangle kept the same edge set), which are new, and how in-flight
/// vectors migrate. Within an epoch the paper's theory applies unchanged
/// (Theorem 4: m1 ↦ m2 ⟺ v(m1) < v(m2)); across epochs precedence is
/// decided by the transition itself, because a reconfiguration is a global
/// barrier: every epoch-e message precedes every epoch-e' message for
/// e < e' (see docs/TOPOLOGY.md).

namespace syncts {

/// One immutable topology version. The graph is reachable through the
/// decomposition (EdgeDecomposition owns a copy of its graph).
struct Epoch {
    EpochId id = 0;
    std::shared_ptr<const EdgeDecomposition> decomposition;

    const Graph& graph() const { return decomposition->graph(); }

    /// Timestamp width d of the online algorithm in this epoch.
    std::size_t width() const noexcept { return decomposition->size(); }

    std::size_t num_processes() const noexcept {
        return decomposition->graph().num_vertices();
    }
};

/// Everything a clock, wire, or analysis layer needs to cross one epoch
/// boundary. Produced by TopologyManager on every reconfiguration.
///
/// Migration rule (the contract every ClockEngine::on_epoch implements):
/// a component of the new decomposition whose group kept its exact edge
/// set carries the old component's value over; a component whose group was
/// rebuilt starts at the epoch floor (zero, relative to the transition).
/// Because the transition is a global barrier, the carried values function
/// as per-component *floors*: within the new epoch every clock advances
/// from zero again and Theorem 4 holds verbatim, while the absolute
/// history of a component is the sum of the floors accumulated at each
/// transition it survived.
struct EpochTransition {
    EpochId from_epoch = 0;
    EpochId to_epoch = 0;

    std::shared_ptr<const EdgeDecomposition> from;
    std::shared_ptr<const EdgeDecomposition> to;

    std::size_t old_num_processes = 0;
    std::size_t new_num_processes = 0;

    /// For each new group g (index into `to`), the old group it carries
    /// its component from, or kNoGroup when the group was (re)built this
    /// epoch. Groups match when they cover exactly the same edge set.
    std::vector<GroupId> group_source;

    /// Inverse view: for each old group, the new group that carries it, or
    /// kNoGroup when its component retires at this boundary.
    std::vector<GroupId> group_target;

    /// Number of entries of group_source that are not kNoGroup.
    std::size_t preserved_groups = 0;

    /// True when the incremental re-decomposition was rejected by the
    /// quality guard (or the acyclic fast path fired) and the whole graph
    /// was re-run through Fig. 7.
    bool full_rebuild = false;

    std::size_t old_width() const noexcept { return group_target.size(); }
    std::size_t new_width() const noexcept { return group_source.size(); }

    /// Migrates a width-old_width() vector into a width-new_width() one:
    /// preserved components carry over, rebuilt components start at the
    /// epoch floor (zero). This is the rule for the online family, whose
    /// vectors are indexed by decomposition group.
    void migrate_components(std::span<const std::uint64_t> old_vec,
                            std::span<std::uint64_t> new_vec) const;

    /// Migrates a per-process vector (length old_num_processes) into the
    /// new process space (length new_num_processes). Processes are never
    /// renumbered or removed, so this is a copy plus zero-fill for
    /// processes born this epoch. This is the rule for the Fidge/Mattern
    /// families, whose vectors are indexed by process.
    void migrate_processes(std::span<const std::uint64_t> old_vec,
                           std::span<std::uint64_t> new_vec) const;
};

}  // namespace syncts
