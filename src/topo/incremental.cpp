#include "topo/incremental.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/vertex_cover.hpp"

namespace syncts {

namespace {

/// Re-adds `group` (taken from another decomposition over the same vertex
/// space) into `out`. Every edge must exist in out.graph().
void replay_group(EdgeDecomposition& out, const EdgeGroup& group) {
    if (group.kind == GroupKind::star) {
        out.add_star(group.root, group.edges);
    } else {
        out.add_triangle(group.triangle);
    }
}

bool touches_any(const EdgeGroup& group, const std::vector<char>& affected) {
    for (const Edge& e : group.edges) {
        if ((e.u < affected.size() && affected[e.u]) ||
            (e.v < affected.size() && affected[e.v])) {
            return true;
        }
    }
    return false;
}

IncrementalResult full_rebuild(const Graph& next) {
    return IncrementalResult{greedy_edge_decomposition(next), 0, true};
}

}  // namespace

IncrementalResult incremental_redecompose(const EdgeDecomposition& previous,
                                          const Graph& next,
                                          std::span<const Edge> changed) {
    SYNCTS_REQUIRE(previous.complete(),
                   "incremental redecomposition needs a complete input");
    SYNCTS_REQUIRE(next.num_vertices() >= previous.graph().num_vertices(),
                   "processes are never removed across epochs");

    // Theorem 7: Fig. 7 is *optimal* on acyclic graphs, and a full run is
    // cheap there — no reason to settle for an approximate patch.
    if (next.is_acyclic()) return full_rebuild(next);

    std::vector<char> affected(next.num_vertices(), 0);
    for (const Edge& e : changed) {
        SYNCTS_REQUIRE(e.u < next.num_vertices() && e.v < next.num_vertices(),
                       "changed edge endpoint out of range");
        affected[e.u] = 1;
        affected[e.v] = 1;
    }

    // Preserve every group with no endpoint in the affected neighborhood;
    // everything else (plus the added edges, which belong to no old group)
    // forms the residual subgraph handed back to Fig. 7.
    EdgeDecomposition candidate(next);
    std::size_t preserved = 0;
    Graph residual(next.num_vertices());
    for (const EdgeGroup& group : previous.groups()) {
        if (!touches_any(group, affected)) {
            replay_group(candidate, group);
            ++preserved;
            continue;
        }
        for (const Edge& e : group.edges) {
            if (next.has_edge(e.u, e.v)) residual.add_edge(e.u, e.v);
        }
    }
    for (const Edge& e : changed) {
        if (next.has_edge(e.u, e.v) && !previous.graph().has_edge(e.u, e.v)) {
            residual.add_edge(e.u, e.v);
        }
    }

    // Materialized, not inlined into the range-for: groups() views into
    // the decomposition, which would be destroyed before the loop runs.
    const EdgeDecomposition patch = greedy_edge_decomposition(residual);
    for (const EdgeGroup& group : patch.groups()) {
        replay_group(candidate, group);
    }
    SYNCTS_ENSURE(candidate.complete(),
                  "incremental candidate does not cover the new edge set");

    // Quality guard: accept only within 2·min(µ, N−2), where µ (maximal
    // matching size) lower-bounds β(G). An accepted candidate is then
    // ≤ 2·min(β, N−2); a rejected one falls back to full Fig. 7, which is
    // ≤ 2·min(β, N−2) by Theorems 5 and 6 — the published bound survives
    // incrementality either way. (The N−2 cap of Theorem 5 assumes N ≥ 3.)
    if (next.num_edges() > 0) {
        const std::size_t matching = approx_vertex_cover(next).size() / 2;
        std::size_t bound = 2 * matching;
        if (next.num_vertices() >= 3) {
            bound = std::min(bound, 2 * (next.num_vertices() - 2));
        }
        if (candidate.size() > bound) return full_rebuild(next);
    }

    return IncrementalResult{std::move(candidate), preserved, false};
}

}  // namespace syncts
