#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"
#include "topo/topology_manager.hpp"

/// \file reconfig.hpp
/// Textual reconfiguration schedules — the `--reconfig` grammar shared by
/// syncts_stats, syncts_topo, syncts_chaos, and the tests.
///
/// A schedule is a comma-separated op list; each op starts one epoch:
///
///     addc:<a>:<b>    open channel {a, b}
///     delc:<a>:<b>    close channel {a, b}
///     addp            add an isolated process
///     addp:<a>        add a process with one channel to <a>
///     rand:<k>:<seed> expand to k feasible random ops (deterministic)
///
/// `rand` is expanded against the evolving graph at expansion time, so it
/// only ever emits feasible ops: an add of a missing channel, a removal
/// that keeps at least one channel in the system, or a process join.

namespace syncts {

struct ReconfigOp {
    enum class Kind { add_channel, remove_channel, add_process };

    Kind kind = Kind::add_channel;
    /// Endpoints for channel ops. For add_process, `a` is the attach
    /// point or kNoProcess for an isolated join (and `b` is unused).
    ProcessId a = kNoProcess;
    ProcessId b = kNoProcess;

    std::string to_string() const;
};

/// Parses a schedule against `initial` (epoch 0's graph), expanding any
/// rand:<k>:<seed> token. Throws std::invalid_argument on grammar errors
/// or infeasible ops (duplicate channel, missing channel, bad endpoint).
std::vector<ReconfigOp> parse_reconfig_schedule(std::string_view text,
                                                const Graph& initial);

/// Generates `count` feasible random ops against `initial` — the rand:
/// token's engine, also used directly by the 500-seed tests.
std::vector<ReconfigOp> random_reconfig_schedule(const Graph& initial,
                                                 std::size_t count,
                                                 std::uint64_t seed);

/// Applies one parsed op to the manager; returns the transition it made.
const EpochTransition& apply(TopologyManager& manager, const ReconfigOp& op);

}  // namespace syncts
