#pragma once

#include <span>

#include "decomp/edge_decomposition.hpp"
#include "graph/graph.hpp"

/// \file incremental.hpp
/// Incremental greedy re-decomposition for one topology change.
///
/// Re-running Fig. 7 from scratch on every reconfiguration would retire
/// every vector component even when a single channel changed in a corner
/// of the graph. Instead we keep every star/triangle that is untouched by
/// the change and re-run the greedy algorithm only on the *affected
/// neighborhood*: the edges of groups incident to an endpoint of a changed
/// edge, plus the added edges themselves.
///
/// The result is still a valid decomposition (Definition 2) — preserved
/// groups and the residual greedy output partition the new edge set — but
/// incrementality alone does not preserve the 2-approximation of
/// Theorem 6. A quality guard restores it: the candidate is accepted only
/// if its size is within 2·min(µ, N−2), where µ is the maximal-matching
/// lower bound on the vertex cover number β(G) (µ ≤ β ≤ optimal bound of
/// Theorem 5); otherwise we fall back to a full Fig. 7 run, which is
/// ≤ 2·min(β, N−2) by Theorems 5 and 6. Either way the published bound
/// holds. On acyclic graphs the full run is optimal (Theorem 7) and cheap,
/// so the incremental path is skipped outright.

namespace syncts {

struct IncrementalResult {
    EdgeDecomposition decomposition;
    /// Groups re-added with their exact old edge set (in old order, ahead
    /// of the residual greedy output).
    std::size_t preserved_groups = 0;
    /// True when the acyclic fast path or the quality guard replaced the
    /// incremental candidate with a full greedy run.
    bool full_rebuild = false;
};

/// Re-decomposes `next` starting from `previous` (a complete decomposition
/// of the previous epoch's graph). `changed` lists the edges added or
/// removed between the two graphs; an edge present in `next` but not in
/// previous.graph() was added, one present only in the old graph was
/// removed. Vertices may have been appended (never removed).
IncrementalResult incremental_redecompose(const EdgeDecomposition& previous,
                                          const Graph& next,
                                          std::span<const Edge> changed);

}  // namespace syncts
