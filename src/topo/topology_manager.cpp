#include "topo/topology_manager.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "topo/incremental.hpp"

namespace syncts {

namespace {

/// Structural component matching: two groups carry the same component iff
/// they cover exactly the same edge set (the root of a two-edge star is a
/// labeling artifact; the channels-to-component map is what the clocks
/// consume). Returns, for each group of `to`, the matching group of `from`
/// or kNoGroup.
std::vector<GroupId> match_groups(const EdgeDecomposition& from,
                                  const EdgeDecomposition& to) {
    std::map<std::vector<Edge>, GroupId> by_edges;
    for (GroupId g = 0; g < from.size(); ++g) {
        std::vector<Edge> key = from.group(g).edges;
        std::sort(key.begin(), key.end());
        by_edges.emplace(std::move(key), g);
    }
    std::vector<GroupId> source(to.size(), kNoGroup);
    for (GroupId g = 0; g < to.size(); ++g) {
        std::vector<Edge> key = to.group(g).edges;
        std::sort(key.begin(), key.end());
        if (auto it = by_edges.find(key); it != by_edges.end()) {
            source[g] = it->second;
        }
    }
    return source;
}

/// Rebuilds `previous`'s groups verbatim over `next` (same edge set,
/// possibly more vertices) — the pure add_process path, where no component
/// retires.
EdgeDecomposition carry_decomposition(const EdgeDecomposition& previous,
                                      const Graph& next) {
    EdgeDecomposition out(next);
    for (const EdgeGroup& group : previous.groups()) {
        if (group.kind == GroupKind::star) {
            out.add_star(group.root, group.edges);
        } else {
            out.add_triangle(group.triangle);
        }
    }
    SYNCTS_ENSURE(out.complete(), "carried decomposition must stay complete");
    return out;
}

Graph copy_graph_with(const Graph& g, std::size_t extra_vertices,
                      std::span<const Edge> skip, std::span<const Edge> add) {
    Graph next(g.num_vertices() + extra_vertices);
    for (const Edge& e : g.edges()) {
        if (std::find(skip.begin(), skip.end(), e) == skip.end()) {
            next.add_edge(e.u, e.v);
        }
    }
    for (const Edge& e : add) next.add_edge(e.u, e.v);
    return next;
}

}  // namespace

TopologyManager::TopologyManager(Graph initial)
    : TopologyManager(greedy_edge_decomposition(initial)) {}

TopologyManager::TopologyManager(EdgeDecomposition initial) {
    SYNCTS_REQUIRE(initial.complete(),
                   "epoch 0 needs a complete decomposition");
    epochs_.push_back(Epoch{
        0, std::make_shared<const EdgeDecomposition>(std::move(initial))});
}

const Epoch& TopologyManager::epoch(EpochId id) const {
    SYNCTS_REQUIRE(id < epochs_.size(), "epoch id out of range");
    return epochs_[id];
}

std::size_t TopologyManager::max_num_processes() const noexcept {
    std::size_t n = 0;
    for (const Epoch& e : epochs_) n = std::max(n, e.num_processes());
    return n;
}

std::size_t TopologyManager::max_width() const noexcept {
    std::size_t w = 0;
    for (const Epoch& e : epochs_) w = std::max(w, e.width());
    return w;
}

const EpochTransition& TopologyManager::transition_into(EpochId id) const {
    SYNCTS_REQUIRE(id >= 1 && id < epochs_.size(),
                   "no transition into that epoch");
    return transitions_[id - 1];
}

const EpochTransition& TopologyManager::add_channel(ProcessId a, ProcessId b) {
    const Graph& g = current().graph();
    SYNCTS_REQUIRE(a < g.num_vertices() && b < g.num_vertices(),
                   "add_channel endpoint out of range");
    SYNCTS_REQUIRE(!g.has_edge(a, b), "channel already exists");
    const Edge added[] = {Edge::make(a, b)};
    if (channels_added_ != nullptr) channels_added_->inc();
    return advance(copy_graph_with(g, 0, {}, added), added, false);
}

const EpochTransition& TopologyManager::remove_channel(ProcessId a,
                                                       ProcessId b) {
    const Graph& g = current().graph();
    SYNCTS_REQUIRE(g.has_edge(a, b), "channel does not exist");
    const Edge removed[] = {Edge::make(a, b)};
    if (channels_removed_ != nullptr) channels_removed_->inc();
    return advance(copy_graph_with(g, 0, removed, {}), removed, false);
}

const EpochTransition& TopologyManager::add_process() {
    const Graph& g = current().graph();
    if (processes_added_ != nullptr) processes_added_->inc();
    return advance(copy_graph_with(g, 1, {}, {}), {}, true);
}

const EpochTransition& TopologyManager::add_process(ProcessId attach_to) {
    const Graph& g = current().graph();
    SYNCTS_REQUIRE(attach_to < g.num_vertices(),
                   "add_process attach point out of range");
    const ProcessId fresh = static_cast<ProcessId>(g.num_vertices());
    const Edge added[] = {Edge::make(attach_to, fresh)};
    if (processes_added_ != nullptr) processes_added_->inc();
    if (channels_added_ != nullptr) channels_added_->inc();
    return advance(copy_graph_with(g, 1, {}, added), added, false);
}

const EpochTransition& TopologyManager::advance(Graph next,
                                                std::span<const Edge> changed,
                                                bool pure_process_add) {
    const Epoch& previous = epochs_.back();

    bool rebuilt_from_scratch = false;
    EdgeDecomposition decomposed = [&] {
        if (pure_process_add) {
            return carry_decomposition(*previous.decomposition, next);
        }
        IncrementalResult result =
            incremental_redecompose(*previous.decomposition, next, changed);
        rebuilt_from_scratch = result.full_rebuild;
        if (result.full_rebuild && full_rebuilds_ != nullptr) {
            full_rebuilds_->inc();
        }
        return std::move(result.decomposition);
    }();

    auto decomposition =
        std::make_shared<const EdgeDecomposition>(std::move(decomposed));

    EpochTransition transition;
    transition.from_epoch = previous.id;
    transition.to_epoch = previous.id + 1;
    transition.from = previous.decomposition;
    transition.to = decomposition;
    transition.old_num_processes = previous.num_processes();
    transition.new_num_processes = next.num_vertices();
    transition.group_source = match_groups(*previous.decomposition,
                                           *decomposition);
    transition.group_target.assign(previous.decomposition->size(), kNoGroup);
    for (GroupId g = 0; g < transition.group_source.size(); ++g) {
        if (transition.group_source[g] != kNoGroup) {
            transition.group_target[transition.group_source[g]] = g;
            ++transition.preserved_groups;
        }
    }
    transition.full_rebuild = rebuilt_from_scratch;

    if (epochs_counter_ != nullptr) epochs_counter_->inc();
    if (groups_preserved_ != nullptr) {
        groups_preserved_->inc(transition.preserved_groups);
    }
    if (groups_rebuilt_ != nullptr) {
        groups_rebuilt_->inc(decomposition->size() -
                             transition.preserved_groups);
    }

    epochs_.push_back(Epoch{transition.to_epoch, decomposition});
    transitions_.push_back(std::move(transition));
    publish_gauges();
    return transitions_.back();
}

void TopologyManager::attach_metrics(obs::MetricsRegistry& registry) {
    epochs_counter_ = &registry.counter("topo_epochs");
    channels_added_ = &registry.counter("topo_channels_added");
    channels_removed_ = &registry.counter("topo_channels_removed");
    processes_added_ = &registry.counter("topo_processes_added");
    groups_preserved_ = &registry.counter("topo_groups_preserved");
    groups_rebuilt_ = &registry.counter("topo_groups_rebuilt");
    full_rebuilds_ = &registry.counter("topo_full_rebuilds");
    width_gauge_ = &registry.gauge("topo_width");
    processes_gauge_ = &registry.gauge("topo_processes");
    publish_gauges();
}

void TopologyManager::detach_metrics() noexcept {
    epochs_counter_ = nullptr;
    channels_added_ = nullptr;
    channels_removed_ = nullptr;
    processes_added_ = nullptr;
    groups_preserved_ = nullptr;
    groups_rebuilt_ = nullptr;
    full_rebuilds_ = nullptr;
    width_gauge_ = nullptr;
    processes_gauge_ = nullptr;
}

void TopologyManager::publish_gauges() noexcept {
    if (width_gauge_ != nullptr) {
        width_gauge_->set(static_cast<std::int64_t>(current().width()));
    }
    if (processes_gauge_ != nullptr) {
        processes_gauge_->set(
            static_cast<std::int64_t>(current().num_processes()));
    }
}

}  // namespace syncts
