#include "topo/epoch.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace syncts {

void EpochTransition::migrate_components(
    std::span<const std::uint64_t> old_vec,
    std::span<std::uint64_t> new_vec) const {
    SYNCTS_REQUIRE(old_vec.size() == old_width(),
                   "migrate_components: old vector width mismatch");
    SYNCTS_REQUIRE(new_vec.size() == new_width(),
                   "migrate_components: new vector width mismatch");
    for (std::size_t g = 0; g < new_vec.size(); ++g) {
        const GroupId src = group_source[g];
        new_vec[g] = src == kNoGroup ? 0 : old_vec[src];
    }
}

void EpochTransition::migrate_processes(
    std::span<const std::uint64_t> old_vec,
    std::span<std::uint64_t> new_vec) const {
    SYNCTS_REQUIRE(old_vec.size() == old_num_processes,
                   "migrate_processes: old vector length mismatch");
    SYNCTS_REQUIRE(new_vec.size() == new_num_processes,
                   "migrate_processes: new vector length mismatch");
    std::copy(old_vec.begin(), old_vec.end(), new_vec.begin());
    std::fill(new_vec.begin() + static_cast<std::ptrdiff_t>(old_vec.size()),
              new_vec.end(), 0);
}

}  // namespace syncts
