#pragma once

#include <stdexcept>
#include <string>

/// \file recovery_error.hpp
/// Typed failure for damaged or inconsistent durable recovery state
/// (snapshots and write-ahead logs; docs/RECOVERY.md).

namespace syncts {

/// Malformed snapshot or WAL input. Derives from std::runtime_error —
/// unlike wire damage (WireError, an input-validation failure the
/// protocol retransmits around), broken durable state is an environment
/// fault the caller must surface, not retry.
class RecoveryError : public std::runtime_error {
public:
    enum class Kind {
        truncated,            ///< input ended mid-value
        bad_magic,            ///< not a snapshot / WAL record at all
        unsupported_version,  ///< format from a future version
        checksum_mismatch,    ///< trailer does not match the payload
        malformed,            ///< fields decode but are inconsistent
        log_gap,              ///< WAL is missing records the snapshot needs
    };

    RecoveryError(Kind kind, const std::string& what)
        : std::runtime_error(what), kind_(kind) {}

    Kind kind() const noexcept { return kind_; }

private:
    Kind kind_;
};

}  // namespace syncts
