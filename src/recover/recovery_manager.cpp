#include "recover/recovery_manager.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "clocks/online_clock.hpp"
#include "clocks/wire.hpp"
#include "common/check.hpp"

namespace syncts {

namespace {

[[noreturn]] void malformed(const char* what) {
    throw RecoveryError(RecoveryError::Kind::malformed, what);
}

/// Channel lookup/insert keeping the per-peer vectors sorted (the
/// serialized order, so snapshot → recover → snapshot round-trips
/// byte-identically). New channels appear when replayed records touch a
/// peer the snapshot had not spoken to yet.
OutChannelState& out_channel(ProcessState& state, ProcessId peer,
                             std::size_t window_capacity) {
    auto it = std::lower_bound(
        state.out.begin(), state.out.end(), peer,
        [](const OutChannelState& c, ProcessId p) { return c.peer < p; });
    if (it == state.out.end() || it->peer != peer) {
        OutChannelState channel;
        channel.peer = peer;
        channel.req_window = FrameWindow(window_capacity);
        it = state.out.insert(it, std::move(channel));
    }
    return *it;
}

InChannelState& in_channel(ProcessState& state, ProcessId peer,
                           std::size_t window_capacity) {
    auto it = std::lower_bound(
        state.in.begin(), state.in.end(), peer,
        [](const InChannelState& c, ProcessId p) { return c.peer < p; });
    if (it == state.in.end() || it->peer != peer) {
        InChannelState channel;
        channel.peer = peer;
        channel.ack_window = FrameWindow(window_capacity);
        it = state.in.insert(it, std::move(channel));
    }
    return *it;
}

}  // namespace

RecoverOutcome RecoveryManager::recover(
    std::span<const std::uint8_t> snapshot_bytes, const Wal& wal,
    const DecompositionProvider& decomposition) {
    SYNCTS_REQUIRE(decomposition != nullptr,
                   "recovery needs a decomposition provider");
    const Snapshot snapshot = decode_snapshot(snapshot_bytes);
    const std::vector<WalRecord> records = wal.replay(snapshot.wal_lsn);
    if (!records.empty() && records.front().lsn > snapshot.wal_lsn) {
        // Durable records survive contiguously (crashes drop only the
        // buffered tail), so a hole right after the stability point means
        // the log was truncated past the snapshot that needed it.
        throw RecoveryError(
            RecoveryError::Kind::log_gap,
            "WAL no longer reaches back to the snapshot's stability point");
    }

    RecoverOutcome outcome;
    outcome.stable_epoch = snapshot.state.epoch;
    ProcessState state = snapshot.state;
    // The window capacity every channel of this process uses; replayed
    // records may open channels the snapshot had not seen.
    std::size_t window_capacity = FrameWindow().capacity();
    for (const OutChannelState& channel : state.out) {
        window_capacity =
            std::max(window_capacity, channel.req_window.capacity());
    }
    for (const InChannelState& channel : state.in) {
        window_capacity =
            std::max(window_capacity, channel.ack_window.capacity());
    }

    std::shared_ptr<const EdgeDecomposition> decomp =
        decomposition(state.epoch);
    SYNCTS_REQUIRE(decomp != nullptr,
                   "decomposition provider returned null for the snapshot "
                   "epoch");
    OnlineProcessClock clock(state.self, decomp);
    if (state.clock.size() != clock.width()) {
        malformed("snapshot clock width does not match the epoch topology");
    }
    clock.restore_from(state.clock);
    std::vector<std::uint64_t> piggy(clock.width());
    std::vector<std::uint64_t> ack(clock.width());
    std::vector<std::uint64_t> stamp(clock.width());
    std::vector<std::uint8_t> ack_bytes;

    for (const WalRecord& record : records) {
        switch (record.type) {
            case WalRecordType::send: {
                if (record.epoch != state.epoch) {
                    malformed("WAL send record from another epoch");
                }
                OutChannelState& channel =
                    out_channel(state, record.peer, window_capacity);
                channel.next_sequence = record.sequence;
                channel.req_window.put(record.sequence, record.frame);
                state.outstanding.active = true;
                state.outstanding.receiver = record.peer;
                state.outstanding.sequence = record.sequence;
                state.outstanding.message = record.message;
                state.outstanding.frame = record.frame;
                break;
            }
            case WalRecordType::commit: {
                if (record.epoch != state.epoch) {
                    malformed("WAL commit record from another epoch");
                }
                const FrameHeader header =
                    decode_epoch_frame_into(record.frame, piggy);
                if (header.sequence != record.sequence ||
                    header.message != record.message ||
                    header.epoch != record.epoch) {
                    malformed("WAL commit record disagrees with its frame");
                }
                clock.on_receive_into(record.peer, piggy, ack, stamp);
                // The bit-identity proof obligation: re-running the
                // Fig. 5 merge on the logged REQ must reproduce the ACK
                // that was actually sent, byte for byte.
                encode_epoch_frame_into(record.epoch, record.sequence,
                                        record.message, ack, ack_bytes);
                if (ack_bytes != record.aux) {
                    malformed(
                        "replayed commit diverged from the logged "
                        "acknowledgement");
                }
                InChannelState& channel =
                    in_channel(state, record.peer, window_capacity);
                channel.last_committed = record.sequence;
                channel.ack_window.put(record.sequence, record.aux);
                ++state.cursor;
                ++state.steps;
                break;
            }
            case WalRecordType::ack: {
                if (record.epoch != state.epoch) {
                    malformed("WAL ack record from another epoch");
                }
                if (!state.outstanding.active ||
                    state.outstanding.receiver != record.peer ||
                    state.outstanding.sequence != record.sequence) {
                    malformed(
                        "WAL ack record without a matching outstanding "
                        "send");
                }
                decode_epoch_frame_into(record.aux, piggy);
                clock.on_ack_into(record.peer, piggy, stamp);
                state.outstanding = OutstandingState{};
                ++state.cursor;
                ++state.steps;
                break;
            }
            case WalRecordType::epoch: {
                if (record.epoch != state.epoch + 1) {
                    malformed("WAL epoch record skips a barrier");
                }
                state.epoch = record.epoch;
                state.cursor = 0;
                decomp = decomposition(state.epoch);
                SYNCTS_REQUIRE(decomp != nullptr,
                               "decomposition provider returned null for a "
                               "replayed epoch");
                clock = OnlineProcessClock(state.self, decomp);
                piggy.assign(clock.width(), 0);
                ack.assign(clock.width(), 0);
                stamp.assign(clock.width(), 0);
                ++outcome.replayed_epochs;
                break;
            }
        }
        ++outcome.replayed_records;
    }

    const auto final_clock = clock.current_span();
    state.clock.assign(final_clock.begin(), final_clock.end());
    outcome.state = std::move(state);
    outcome.wal_next_lsn = snapshot.wal_lsn + outcome.replayed_records;
    return outcome;
}

}  // namespace syncts
