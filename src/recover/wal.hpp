#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "recover/recovery_error.hpp"

/// \file wal.hpp
/// Append-only write-ahead log of rendezvous wire frames
/// (docs/RECOVERY.md).
///
/// Every protocol step that advances a process's clock — sending a REQ,
/// committing a received REQ, accepting an ACK, crossing an epoch
/// barrier — appends one record holding the frame bytes involved.
/// Records become durable at *flush points*: a group flush every
/// `flush_interval` appends (the fsync-batching a disk-backed log would
/// do), so a crash loses at most one interval's tail. RecoveryManager
/// replays durable records over the latest snapshot; the snapshot's
/// `wal_lsn` marks the stability point, and `truncate()` garbage-collects
/// the prefix before it — the Drummond–Barbosa rule: state known folded
/// into a checkpoint everywhere it matters need not be kept, which
/// bounds log growth on long runs.
///
/// The log models a device in memory — the simulated runtime's crashes
/// are injected (`drop_unflushed()`), not real — but the byte format is
/// the real one: each record is varint-framed and individually
/// checksummed, and replay validates checksums and LSN continuity.

namespace syncts {

enum class WalRecordType : std::uint8_t {
    send = 1,    ///< REQ handed to the network (frame = REQ bytes)
    commit = 2,  ///< received REQ committed (frame = REQ, aux = sent ACK)
    ack = 3,     ///< ACK accepted, send completed (aux = received ACK)
    epoch = 4,   ///< epoch barrier crossed into `epoch`
};

struct WalRecord {
    WalRecordType type = WalRecordType::send;
    std::uint64_t lsn = 0;  ///< assigned by append(), contiguous from 1
    ProcessId peer = 0;     ///< channel partner (unused for epoch records)
    std::uint64_t sequence = 0;
    std::uint64_t message = 0;
    EpochId epoch = 0;  ///< engine epoch when the step executed
    std::vector<std::uint8_t> frame;
    std::vector<std::uint8_t> aux;
};

class Wal {
public:
    /// `flush_interval` appends per group flush (>= 1; 1 = every record
    /// durable immediately).
    explicit Wal(std::uint64_t flush_interval = 4);

    /// Serializes and buffers `record`, assigning and returning its LSN.
    /// Auto-flushes when a full flush interval has accumulated.
    std::uint64_t append(WalRecord record);

    /// Makes every buffered record durable (a flush point).
    void flush();

    /// Crash model: the unflushed tail is lost. Its LSNs are reused by
    /// later appends, keeping the log contiguous with the durable prefix.
    void drop_unflushed();

    /// Garbage-collects durable records with lsn < `stable_lsn` — legal
    /// once a snapshot with wal_lsn >= stable_lsn is itself durable.
    void truncate(std::uint64_t stable_lsn);

    /// Decodes the durable records with lsn >= `from_lsn`, validating
    /// per-record checksums and LSN contiguity. Throws RecoveryError,
    /// including a log_gap when `from_lsn` precedes the retained prefix
    /// (records the caller needs were truncated or lost).
    std::vector<WalRecord> replay(std::uint64_t from_lsn) const;

    /// LSN the next append will get (also: one past the last assigned).
    std::uint64_t next_lsn() const noexcept { return next_lsn_; }

    /// Oldest retained durable LSN (== next_lsn() when empty).
    std::uint64_t first_lsn() const noexcept;

    std::size_t durable_records() const noexcept { return durable_.size(); }
    std::size_t buffered_records() const noexcept { return buffered_.size(); }
    std::uint64_t flush_interval() const noexcept { return flush_interval_; }

    /// Lifetime stats for the recover_* instrumentation.
    std::uint64_t appends() const noexcept { return appends_; }
    std::uint64_t flushes() const noexcept { return flushes_; }
    std::uint64_t truncated_records() const noexcept { return truncated_; }
    std::uint64_t dropped_records() const noexcept { return dropped_; }

    /// Durable bytes currently retained.
    std::size_t durable_bytes() const noexcept;

private:
    struct Stored {
        std::uint64_t lsn = 0;
        std::vector<std::uint8_t> bytes;
    };

    std::uint64_t flush_interval_;
    std::uint64_t next_lsn_ = 1;
    std::deque<Stored> durable_;
    std::deque<Stored> buffered_;
    std::uint64_t appends_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t truncated_ = 0;
    std::uint64_t dropped_ = 0;
};

/// Record byte format (exposed for tests/fuzzing): varint lsn, one type
/// byte, varint peer/sequence/message/epoch, varint-length-prefixed frame
/// and aux, trailed by an 8-byte little-endian FNV-1a 64 checksum.
void encode_wal_record_into(const WalRecord& record,
                            std::vector<std::uint8_t>& out);
WalRecord decode_wal_record(std::span<const std::uint8_t> bytes);

}  // namespace syncts
