#include "recover/wal.hpp"

#include <limits>
#include <string>
#include <utility>

#include "clocks/wire.hpp"
#include "common/check.hpp"
#include "common/checksum.hpp"

namespace syncts {

namespace {

std::uint64_t read_varint(std::span<const std::uint8_t> bytes,
                          std::size_t& offset) {
    try {
        return decode_varint(bytes, offset);
    } catch (const WireError& error) {
        throw RecoveryError(RecoveryError::Kind::truncated, error.what());
    }
}

std::vector<std::uint8_t> read_blob(std::span<const std::uint8_t> bytes,
                                    std::size_t& offset) {
    const std::uint64_t length = read_varint(bytes, offset);
    if (length > bytes.size() - offset) {
        throw RecoveryError(RecoveryError::Kind::truncated,
                            "WAL blob length exceeds the record");
    }
    const auto begin = bytes.begin() + static_cast<std::ptrdiff_t>(offset);
    offset += length;
    return std::vector<std::uint8_t>(
        begin, begin + static_cast<std::ptrdiff_t>(length));
}

}  // namespace

void encode_wal_record_into(const WalRecord& record,
                            std::vector<std::uint8_t>& out) {
    const std::size_t start = out.size();
    encode_varint(record.lsn, out);
    out.push_back(static_cast<std::uint8_t>(record.type));
    encode_varint(record.peer, out);
    encode_varint(record.sequence, out);
    encode_varint(record.message, out);
    encode_varint(record.epoch, out);
    encode_varint(record.frame.size(), out);
    out.insert(out.end(), record.frame.begin(), record.frame.end());
    encode_varint(record.aux.size(), out);
    out.insert(out.end(), record.aux.begin(), record.aux.end());
    common::append_checksum_trailer(out, start);
}

WalRecord decode_wal_record(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < 8 + 2) {
        throw RecoveryError(RecoveryError::Kind::truncated,
                            "WAL record shorter than its checksum");
    }
    const std::span<const std::uint8_t> body = bytes.first(bytes.size() - 8);
    const std::uint64_t stored =
        common::read_checksum_trailer(bytes, body.size());
    if (common::fnv1a64(body) != stored) {
        throw RecoveryError(RecoveryError::Kind::checksum_mismatch,
                            "WAL record checksum mismatch");
    }
    std::size_t offset = 0;
    WalRecord record;
    record.lsn = read_varint(body, offset);
    if (offset >= body.size()) {
        throw RecoveryError(RecoveryError::Kind::truncated,
                            "WAL record ends before its type byte");
    }
    const std::uint8_t type = body[offset++];
    if (type < static_cast<std::uint8_t>(WalRecordType::send) ||
        type > static_cast<std::uint8_t>(WalRecordType::epoch)) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "WAL record has an unknown type");
    }
    record.type = static_cast<WalRecordType>(type);
    const std::uint64_t peer = read_varint(body, offset);
    if (peer > kNoProcess) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "WAL record peer out of range");
    }
    record.peer = static_cast<ProcessId>(peer);
    record.sequence = read_varint(body, offset);
    record.message = read_varint(body, offset);
    const std::uint64_t epoch = read_varint(body, offset);
    if (epoch > std::numeric_limits<EpochId>::max()) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "WAL record epoch exceeds the epoch id range");
    }
    record.epoch = static_cast<EpochId>(epoch);
    record.frame = read_blob(body, offset);
    record.aux = read_blob(body, offset);
    if (offset != body.size()) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "WAL record has undecoded trailing bytes");
    }
    return record;
}

Wal::Wal(std::uint64_t flush_interval) : flush_interval_(flush_interval) {
    SYNCTS_REQUIRE(flush_interval_ >= 1,
                   "WAL flush interval must be >= 1 record");
}

std::uint64_t Wal::append(WalRecord record) {
    record.lsn = next_lsn_++;
    Stored stored;
    stored.lsn = record.lsn;
    encode_wal_record_into(record, stored.bytes);
    buffered_.push_back(std::move(stored));
    ++appends_;
    if (buffered_.size() >= flush_interval_) flush();
    return record.lsn;
}

void Wal::flush() {
    if (buffered_.empty()) return;
    while (!buffered_.empty()) {
        durable_.push_back(std::move(buffered_.front()));
        buffered_.pop_front();
    }
    ++flushes_;
}

void Wal::drop_unflushed() {
    // The dropped records are gone forever, so their LSNs are reusable —
    // and must be reused: the buffered tail holds the highest assigned
    // LSNs, and leaving a hole behind would make the next appends
    // discontiguous with the durable prefix, poisoning every later
    // replay with a phantom log gap.
    dropped_ += buffered_.size();
    next_lsn_ -= buffered_.size();
    buffered_.clear();
}

void Wal::truncate(std::uint64_t stable_lsn) {
    while (!durable_.empty() && durable_.front().lsn < stable_lsn) {
        durable_.pop_front();
        ++truncated_;
    }
}

std::uint64_t Wal::first_lsn() const noexcept {
    if (!durable_.empty()) return durable_.front().lsn;
    if (!buffered_.empty()) return buffered_.front().lsn;
    return next_lsn_;
}

std::size_t Wal::durable_bytes() const noexcept {
    std::size_t total = 0;
    for (const Stored& stored : durable_) total += stored.bytes.size();
    return total;
}

std::vector<WalRecord> Wal::replay(std::uint64_t from_lsn) const {
    if (from_lsn < first_lsn()) {
        // Records the caller needs were truncated (or never survived a
        // crash): even an empty result would silently skip history.
        throw RecoveryError(RecoveryError::Kind::log_gap,
                            "WAL replay starts before the retained prefix");
    }
    std::vector<WalRecord> records;
    std::uint64_t expected = 0;
    for (const Stored& stored : durable_) {
        if (stored.lsn < from_lsn) continue;
        WalRecord record = decode_wal_record(stored.bytes);
        if (record.lsn != stored.lsn) {
            throw RecoveryError(RecoveryError::Kind::malformed,
                                "WAL record LSN disagrees with its index");
        }
        if (expected != 0 && record.lsn != expected) {
            throw RecoveryError(RecoveryError::Kind::log_gap,
                                "WAL replay found a gap in the LSN sequence");
        }
        expected = record.lsn + 1;
        records.push_back(std::move(record));
    }
    return records;
}

}  // namespace syncts
