#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "decomp/edge_decomposition.hpp"
#include "recover/snapshot.hpp"
#include "recover/wal.hpp"

/// \file recovery_manager.hpp
/// Snapshot + WAL replay → the state of a never-crashed process
/// (docs/RECOVERY.md).
///
/// Recovery decodes the latest snapshot, rebuilds the process's online
/// clock on the snapshot epoch's decomposition, and re-applies every
/// durable WAL record from the snapshot's stability point forward —
/// commits re-run the Fig. 5 receiver merge on the logged REQ frame,
/// accepted ACKs re-run the sender merge, sends re-establish the
/// outstanding REQ, and epoch records cross the barrier. Because the
/// merges are deterministic functions of the frame bytes, the replayed
/// clock is *provably* bit-identical to the pre-crash one: every commit
/// re-encodes its ACK and checks it byte-for-byte against the logged
/// original, so any divergence faults the recovery instead of
/// propagating.

namespace syncts {

/// The reconstructed state plus replay statistics.
struct RecoverOutcome {
    ProcessState state;

    /// The snapshot's own epoch — the process's rewind floor. WAL
    /// replay may carry `state.epoch` past it (epoch records cross
    /// barriers), but no recovery of this store can ever touch an epoch
    /// below `stable_epoch`: it is the anchor the runtime's region pins
    /// and the stability frontier are keyed on (docs/MEMORY.md).
    EpochId stable_epoch = 0;

    std::uint64_t replayed_records = 0;
    std::uint64_t replayed_epochs = 0;

    /// The LSN the WAL will assign next, as implied by what recovery
    /// consumed: the snapshot's stability point plus every replayed
    /// record. The runtime cross-checks this against the live log's
    /// next_lsn() (and the flight recorder's dumped WAL position) — a
    /// mismatch means recovery and the log disagree about how much
    /// history survived the crash.
    std::uint64_t wal_next_lsn = 0;
};

class RecoveryManager {
public:
    /// Maps an epoch id to its decomposition ("known by all processes" —
    /// the topology manager in the runtime, a fixture in tests).
    using DecompositionProvider =
        std::function<std::shared_ptr<const EdgeDecomposition>(EpochId)>;

    /// Reconstructs the process state from `snapshot_bytes` and the
    /// durable suffix of `wal`. Throws RecoveryError when the snapshot or
    /// log is damaged, or when the log no longer reaches back to the
    /// snapshot's stability point (over-eager truncation).
    static RecoverOutcome recover(std::span<const std::uint8_t> snapshot_bytes,
                                  const Wal& wal,
                                  const DecompositionProvider& decomposition);
};

}  // namespace syncts
