#include "recover/snapshot.hpp"

#include <limits>
#include <string>
#include <utility>

#include "clocks/wire.hpp"
#include "common/checksum.hpp"

namespace syncts {

namespace {

constexpr std::uint8_t kSnapshotMagic[4] = {'S', 'Y', 'S', 'N'};
constexpr std::uint64_t kSnapshotVersion = 1;

/// decode_varint rethrown in recovery's error domain.
std::uint64_t read_varint(std::span<const std::uint8_t> bytes,
                          std::size_t& offset) {
    try {
        return decode_varint(bytes, offset);
    } catch (const WireError& error) {
        throw RecoveryError(RecoveryError::Kind::truncated, error.what());
    }
}

std::vector<std::uint8_t> read_blob(std::span<const std::uint8_t> bytes,
                                    std::size_t& offset) {
    const std::uint64_t length = read_varint(bytes, offset);
    if (length > bytes.size() - offset) {
        throw RecoveryError(RecoveryError::Kind::truncated,
                            "snapshot blob length exceeds the frame");
    }
    const auto begin = bytes.begin() + static_cast<std::ptrdiff_t>(offset);
    offset += length;
    return std::vector<std::uint8_t>(begin,
                                     begin + static_cast<std::ptrdiff_t>(
                                                 length));
}

void write_blob(std::span<const std::uint8_t> blob,
                std::vector<std::uint8_t>& out) {
    encode_varint(blob.size(), out);
    out.insert(out.end(), blob.begin(), blob.end());
}

void write_window(const FrameWindow& window, std::vector<std::uint8_t>& out) {
    encode_varint(window.capacity(), out);
    encode_varint(window.size(), out);
    for (const FrameWindow::Entry& entry : window.entries()) {
        encode_varint(entry.sequence, out);
        write_blob(entry.frame, out);
    }
}

FrameWindow read_window(std::span<const std::uint8_t> bytes,
                        std::size_t& offset) {
    const std::uint64_t capacity = read_varint(bytes, offset);
    if (capacity == 0 || capacity > bytes.size()) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "snapshot window capacity is implausible");
    }
    FrameWindow window(capacity);
    const std::uint64_t count = read_varint(bytes, offset);
    if (count > capacity) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "snapshot window holds more than its capacity");
    }
    std::uint64_t previous = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t sequence = read_varint(bytes, offset);
        if (i > 0 && sequence <= previous) {
            throw RecoveryError(RecoveryError::Kind::malformed,
                                "snapshot window sequences not increasing");
        }
        previous = sequence;
        const std::vector<std::uint8_t> frame = read_blob(bytes, offset);
        window.put(sequence, frame);
    }
    return window;
}

ProcessId read_process(std::span<const std::uint8_t> bytes,
                       std::size_t& offset) {
    const std::uint64_t value = read_varint(bytes, offset);
    if (value > kNoProcess) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "snapshot process id out of range");
    }
    return static_cast<ProcessId>(value);
}

}  // namespace

void encode_snapshot_into(const Snapshot& snapshot,
                          std::vector<std::uint8_t>& out) {
    const std::size_t start = out.size();
    out.insert(out.end(), std::begin(kSnapshotMagic),
               std::end(kSnapshotMagic));
    encode_varint(kSnapshotVersion, out);
    encode_varint(snapshot.wal_lsn, out);
    const ProcessState& state = snapshot.state;
    encode_varint(state.self, out);
    encode_varint(state.epoch, out);
    encode_varint(state.cursor, out);
    encode_varint(state.steps, out);
    encode_varint(state.clock.size(), out);
    for (const std::uint64_t word : state.clock) encode_varint(word, out);
    out.push_back(state.outstanding.active ? 1 : 0);
    if (state.outstanding.active) {
        encode_varint(state.outstanding.receiver, out);
        encode_varint(state.outstanding.sequence, out);
        encode_varint(state.outstanding.message, out);
        write_blob(state.outstanding.frame, out);
    }
    encode_varint(state.out.size(), out);
    for (const OutChannelState& channel : state.out) {
        encode_varint(channel.peer, out);
        encode_varint(channel.next_sequence, out);
        write_window(channel.req_window, out);
    }
    encode_varint(state.in.size(), out);
    for (const InChannelState& channel : state.in) {
        encode_varint(channel.peer, out);
        encode_varint(channel.last_committed, out);
        write_window(channel.ack_window, out);
    }
    common::append_checksum_trailer(out, start);
}

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snapshot) {
    std::vector<std::uint8_t> out;
    encode_snapshot_into(snapshot, out);
    return out;
}

Snapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < sizeof(kSnapshotMagic) + 8) {
        throw RecoveryError(RecoveryError::Kind::truncated,
                            "snapshot shorter than magic plus checksum");
    }
    const std::span<const std::uint8_t> body = bytes.first(bytes.size() - 8);
    const std::uint64_t stored =
        common::read_checksum_trailer(bytes, body.size());
    if (common::fnv1a64(body) != stored) {
        throw RecoveryError(RecoveryError::Kind::checksum_mismatch,
                            "snapshot checksum mismatch");
    }
    std::size_t offset = 0;
    for (const std::uint8_t magic : kSnapshotMagic) {
        if (body[offset++] != magic) {
            throw RecoveryError(RecoveryError::Kind::bad_magic,
                                "snapshot magic mismatch");
        }
    }
    const std::uint64_t version = read_varint(body, offset);
    if (version != kSnapshotVersion) {
        throw RecoveryError(RecoveryError::Kind::unsupported_version,
                            "snapshot from an unsupported format version");
    }
    Snapshot snapshot;
    snapshot.wal_lsn = read_varint(body, offset);
    ProcessState& state = snapshot.state;
    state.self = read_process(body, offset);
    const std::uint64_t epoch = read_varint(body, offset);
    if (epoch > std::numeric_limits<EpochId>::max()) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "snapshot epoch exceeds the epoch id range");
    }
    state.epoch = static_cast<EpochId>(epoch);
    state.cursor = read_varint(body, offset);
    state.steps = read_varint(body, offset);
    const std::uint64_t clock_width = read_varint(body, offset);
    if (clock_width > body.size()) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "snapshot clock width exceeds the frame");
    }
    state.clock.reserve(clock_width);
    for (std::uint64_t i = 0; i < clock_width; ++i) {
        state.clock.push_back(read_varint(body, offset));
    }
    if (offset >= body.size()) {
        throw RecoveryError(RecoveryError::Kind::truncated,
                            "snapshot ends before the outstanding flag");
    }
    const std::uint8_t active = body[offset++];
    if (active > 1) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "snapshot outstanding flag is not boolean");
    }
    if (active == 1) {
        state.outstanding.active = true;
        state.outstanding.receiver = read_process(body, offset);
        state.outstanding.sequence = read_varint(body, offset);
        state.outstanding.message = read_varint(body, offset);
        state.outstanding.frame = read_blob(body, offset);
    }
    const std::uint64_t out_count = read_varint(body, offset);
    if (out_count > body.size()) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "snapshot out-channel count exceeds the frame");
    }
    state.out.reserve(out_count);
    for (std::uint64_t i = 0; i < out_count; ++i) {
        OutChannelState channel;
        channel.peer = read_process(body, offset);
        channel.next_sequence = read_varint(body, offset);
        channel.req_window = read_window(body, offset);
        state.out.push_back(std::move(channel));
    }
    const std::uint64_t in_count = read_varint(body, offset);
    if (in_count > body.size()) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "snapshot in-channel count exceeds the frame");
    }
    state.in.reserve(in_count);
    for (std::uint64_t i = 0; i < in_count; ++i) {
        InChannelState channel;
        channel.peer = read_process(body, offset);
        channel.last_committed = read_varint(body, offset);
        channel.ack_window = read_window(body, offset);
        state.in.push_back(std::move(channel));
    }
    if (offset != body.size()) {
        throw RecoveryError(RecoveryError::Kind::malformed,
                            "snapshot has undecoded trailing bytes");
    }
    return snapshot;
}

}  // namespace syncts
