#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "recover/frame_window.hpp"
#include "recover/recovery_error.hpp"

/// \file snapshot.hpp
/// Versioned, checksummed checkpoint of a process's full recovery state
/// (docs/RECOVERY.md).
///
/// The paper's synchronous model makes this small: a process's timestamp
/// behaviour is fully determined by its width-d clock vector plus the
/// sequence-numbered rendezvous history per channel. A snapshot therefore
/// carries the clock vector, the epoch it is relative to, the per-channel
/// sequence state with the retained frame windows, the in-flight send (if
/// any), and the WAL position from which replay must resume. Everything
/// after `wal_lsn` is reconstructed by RecoveryManager from the log;
/// everything before it has been folded into this snapshot, which is what
/// licenses truncating the log prefix (the stability rule).

namespace syncts {

/// Directed out-channel (self → peer): the last assigned sequence number
/// and the window of recently sent REQ frames (rejoin retransmission).
struct OutChannelState {
    ProcessId peer = 0;
    std::uint64_t next_sequence = 0;
    FrameWindow req_window;
};

/// Directed in-channel (peer → self): the highest committed sequence and
/// the window of recently sent ACK frames (duplicate/rejoin replay).
struct InChannelState {
    ProcessId peer = 0;
    std::uint64_t last_committed = 0;
    FrameWindow ack_window;
};

/// The one REQ a process may have in flight (rendezvous blocks the
/// sender, so there is at most one). The frame bytes are kept verbatim:
/// a restart retransmits exactly what was on the wire.
struct OutstandingState {
    bool active = false;
    ProcessId receiver = 0;
    std::uint64_t sequence = 0;
    std::uint64_t message = 0;
    std::vector<std::uint8_t> frame;
};

/// A process's complete durable protocol state. `clock` is the width-d
/// epoch-relative vector of the process's OnlineProcessClock — the
/// runtime's per-process slice of ClockFamily::online state; whole
/// multi-process engines of any family capture themselves with
/// ClockEngine::save_state / restore_state instead.
struct ProcessState {
    ProcessId self = 0;
    EpochId epoch = 0;
    /// Completed script steps (commits + accepted ACKs) in `epoch`.
    std::uint64_t cursor = 0;
    /// Lifetime protocol steps across epochs — the crash-rule progress
    /// counter, rewound together with everything else.
    std::uint64_t steps = 0;
    std::vector<std::uint64_t> clock;
    std::vector<OutChannelState> out;  ///< sorted by peer
    std::vector<InChannelState> in;    ///< sorted by peer
    OutstandingState outstanding;
};

/// A checkpoint: the state plus the WAL position replay resumes from.
struct Snapshot {
    ProcessState state;
    std::uint64_t wal_lsn = 0;
};

/// Serializes the snapshot: "SYSN" magic, varint version, the state
/// fields as varints (frames length-prefixed verbatim), trailed by an
/// 8-byte little-endian FNV-1a 64 checksum of everything before it.
void encode_snapshot_into(const Snapshot& snapshot,
                          std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> encode_snapshot(const Snapshot& snapshot);

/// Inverse of encode_snapshot. Throws RecoveryError on damage. The
/// windows of the decoded state keep their serialized capacities.
Snapshot decode_snapshot(std::span<const std::uint8_t> bytes);

}  // namespace syncts
