#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/check.hpp"

/// \file frame_window.hpp
/// Bounded ring of recent wire frames on one directed channel, keyed by
/// rendezvous sequence number.
///
/// The rejoin protocol (docs/RECOVERY.md) replays *original* frame bytes:
/// a recovered sender must receive the acknowledgement exactly as it was
/// first encoded (possibly under an earlier epoch's format) so that its
/// clock merge is bit-identical to the pre-crash one, and a recovered
/// receiver must be fed the original REQ frames it lost. Each engine
/// therefore keeps one window of sent REQs per out-channel and one window
/// of sent ACKs per in-channel. The capacity bounds memory the same way
/// the Drummond–Barbosa stability rule bounds the WAL: a restarting peer
/// can rewind at most one group-flush interval of rendezvous per channel,
/// so any window at least that deep always holds what a rejoin needs.

namespace syncts {

class FrameWindow {
public:
    struct Entry {
        std::uint64_t sequence = 0;
        std::vector<std::uint8_t> frame;
    };

    explicit FrameWindow(std::size_t capacity = 8) : capacity_(capacity) {
        SYNCTS_REQUIRE(capacity_ >= 1, "frame window capacity must be >= 1");
    }

    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t size() const noexcept { return entries_.size(); }
    bool empty() const noexcept { return entries_.empty(); }

    /// Records `frame` under `sequence`. Sequences normally arrive in
    /// increasing order; re-recording an existing sequence (a recovered
    /// process re-executing a rendezvous) overwrites in place, and a
    /// sequence older than the ring is ignored — it was pruned already.
    void put(std::uint64_t sequence, std::span<const std::uint8_t> frame) {
        if (!entries_.empty() && sequence <= entries_.back().sequence) {
            for (Entry& entry : entries_) {
                if (entry.sequence == sequence) {
                    entry.frame.assign(frame.begin(), frame.end());
                    return;
                }
            }
            return;  // older than the retained ring: already pruned
        }
        entries_.push_back(
            Entry{sequence, std::vector<std::uint8_t>(frame.begin(),
                                                      frame.end())});
        while (entries_.size() > capacity_) entries_.pop_front();
    }

    /// The frame recorded under `sequence`, or nullptr when pruned/unknown.
    const std::vector<std::uint8_t>* find(std::uint64_t sequence) const {
        for (const Entry& entry : entries_) {
            if (entry.sequence == sequence) return &entry.frame;
        }
        return nullptr;
    }

    /// Retained entries, oldest first (rejoin retransmission order).
    const std::deque<Entry>& entries() const noexcept { return entries_; }

private:
    std::size_t capacity_;
    std::deque<Entry> entries_;
};

}  // namespace syncts
