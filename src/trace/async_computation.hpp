#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"
#include "trace/computation.hpp"

/// \file async_computation.hpp
/// General message-passing computations with *separate* send and receive
/// events, and the paper's Section 2 characterization of synchrony:
///
///   "a computation is synchronous iff it is possible to timestamp send
///    and receive events with integers such that (1) timestamps increase
///    within each process and (2) the sending and receiving events of each
///    message have the same timestamp"
///
/// — equivalently, iff the time diagram can be drawn with vertical message
/// arrows (Charron-Bost, Mattern & Tel's RSC class). Operationally: merge
/// each message's send and receive into one node; the computation is
/// synchronous iff the relation "message a's endpoint precedes message
/// b's endpoint in some process" is acyclic. This module implements the
/// model, the check, and the conversion into a SyncComputation (an
/// explicit instant order) for consumption by every clock in src/clocks.

namespace syncts {

/// A computation described by per-process sequences of send/receive
/// events. Messages are numbered by creation; each message must have its
/// send and its receive recorded exactly once, on different processes.
class AsyncComputation {
public:
    explicit AsyncComputation(std::size_t num_processes);

    std::size_t num_processes() const noexcept { return events_.size(); }
    std::size_t num_messages() const noexcept { return endpoints_.size(); }

    /// Declares a new message; returns its id. Record its events with
    /// record_send / record_receive.
    MessageId new_message();

    /// Appends "process p sends message m" to p's event sequence.
    void record_send(ProcessId p, MessageId m);

    /// Appends "process p receives message m" to p's event sequence.
    void record_receive(ProcessId p, MessageId m);

    /// Convenience: new_message + both endpoints appended now (a message
    /// that is logically instantaneous).
    MessageId add_instant_message(ProcessId sender, ProcessId receiver);

    struct AsyncEvent {
        enum class Kind { send, receive };
        Kind kind = Kind::send;
        MessageId message = 0;
    };

    std::span<const AsyncEvent> process_events(ProcessId p) const;

    /// True when every declared message has both endpoints recorded.
    bool complete() const;

    /// Sender/receiver of message m (kNoProcess while unrecorded).
    ProcessId sender_of(MessageId m) const;
    ProcessId receiver_of(MessageId m) const;

private:
    struct Endpoints {
        ProcessId sender = kNoProcess;
        ProcessId receiver = kNoProcess;
    };
    std::vector<std::vector<AsyncEvent>> events_;
    std::vector<Endpoints> endpoints_;
};

/// Result of the synchrony check.
struct SynchronyResult {
    /// True when the computation is realizable with synchronous
    /// communication (vertical arrows).
    bool synchronous = false;

    /// When synchronous: a witness instant order (messages listed in an
    /// order consistent with every per-process event order).
    std::vector<MessageId> instant_order;

    /// When synchronous: the Section 2 integer timestamps — one value per
    /// message, shared by its send and receive, increasing within every
    /// process. (The instant order's ranks.)
    std::vector<std::uint64_t> integer_timestamps;

    /// When not synchronous: a cycle of messages witnessing the
    /// obstruction (each message's endpoint precedes the next one's in
    /// some process, wrapping around).
    std::vector<MessageId> violation_cycle;
};

/// The Section 2 characterization, decided in O(P + M + E).
/// Requires computation.complete().
SynchronyResult check_synchronous(const AsyncComputation& computation);

/// Converts a synchronous AsyncComputation into the instant-ordered model
/// (topology = the channels actually used, or a caller-provided graph
/// that must contain them). Throws std::invalid_argument when the
/// computation is not synchronous.
SyncComputation to_sync_computation(const AsyncComputation& computation);
SyncComputation to_sync_computation(const AsyncComputation& computation,
                                    Graph topology);

}  // namespace syncts
