#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

/// \file computation.hpp
/// The synchronous-computation model of Section 2.
///
/// A synchronous computation can always be drawn with vertical message
/// arrows: every message is a logically instantaneous rendezvous shared by
/// its two endpoint processes (Charron-Bost et al.). A computation is
/// therefore fully described by a global sequence of *instants*, each being
/// either a message on a topology edge or an internal event on one process.
/// Per-process event orders are the projections of that sequence, and the
/// synchronously-precedes relation ↦ is the transitive closure of "shares a
/// process and happens at an earlier instant" (the ▷ relation).

namespace syncts {

/// Identifier of an internal event, dense per computation.
using InternalId = std::uint32_t;

struct SyncMessage {
    MessageId id = 0;
    ProcessId sender = 0;
    ProcessId receiver = 0;

    bool involves(ProcessId p) const noexcept {
        return sender == p || receiver == p;
    }
};

struct InternalEvent {
    InternalId id = 0;
    ProcessId process = 0;
};

/// One entry of a per-process event sequence.
struct ProcessEvent {
    enum class Kind { message, internal };
    Kind kind = Kind::message;
    /// MessageId when kind==message, InternalId when kind==internal.
    std::uint32_t index = 0;
};

/// An immutable-after-construction record of one synchronous computation.
class SyncComputation {
public:
    /// Computation over `topology`; all messages must use topology edges.
    explicit SyncComputation(Graph topology);

    /// Appends a message at the next instant. Returns its MessageId.
    /// Requires {sender, receiver} to be a topology edge.
    MessageId add_message(ProcessId sender, ProcessId receiver);

    /// Appends an internal event on `p` at the next instant.
    InternalId add_internal(ProcessId p);

    std::size_t num_processes() const noexcept {
        return topology_.num_vertices();
    }
    std::size_t num_messages() const noexcept { return messages_.size(); }
    std::size_t num_internal_events() const noexcept {
        return internal_.size();
    }

    const SyncMessage& message(MessageId id) const;
    const InternalEvent& internal_event(InternalId id) const;

    std::span<const SyncMessage> messages() const noexcept { return messages_; }
    std::span<const InternalEvent> internal_events() const noexcept {
        return internal_;
    }

    /// The event sequence of process p (messages and internal events, in
    /// instant order).
    std::span<const ProcessEvent> process_events(ProcessId p) const;

    /// MessageIds that process p participates in, in instant order.
    std::span<const MessageId> process_messages(ProcessId p) const;

    const Graph& topology() const noexcept { return topology_; }

    /// e.g. "m3: P1 -> P2" lines, 1-based like the paper's figures.
    std::string to_string() const;

private:
    Graph topology_;
    std::vector<SyncMessage> messages_;
    std::vector<InternalEvent> internal_;
    std::vector<std::vector<ProcessEvent>> per_process_;
    std::vector<std::vector<MessageId>> per_process_messages_;
};

}  // namespace syncts
