#include "trace/computation.hpp"

#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace syncts {

SyncComputation::SyncComputation(Graph topology)
    : topology_(std::move(topology)),
      per_process_(topology_.num_vertices()),
      per_process_messages_(topology_.num_vertices()) {}

MessageId SyncComputation::add_message(ProcessId sender, ProcessId receiver) {
    SYNCTS_REQUIRE(topology_.has_edge(sender, receiver),
                   "message uses a channel absent from the topology");
    const auto id = static_cast<MessageId>(messages_.size());
    messages_.push_back({id, sender, receiver});
    for (const ProcessId p : {sender, receiver}) {
        per_process_[p].push_back({ProcessEvent::Kind::message, id});
        per_process_messages_[p].push_back(id);
    }
    return id;
}

InternalId SyncComputation::add_internal(ProcessId p) {
    SYNCTS_REQUIRE(p < num_processes(), "process out of range");
    const auto id = static_cast<InternalId>(internal_.size());
    internal_.push_back({id, p});
    per_process_[p].push_back({ProcessEvent::Kind::internal, id});
    return id;
}

const SyncMessage& SyncComputation::message(MessageId id) const {
    SYNCTS_REQUIRE(id < messages_.size(), "message id out of range");
    return messages_[id];
}

const InternalEvent& SyncComputation::internal_event(InternalId id) const {
    SYNCTS_REQUIRE(id < internal_.size(), "internal event id out of range");
    return internal_[id];
}

std::span<const ProcessEvent> SyncComputation::process_events(
    ProcessId p) const {
    SYNCTS_REQUIRE(p < num_processes(), "process out of range");
    return per_process_[p];
}

std::span<const MessageId> SyncComputation::process_messages(
    ProcessId p) const {
    SYNCTS_REQUIRE(p < num_processes(), "process out of range");
    return per_process_messages_[p];
}

std::string SyncComputation::to_string() const {
    std::ostringstream os;
    for (const SyncMessage& m : messages_) {
        os << 'm' << (m.id + 1) << ": P" << (m.sender + 1) << " -> P"
           << (m.receiver + 1) << '\n';
    }
    return os.str();
}

}  // namespace syncts
