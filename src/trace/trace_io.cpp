#include "trace/trace_io.hpp"

#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace syncts {

void write_computation(std::ostream& out,
                       const SyncComputation& computation) {
    const Graph& g = computation.topology();
    out << "syncts-trace 1\n";
    out << "processes " << g.num_vertices() << '\n';
    out << "edges " << g.num_edges() << '\n';
    for (const Edge& e : g.edges()) out << "e " << e.u << ' ' << e.v << '\n';

    const std::size_t total =
        computation.num_messages() + computation.num_internal_events();
    out << "events " << total << '\n';

    // Emit a valid instant order: messages in id order, each preceded by
    // the internal events that come before it in its endpoints' sequences.
    std::vector<std::size_t> cursor(g.num_vertices(), 0);
    const auto drain = [&](ProcessId p, MessageId until) {
        const auto events = computation.process_events(p);
        while (cursor[p] < events.size()) {
            const ProcessEvent& e = events[cursor[p]];
            if (e.kind == ProcessEvent::Kind::message) {
                SYNCTS_ENSURE(until != kNoMessage && e.index == until,
                              "trace serialization out of order");
                ++cursor[p];
                return;
            }
            out << "i " << p << '\n';
            ++cursor[p];
        }
        SYNCTS_ENSURE(until == kNoMessage, "message missing from sequence");
    };
    for (const SyncMessage& m : computation.messages()) {
        drain(m.sender, m.id);
        drain(m.receiver, m.id);
        out << "m " << m.sender << ' ' << m.receiver << '\n';
    }
    for (ProcessId p = 0; p < g.num_vertices(); ++p) drain(p, kNoMessage);
}

std::string serialize_computation(const SyncComputation& computation) {
    std::ostringstream os;
    write_computation(os, computation);
    return os.str();
}

namespace {

std::string next_token(std::istream& in, const char* what) {
    std::string token;
    SYNCTS_REQUIRE(static_cast<bool>(in >> token),
                   std::string("trace input truncated, expected ") + what);
    return token;
}

std::size_t next_number(std::istream& in, const char* what) {
    const std::string token = next_token(in, what);
    try {
        std::size_t consumed = 0;
        const unsigned long long value = std::stoull(token, &consumed);
        SYNCTS_REQUIRE(consumed == token.size(), "trailing garbage in number");
        return static_cast<std::size_t>(value);
    } catch (const std::logic_error&) {
        throw std::invalid_argument(std::string("expected a number for ") +
                                    what + ", got '" + token + "'");
    }
}

}  // namespace

SyncComputation read_computation(std::istream& in) {
    SYNCTS_REQUIRE(next_token(in, "magic") == "syncts-trace",
                   "not a syncts trace (bad magic)");
    SYNCTS_REQUIRE(next_number(in, "version") == 1,
                   "unsupported trace version");
    SYNCTS_REQUIRE(next_token(in, "processes keyword") == "processes",
                   "expected 'processes'");
    const std::size_t n = next_number(in, "process count");
    SYNCTS_REQUIRE(next_token(in, "edges keyword") == "edges",
                   "expected 'edges'");
    const std::size_t m = next_number(in, "edge count");

    Graph g(n);
    for (std::size_t i = 0; i < m; ++i) {
        SYNCTS_REQUIRE(next_token(in, "edge record") == "e",
                       "expected edge record 'e'");
        const std::size_t u = next_number(in, "edge endpoint");
        const std::size_t v = next_number(in, "edge endpoint");
        SYNCTS_REQUIRE(u < n && v < n, "edge endpoint out of range");
        g.add_edge(static_cast<ProcessId>(u), static_cast<ProcessId>(v));
    }

    SYNCTS_REQUIRE(next_token(in, "events keyword") == "events",
                   "expected 'events'");
    const std::size_t total = next_number(in, "event count");
    SyncComputation computation(std::move(g));
    for (std::size_t i = 0; i < total; ++i) {
        const std::string kind = next_token(in, "event record");
        if (kind == "m") {
            const std::size_t sender = next_number(in, "sender");
            const std::size_t receiver = next_number(in, "receiver");
            SYNCTS_REQUIRE(sender < n && receiver < n,
                           "event process out of range");
            computation.add_message(static_cast<ProcessId>(sender),
                                    static_cast<ProcessId>(receiver));
        } else if (kind == "i") {
            const std::size_t p = next_number(in, "process");
            SYNCTS_REQUIRE(p < n, "event process out of range");
            computation.add_internal(static_cast<ProcessId>(p));
        } else {
            throw std::invalid_argument("unknown event record '" + kind +
                                        "'");
        }
    }
    return computation;
}

SyncComputation parse_computation(const std::string& text) {
    std::istringstream in(text);
    return read_computation(in);
}

}  // namespace syncts
