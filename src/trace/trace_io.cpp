#include "trace/trace_io.hpp"

#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/checksum.hpp"

namespace syncts {

void write_computation(std::ostream& out,
                       const SyncComputation& computation) {
    const Graph& g = computation.topology();
    out << "syncts-trace 1\n";
    out << "processes " << g.num_vertices() << '\n';
    out << "edges " << g.num_edges() << '\n';
    for (const Edge& e : g.edges()) out << "e " << e.u << ' ' << e.v << '\n';

    const std::size_t total =
        computation.num_messages() + computation.num_internal_events();
    out << "events " << total << '\n';

    // Emit a valid instant order: messages in id order, each preceded by
    // the internal events that come before it in its endpoints' sequences.
    std::vector<std::size_t> cursor(g.num_vertices(), 0);
    const auto drain = [&](ProcessId p, MessageId until) {
        const auto events = computation.process_events(p);
        while (cursor[p] < events.size()) {
            const ProcessEvent& e = events[cursor[p]];
            if (e.kind == ProcessEvent::Kind::message) {
                SYNCTS_ENSURE(until != kNoMessage && e.index == until,
                              "trace serialization out of order");
                ++cursor[p];
                return;
            }
            out << "i " << p << '\n';
            ++cursor[p];
        }
        SYNCTS_ENSURE(until == kNoMessage, "message missing from sequence");
    };
    for (const SyncMessage& m : computation.messages()) {
        drain(m.sender, m.id);
        drain(m.receiver, m.id);
        out << "m " << m.sender << ' ' << m.receiver << '\n';
    }
    for (ProcessId p = 0; p < g.num_vertices(); ++p) drain(p, kNoMessage);
}

std::string serialize_computation(const SyncComputation& computation) {
    std::ostringstream os;
    write_computation(os, computation);
    return os.str();
}

namespace {

std::string next_token(std::istream& in, const char* what) {
    std::string token;
    SYNCTS_REQUIRE(static_cast<bool>(in >> token),
                   std::string("trace input truncated, expected ") + what);
    return token;
}

std::size_t next_number(std::istream& in, const char* what) {
    const std::string token = next_token(in, what);
    try {
        std::size_t consumed = 0;
        const unsigned long long value = std::stoull(token, &consumed);
        SYNCTS_REQUIRE(consumed == token.size(), "trailing garbage in number");
        return static_cast<std::size_t>(value);
    } catch (const std::logic_error&) {
        throw std::invalid_argument(std::string("expected a number for ") +
                                    what + ", got '" + token + "'");
    }
}

}  // namespace

SyncComputation read_computation(std::istream& in) {
    SYNCTS_REQUIRE(next_token(in, "magic") == "syncts-trace",
                   "not a syncts trace (bad magic)");
    SYNCTS_REQUIRE(next_number(in, "version") == 1,
                   "unsupported trace version");
    SYNCTS_REQUIRE(next_token(in, "processes keyword") == "processes",
                   "expected 'processes'");
    const std::size_t n = next_number(in, "process count");
    SYNCTS_REQUIRE(next_token(in, "edges keyword") == "edges",
                   "expected 'edges'");
    const std::size_t m = next_number(in, "edge count");

    Graph g(n);
    for (std::size_t i = 0; i < m; ++i) {
        SYNCTS_REQUIRE(next_token(in, "edge record") == "e",
                       "expected edge record 'e'");
        const std::size_t u = next_number(in, "edge endpoint");
        const std::size_t v = next_number(in, "edge endpoint");
        SYNCTS_REQUIRE(u < n && v < n, "edge endpoint out of range");
        g.add_edge(static_cast<ProcessId>(u), static_cast<ProcessId>(v));
    }

    SYNCTS_REQUIRE(next_token(in, "events keyword") == "events",
                   "expected 'events'");
    const std::size_t total = next_number(in, "event count");
    SyncComputation computation(std::move(g));
    for (std::size_t i = 0; i < total; ++i) {
        const std::string kind = next_token(in, "event record");
        if (kind == "m") {
            const std::size_t sender = next_number(in, "sender");
            const std::size_t receiver = next_number(in, "receiver");
            SYNCTS_REQUIRE(sender < n && receiver < n,
                           "event process out of range");
            computation.add_message(static_cast<ProcessId>(sender),
                                    static_cast<ProcessId>(receiver));
        } else if (kind == "i") {
            const std::size_t p = next_number(in, "process");
            SYNCTS_REQUIRE(p < n, "event process out of range");
            computation.add_internal(static_cast<ProcessId>(p));
        } else {
            throw std::invalid_argument("unknown event record '" + kind +
                                        "'");
        }
    }
    return computation;
}

SyncComputation parse_computation(const std::string& text) {
    std::istringstream in(text);
    return read_computation(in);
}

// ---------------------------------------------------------------------------
// SYTR v2 streaming binary format.

namespace {

constexpr char kStreamMagic[4] = {'S', 'Y', 'T', 'R'};

void append_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t read_varint(std::span<const std::uint8_t> bytes,
                          std::size_t& at, const char* what) {
    std::uint64_t v = 0;
    for (std::size_t shift = 0; shift < 64; shift += 7) {
        SYNCTS_REQUIRE(at < bytes.size(),
                       std::string("truncated varint for ") + what);
        const std::uint8_t byte = bytes[at++];
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) return v;
    }
    throw std::invalid_argument(std::string("overlong varint for ") + what);
}

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

/// Seals and writes one frame: the already-assembled prefix (tag bytes)
/// plus payload_len + payload + trailer.
void write_frame(std::ostream& out, std::vector<std::uint8_t>& frame,
                 std::span<const std::uint8_t> payload) {
    SYNCTS_REQUIRE(payload.size() <= kStreamFrameCap,
                   "stream frame payload over cap");
    append_u32le(frame, static_cast<std::uint32_t>(payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    common::append_checksum_trailer(frame, 0);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    SYNCTS_REQUIRE(static_cast<bool>(out), "stream write failed");
}

/// Reads `n` bytes into frame (appending); throws on EOF.
void read_exact(std::istream& in, std::vector<std::uint8_t>& frame,
                std::size_t n, const char* what) {
    const std::size_t start = frame.size();
    frame.resize(start + n);
    in.read(reinterpret_cast<char*>(frame.data() + start),
            static_cast<std::streamsize>(n));
    SYNCTS_REQUIRE(static_cast<std::size_t>(in.gcount()) == n,
                   std::string("stream truncated reading ") + what);
}

/// Validates the trailer sealing frame[0..frame.size()-8).
void check_frame_trailer(const std::vector<std::uint8_t>& frame,
                         const char* what) {
    const std::size_t sealed = frame.size() - common::kChecksumTrailerBytes;
    const std::uint64_t declared = common::read_checksum_trailer(frame, sealed);
    const std::uint64_t actual =
        common::fnv1a64({frame.data(), sealed});
    SYNCTS_REQUIRE(declared == actual,
                   std::string("stream checksum mismatch in ") + what);
}

}  // namespace

StreamingTraceWriter::StreamingTraceWriter(std::ostream& out,
                                           const Graph& topology,
                                           std::size_t chunk_events)
    : out_(out),
      num_processes_(topology.num_vertices()),
      chunk_events_(chunk_events == 0 ? 1 : chunk_events) {
    std::vector<std::uint8_t> payload;
    append_varint(payload, topology.num_vertices());
    append_varint(payload, topology.num_edges());
    for (const Edge& e : topology.edges()) {
        append_varint(payload, e.u);
        append_varint(payload, e.v);
    }
    std::vector<std::uint8_t> frame(std::begin(kStreamMagic),
                                    std::end(kStreamMagic));
    frame.push_back(kStreamTraceVersion);
    write_frame(out_, frame, payload);
}

void StreamingTraceWriter::add_message(ProcessId sender, ProcessId receiver) {
    SYNCTS_REQUIRE(!finished_, "stream already finished");
    SYNCTS_REQUIRE(sender < num_processes_ && receiver < num_processes_,
                   "endpoint out of range");
    SYNCTS_REQUIRE(sender != receiver, "a message needs distinct endpoints");
    chunk_.push_back(
        static_cast<std::uint8_t>(TraceRecord::Kind::message));
    append_varint(chunk_, sender);
    append_varint(chunk_, receiver);
    ++chunk_count_;
    ++total_events_;
    if (chunk_count_ >= chunk_events_) flush_chunk();
}

void StreamingTraceWriter::add_internal(ProcessId process) {
    SYNCTS_REQUIRE(!finished_, "stream already finished");
    SYNCTS_REQUIRE(process < num_processes_, "process out of range");
    chunk_.push_back(
        static_cast<std::uint8_t>(TraceRecord::Kind::internal));
    append_varint(chunk_, process);
    ++chunk_count_;
    ++total_events_;
    if (chunk_count_ >= chunk_events_) flush_chunk();
}

void StreamingTraceWriter::flush_chunk() {
    if (chunk_count_ == 0) return;
    std::vector<std::uint8_t> payload;
    payload.reserve(chunk_.size() + 4);
    append_varint(payload, chunk_count_);
    payload.insert(payload.end(), chunk_.begin(), chunk_.end());
    std::vector<std::uint8_t> frame;
    frame.push_back(static_cast<std::uint8_t>('C'));
    write_frame(out_, frame, payload);
    chunk_.clear();
    chunk_count_ = 0;
}

void StreamingTraceWriter::finish() {
    if (finished_) return;
    flush_chunk();
    std::vector<std::uint8_t> payload;
    append_varint(payload, total_events_);
    std::vector<std::uint8_t> frame;
    frame.push_back(static_cast<std::uint8_t>('E'));
    write_frame(out_, frame, payload);
    out_.flush();
    finished_ = true;
}

StreamingTraceReader::StreamingTraceReader(std::istream& in) : in_(in) {
    frame_.clear();
    read_exact(in_, frame_, 4 + 1 + 4, "stream header");
    for (std::size_t i = 0; i < 4; ++i) {
        SYNCTS_REQUIRE(frame_[i] == static_cast<std::uint8_t>(kStreamMagic[i]),
                       "not a SYTR stream (bad magic)");
    }
    SYNCTS_REQUIRE(frame_[4] == kStreamTraceVersion,
                   "unsupported SYTR stream version " +
                       std::to_string(frame_[4]));
    std::uint32_t payload_len = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        payload_len |= static_cast<std::uint32_t>(frame_[5 + i]) << (8 * i);
    }
    SYNCTS_REQUIRE(payload_len <= kStreamFrameCap,
                   "hostile header length " + std::to_string(payload_len));
    read_exact(in_, frame_, payload_len + common::kChecksumTrailerBytes,
               "stream header payload");
    check_frame_trailer(frame_, "stream header");

    const std::span<const std::uint8_t> payload{frame_.data() + 9,
                                                payload_len};
    std::size_t at = 0;
    const std::uint64_t n = read_varint(payload, at, "process count");
    const std::uint64_t e = read_varint(payload, at, "edge count");
    SYNCTS_REQUIRE(n <= kNoProcess, "hostile process count");
    // Each edge costs at least two payload bytes — reject counts the
    // payload cannot possibly hold before allocating for them.
    SYNCTS_REQUIRE(e <= (payload.size() - at) / 2 + 1,
                   "hostile edge count " + std::to_string(e));
    Graph g(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < e; ++i) {
        const std::uint64_t u = read_varint(payload, at, "edge endpoint");
        const std::uint64_t v = read_varint(payload, at, "edge endpoint");
        SYNCTS_REQUIRE(u < n && v < n, "edge endpoint out of range");
        g.add_edge(static_cast<ProcessId>(u), static_cast<ProcessId>(v));
    }
    SYNCTS_REQUIRE(at == payload.size(),
                   "trailing garbage in stream header");
    topology_ = std::move(g);
}

void StreamingTraceReader::pull_frame() {
    frame_.clear();
    read_exact(in_, frame_, 1 + 4, "frame tag");
    const char tag = static_cast<char>(frame_[0]);
    SYNCTS_REQUIRE(tag == 'C' || tag == 'E',
                   std::string("unknown frame tag '") + tag + "'");
    std::uint32_t payload_len = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        payload_len |= static_cast<std::uint32_t>(frame_[1 + i]) << (8 * i);
    }
    SYNCTS_REQUIRE(payload_len <= kStreamFrameCap,
                   "hostile frame length " + std::to_string(payload_len));
    read_exact(in_, frame_, payload_len + common::kChecksumTrailerBytes,
               "frame payload");
    check_frame_trailer(frame_, tag == 'C' ? "chunk frame" : "end frame");

    const std::span<const std::uint8_t> payload{frame_.data() + 5,
                                                payload_len};
    std::size_t at = 0;
    if (tag == 'E') {
        const std::uint64_t total = read_varint(payload, at, "event total");
        SYNCTS_REQUIRE(at == payload.size(),
                       "trailing garbage in end frame");
        SYNCTS_REQUIRE(total == events_read_,
                       "end frame declares " + std::to_string(total) +
                           " events but " + std::to_string(events_read_) +
                           " were read");
        finished_ = true;
        return;
    }
    const std::uint64_t count = read_varint(payload, at, "record count");
    // Every record costs at least two payload bytes.
    SYNCTS_REQUIRE(count > 0 && count <= (payload.size() - at) / 2 + 1,
                   "hostile record count " + std::to_string(count));
    const std::uint64_t n = topology_.num_vertices();
    pending_.clear();
    pending_.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        SYNCTS_REQUIRE(at < payload.size(), "truncated record");
        const std::uint8_t kind = payload[at++];
        TraceRecord record;
        if (kind == static_cast<std::uint8_t>(TraceRecord::Kind::message)) {
            const std::uint64_t s = read_varint(payload, at, "sender");
            const std::uint64_t r = read_varint(payload, at, "receiver");
            SYNCTS_REQUIRE(s < n && r < n, "endpoint out of range");
            SYNCTS_REQUIRE(s != r, "self-message in stream");
            record.kind = TraceRecord::Kind::message;
            record.a = static_cast<ProcessId>(s);
            record.b = static_cast<ProcessId>(r);
        } else if (kind ==
                   static_cast<std::uint8_t>(TraceRecord::Kind::internal)) {
            const std::uint64_t p = read_varint(payload, at, "process");
            SYNCTS_REQUIRE(p < n, "process out of range");
            record.kind = TraceRecord::Kind::internal;
            record.a = static_cast<ProcessId>(p);
        } else {
            throw std::invalid_argument("unknown record kind " +
                                        std::to_string(kind));
        }
        pending_.push_back(record);
    }
    SYNCTS_REQUIRE(at == payload.size(),
                   "trailing garbage in chunk frame");
    pending_at_ = 0;
}

std::optional<TraceRecord> StreamingTraceReader::next() {
    while (pending_at_ >= pending_.size()) {
        if (finished_) return std::nullopt;
        pull_frame();
    }
    ++events_read_;
    return pending_[pending_at_++];
}

void write_binary_computation(std::ostream& out,
                              const SyncComputation& computation) {
    StreamingTraceWriter writer(out, computation.topology());
    // Same instant-order interleaving as the text writer: messages in id
    // order, each preceded by the internal events before it in its
    // endpoints' sequences.
    std::vector<std::size_t> cursor(computation.num_processes(), 0);
    const auto drain = [&](ProcessId p, MessageId until) {
        const auto events = computation.process_events(p);
        while (cursor[p] < events.size()) {
            const ProcessEvent& e = events[cursor[p]];
            if (e.kind == ProcessEvent::Kind::message) {
                SYNCTS_ENSURE(until != kNoMessage && e.index == until,
                              "trace serialization out of order");
                ++cursor[p];
                return;
            }
            writer.add_internal(p);
            ++cursor[p];
        }
        SYNCTS_ENSURE(until == kNoMessage, "message missing from sequence");
    };
    for (const SyncMessage& m : computation.messages()) {
        drain(m.sender, m.id);
        drain(m.receiver, m.id);
        writer.add_message(m.sender, m.receiver);
    }
    for (ProcessId p = 0; p < computation.num_processes(); ++p) {
        drain(p, kNoMessage);
    }
    writer.finish();
}

SyncComputation read_binary_computation(std::istream& in) {
    StreamingTraceReader reader(in);
    SyncComputation computation(reader.topology());
    while (const auto record = reader.next()) {
        if (record->kind == TraceRecord::Kind::message) {
            computation.add_message(record->a, record->b);
        } else {
            computation.add_internal(record->a);
        }
    }
    SYNCTS_REQUIRE(reader.finished(), "stream ended without end frame");
    return computation;
}

}  // namespace syncts
