#pragma once

#include <cstddef>

#include "poset/poset.hpp"
#include "trace/computation.hpp"

/// \file ground_truth.hpp
/// Reference computations of the paper's order relations, built directly
/// from the definition (transitive closure of the per-process ▷ edges).
/// Every clock algorithm in src/clocks is verified against these posets.

namespace syncts {

/// The poset (M, ↦) of Section 2 over the computation's messages:
/// m1 ↦ m2 iff some chain of same-process precedences connects them.
/// Elements are MessageIds. The transitive closure runs through
/// `analysis` (serial by default; see docs/PARALLELISM.md).
Poset message_poset(const SyncComputation& computation,
                    const AnalysisOptions& analysis = {});

/// Lamport happened-before over *all* events — messages (as single
/// rendezvous instants, per the vertical-arrow model with
/// acknowledgements) and internal events. Element ids: message m is
/// element m; internal event i is element num_messages() + i.
Poset event_poset(const SyncComputation& computation);

/// Element id of an internal event in event_poset numbering.
std::size_t internal_element(const SyncComputation& computation,
                             InternalId internal);

/// True when every pair of messages is comparable under ↦ — Lemma 1
/// guarantees this for all computations iff the topology is a star or a
/// triangle.
bool messages_totally_ordered(const Poset& message_order);

}  // namespace syncts
