#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "poset/poset.hpp"
#include "trace/async_computation.hpp"

/// \file ordering_classes.hpp
/// The message-ordering hierarchy of Charron-Bost, Mattern & Tel (the
/// paper's reference [1]): FIFO ⊇ causally ordered ⊇ RSC (realizable with
/// synchronous communication). The paper's algorithms apply exactly to the
/// RSC class; these classifiers place an arbitrary asynchronous execution
/// in the hierarchy, which is how one decides whether the synchronous
/// timestamps are applicable to a given trace at all.

namespace syncts {

struct OrderingClasses {
    /// Per ordered channel (p, q): receives happen in send order.
    bool fifo = false;
    /// For messages m, m' delivered to the same process: send(m) → send(m')
    /// implies m is received first.
    bool causally_ordered = false;
    /// Realizable with synchronous communication (vertical arrows).
    bool rsc = false;
};

/// Happened-before over all send/receive events of an async computation.
/// Element ids: process p's k-th recorded event has id offset(p) + k where
/// offset(p) = total events of processes 0..p-1.
Poset async_event_poset(const AsyncComputation& computation);

/// Classifies a complete computation. Guaranteed: rsc ⟹ causally_ordered
/// ⟹ fifo (the hierarchy theorem of [1]).
OrderingClasses classify_ordering(const AsyncComputation& computation);

/// Random *valid* asynchronous execution over `topology`: repeatedly
/// either send on a random channel or deliver a random in-flight message.
/// `delivery_bias` in [0,1]: probability of preferring delivery when both
/// moves are possible — 1.0 yields near-synchronous executions, small
/// values produce long in-flight queues and crowns.
AsyncComputation random_async_computation(const Graph& topology,
                                          std::size_t num_messages,
                                          double delivery_bias, Rng& rng);

}  // namespace syncts
