#include "trace/ordering_classes.hpp"

#include <vector>

#include "common/check.hpp"

namespace syncts {

namespace {

/// Per-event global ids and per-message endpoint event positions.
struct EventTable {
    std::vector<std::size_t> offset;         // per process
    std::vector<std::size_t> send_event;     // per message
    std::vector<std::size_t> receive_event;  // per message
    std::size_t total = 0;
};

EventTable build_index(const AsyncComputation& c) {
    EventTable index;
    index.offset.resize(c.num_processes());
    std::size_t running = 0;
    for (ProcessId p = 0; p < c.num_processes(); ++p) {
        index.offset[p] = running;
        running += c.process_events(p).size();
    }
    index.total = running;
    index.send_event.assign(c.num_messages(), 0);
    index.receive_event.assign(c.num_messages(), 0);
    for (ProcessId p = 0; p < c.num_processes(); ++p) {
        const auto events = c.process_events(p);
        for (std::size_t k = 0; k < events.size(); ++k) {
            const std::size_t id = index.offset[p] + k;
            if (events[k].kind == AsyncComputation::AsyncEvent::Kind::send) {
                index.send_event[events[k].message] = id;
            } else {
                index.receive_event[events[k].message] = id;
            }
        }
    }
    return index;
}

}  // namespace

Poset async_event_poset(const AsyncComputation& computation) {
    SYNCTS_REQUIRE(computation.complete(),
                   "every message needs both endpoints recorded");
    const EventTable index = build_index(computation);
    Poset poset(index.total);
    for (ProcessId p = 0; p < computation.num_processes(); ++p) {
        const std::size_t count = computation.process_events(p).size();
        for (std::size_t k = 0; k + 1 < count; ++k) {
            poset.add_relation(index.offset[p] + k, index.offset[p] + k + 1);
        }
    }
    for (MessageId m = 0; m < computation.num_messages(); ++m) {
        poset.add_relation(index.send_event[m], index.receive_event[m]);
    }
    poset.close();
    return poset;
}

OrderingClasses classify_ordering(const AsyncComputation& computation) {
    SYNCTS_REQUIRE(computation.complete(),
                   "every message needs both endpoints recorded");
    OrderingClasses result;

    // FIFO: along each process's receive sequence, messages from one
    // sender must appear in that sender's send order. Sends and receives
    // are compared via their per-process event positions.
    const EventTable index = build_index(computation);
    result.fifo = true;
    for (ProcessId receiver = 0; receiver < computation.num_processes();
         ++receiver) {
        // last_receive_pos[s] — send-event id of the latest message from s
        // received so far.
        std::vector<std::size_t> last_send_seen(computation.num_processes(),
                                                0);
        std::vector<char> any_seen(computation.num_processes(), 0);
        for (const auto& event : computation.process_events(receiver)) {
            if (event.kind != AsyncComputation::AsyncEvent::Kind::receive) {
                continue;
            }
            const ProcessId sender = computation.sender_of(event.message);
            const std::size_t send_id = index.send_event[event.message];
            if (any_seen[sender] && send_id < last_send_seen[sender]) {
                result.fifo = false;
            }
            any_seen[sender] = 1;
            last_send_seen[sender] = send_id;
        }
    }

    // Causal order: for messages m, m' to the same receiver with
    // send(m) → send(m'), receive(m) must precede receive(m').
    const Poset events = async_event_poset(computation);
    result.causally_ordered = true;
    for (MessageId a = 0; a < computation.num_messages(); ++a) {
        for (MessageId b = 0; b < computation.num_messages(); ++b) {
            if (a == b) continue;
            if (computation.receiver_of(a) != computation.receiver_of(b)) {
                continue;
            }
            if (events.less(index.send_event[a], index.send_event[b]) &&
                !events.less(index.receive_event[a],
                             index.receive_event[b])) {
                result.causally_ordered = false;
            }
        }
    }

    result.rsc = check_synchronous(computation).synchronous;

    // The hierarchy theorem of [1] is an invariant of the implementation.
    SYNCTS_ENSURE(!result.rsc || result.causally_ordered,
                  "RSC execution classified as not causally ordered");
    SYNCTS_ENSURE(!result.causally_ordered || result.fifo,
                  "causally ordered execution classified as non-FIFO");
    return result;
}

AsyncComputation random_async_computation(const Graph& topology,
                                          std::size_t num_messages,
                                          double delivery_bias, Rng& rng) {
    SYNCTS_REQUIRE(topology.num_edges() > 0, "need at least one channel");
    SYNCTS_REQUIRE(delivery_bias >= 0.0 && delivery_bias <= 1.0,
                   "delivery_bias must be in [0,1]");
    AsyncComputation computation(topology.num_vertices());
    std::vector<MessageId> in_flight;
    std::vector<ProcessId> destination;  // by message id (dense)
    std::size_t sent = 0;
    while (sent < num_messages || !in_flight.empty()) {
        const bool can_send = sent < num_messages;
        const bool can_deliver = !in_flight.empty();
        bool deliver = false;
        if (can_send && can_deliver) {
            deliver = rng.uniform01() < delivery_bias;
        } else {
            deliver = can_deliver;
        }
        if (deliver) {
            const std::size_t pick = rng.below(in_flight.size());
            const MessageId m = in_flight[pick];
            in_flight[pick] = in_flight.back();
            in_flight.pop_back();
            computation.record_receive(destination[m], m);
        } else {
            const Edge e = topology.edge(rng.below(topology.num_edges()));
            const bool forward = rng.chance(1, 2);
            const ProcessId from = forward ? e.u : e.v;
            const ProcessId to = forward ? e.v : e.u;
            const MessageId m = computation.new_message();
            computation.record_send(from, m);
            SYNCTS_ENSURE(m == destination.size(),
                          "message ids must be dense");
            destination.push_back(to);
            in_flight.push_back(m);
            ++sent;
        }
    }
    return computation;
}

}  // namespace syncts
