#pragma once

#include <iosfwd>
#include <string>

#include "trace/computation.hpp"

/// \file trace_io.hpp
/// Plain-text persistence for recorded computations, so a monitoring
/// deployment can record now and analyze later (the offline algorithm's
/// intended workflow). The format is line-oriented and versioned:
///
///   syncts-trace 1
///   processes <N>
///   edges <M>
///   e <u> <v>          # one per channel
///   events <K>
///   m <sender> <receiver>
///   i <process>
///
/// Events appear in a valid instant order; internal events keep their
/// position within their process's sequence (cross-process interleaving of
/// internal events carries no ordering information and is not preserved).

namespace syncts {

/// Serializes the computation (with its topology) to the text format.
std::string serialize_computation(const SyncComputation& computation);
void write_computation(std::ostream& out, const SyncComputation& computation);

/// Parses the text format. Throws std::invalid_argument on malformed
/// input (bad header, unknown record, dangling indices, wrong counts).
SyncComputation parse_computation(const std::string& text);
SyncComputation read_computation(std::istream& in);

}  // namespace syncts
