#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "trace/computation.hpp"

/// \file trace_io.hpp
/// Plain-text persistence for recorded computations, so a monitoring
/// deployment can record now and analyze later (the offline algorithm's
/// intended workflow). The format is line-oriented and versioned:
///
///   syncts-trace 1
///   processes <N>
///   edges <M>
///   e <u> <v>          # one per channel
///   events <K>
///   m <sender> <receiver>
///   i <process>
///
/// Events appear in a valid instant order; internal events keep their
/// position within their process's sequence (cross-process interleaving of
/// internal events carries no ordering information and is not preserved).

namespace syncts {

/// Serializes the computation (with its topology) to the text format.
std::string serialize_computation(const SyncComputation& computation);
void write_computation(std::ostream& out, const SyncComputation& computation);

/// Parses the text format. Throws std::invalid_argument on malformed
/// input (bad header, unknown record, dangling indices, wrong counts).
SyncComputation parse_computation(const std::string& text);
SyncComputation read_computation(std::istream& in);

// ---------------------------------------------------------------------------
// SYTR v2: the binary *streaming* computation-trace format
// (docs/FORMATS.md §"Binary computation traces"). Unlike the text format —
// which a reader must slurp whole — SYTR v2 is framed so a consumer can
// ingest events as they arrive from a file or pipe and validate each frame
// independently:
//
//   header frame: "SYTR" ver=2 | payload_len u32le |
//                 varint N, varint E, E × (varint u, varint v) | FNV trailer
//   chunk frame:  'C' | payload_len u32le | varint count, count × record |
//                 FNV trailer
//     record:     0x00 varint sender varint receiver   (message)
//                 0x01 varint process                  (internal event)
//   end frame:    'E' | payload_len u32le | varint total_events | FNV trailer
//
// Every trailer seals the bytes of its own frame (checksum.hpp), so a
// flipped bit or a mid-chunk truncation is caught at the frame where it
// happened, not at end of stream. payload_len is capped
// (kStreamFrameCap) so a hostile length field cannot drive allocation.

inline constexpr std::uint8_t kStreamTraceVersion = 2;
/// Upper bound on any SYTR v2 frame payload; larger lengths are hostile.
inline constexpr std::uint32_t kStreamFrameCap = 1u << 20;

/// One pulled event.
struct TraceRecord {
    enum class Kind : std::uint8_t { message = 0, internal = 1 };
    Kind kind = Kind::message;
    ProcessId a = 0;  ///< sender, or the process of an internal event
    ProcessId b = 0;  ///< receiver (messages only)
};

/// Incremental SYTR v2 writer. Records buffer into chunks of
/// `chunk_events`; finish() flushes the tail and seals the stream with
/// the end frame (required — a stream without it reads as truncated).
class StreamingTraceWriter {
public:
    StreamingTraceWriter(std::ostream& out, const Graph& topology,
                         std::size_t chunk_events = 512);

    void add_message(ProcessId sender, ProcessId receiver);
    void add_internal(ProcessId process);
    void finish();

    std::uint64_t events_written() const noexcept { return total_events_; }

private:
    void flush_chunk();

    std::ostream& out_;
    std::size_t num_processes_;
    std::size_t chunk_events_;
    std::vector<std::uint8_t> chunk_;  ///< record bytes, reused per chunk
    std::size_t chunk_count_ = 0;
    std::uint64_t total_events_ = 0;
    bool finished_ = false;
};

/// Pull-based SYTR v2 reader: the constructor consumes and validates the
/// header frame; next() returns one event at a time, pulling and
/// validating chunk frames lazily — suitable for ingesting a trace far
/// larger than memory from a file or pipe. Malformed input (bad magic,
/// checksum mismatch, truncation, hostile lengths, out-of-range
/// endpoints) throws std::invalid_argument.
class StreamingTraceReader {
public:
    explicit StreamingTraceReader(std::istream& in);

    const Graph& topology() const noexcept { return topology_; }

    /// Next event, or nullopt once the end frame was consumed (which
    /// also cross-checks the declared total against events_read()).
    std::optional<TraceRecord> next();

    std::uint64_t events_read() const noexcept { return events_read_; }
    bool finished() const noexcept { return finished_; }

private:
    void pull_frame();

    std::istream& in_;
    Graph topology_;
    std::vector<TraceRecord> pending_;  ///< decoded chunk, drained in order
    std::size_t pending_at_ = 0;
    std::vector<std::uint8_t> frame_;  ///< frame scratch, reused
    std::uint64_t events_read_ = 0;
    bool finished_ = false;
};

/// Whole-computation conveniences over the streaming halves.
void write_binary_computation(std::ostream& out,
                              const SyncComputation& computation);
SyncComputation read_binary_computation(std::istream& in);

}  // namespace syncts
