#include "trace/async_computation.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace syncts {

AsyncComputation::AsyncComputation(std::size_t num_processes)
    : events_(num_processes) {}

MessageId AsyncComputation::new_message() {
    const auto id = static_cast<MessageId>(endpoints_.size());
    endpoints_.push_back({});
    return id;
}

void AsyncComputation::record_send(ProcessId p, MessageId m) {
    SYNCTS_REQUIRE(p < events_.size(), "process out of range");
    SYNCTS_REQUIRE(m < endpoints_.size(), "unknown message");
    SYNCTS_REQUIRE(endpoints_[m].sender == kNoProcess,
                   "message already has a sender");
    SYNCTS_REQUIRE(endpoints_[m].receiver != p,
                   "sender and receiver must differ");
    endpoints_[m].sender = p;
    events_[p].push_back({AsyncEvent::Kind::send, m});
}

void AsyncComputation::record_receive(ProcessId p, MessageId m) {
    SYNCTS_REQUIRE(p < events_.size(), "process out of range");
    SYNCTS_REQUIRE(m < endpoints_.size(), "unknown message");
    SYNCTS_REQUIRE(endpoints_[m].receiver == kNoProcess,
                   "message already has a receiver");
    SYNCTS_REQUIRE(endpoints_[m].sender != p,
                   "sender and receiver must differ");
    endpoints_[m].receiver = p;
    events_[p].push_back({AsyncEvent::Kind::receive, m});
}

MessageId AsyncComputation::add_instant_message(ProcessId sender,
                                                ProcessId receiver) {
    const MessageId m = new_message();
    record_send(sender, m);
    record_receive(receiver, m);
    return m;
}

std::span<const AsyncComputation::AsyncEvent>
AsyncComputation::process_events(ProcessId p) const {
    SYNCTS_REQUIRE(p < events_.size(), "process out of range");
    return events_[p];
}

bool AsyncComputation::complete() const {
    return std::ranges::all_of(endpoints_, [](const Endpoints& e) {
        return e.sender != kNoProcess && e.receiver != kNoProcess;
    });
}

ProcessId AsyncComputation::sender_of(MessageId m) const {
    SYNCTS_REQUIRE(m < endpoints_.size(), "unknown message");
    return endpoints_[m].sender;
}

ProcessId AsyncComputation::receiver_of(MessageId m) const {
    SYNCTS_REQUIRE(m < endpoints_.size(), "unknown message");
    return endpoints_[m].receiver;
}

SynchronyResult check_synchronous(const AsyncComputation& computation) {
    SYNCTS_REQUIRE(computation.complete(),
                   "every message needs both endpoints recorded");
    const std::size_t m = computation.num_messages();

    // Contract each message to one node; per-process event adjacency gives
    // the "crown" digraph whose acyclicity characterizes synchrony.
    std::vector<std::vector<MessageId>> successors(m);
    std::vector<std::vector<MessageId>> predecessors(m);
    std::vector<std::size_t> indegree(m, 0);
    for (ProcessId p = 0; p < computation.num_processes(); ++p) {
        const auto events = computation.process_events(p);
        for (std::size_t i = 0; i + 1 < events.size(); ++i) {
            const MessageId a = events[i].message;
            const MessageId b = events[i + 1].message;
            successors[a].push_back(b);
            predecessors[b].push_back(a);
            ++indegree[b];
        }
    }

    SynchronyResult result;
    std::vector<MessageId> ready;
    for (MessageId v = 0; v < m; ++v) {
        if (indegree[v] == 0) ready.push_back(v);
    }
    // Smallest-id-first for a deterministic witness order.
    std::ranges::make_heap(ready, std::greater<>{});
    std::vector<std::size_t> remaining_indegree = indegree;
    while (!ready.empty()) {
        std::ranges::pop_heap(ready, std::greater<>{});
        const MessageId v = ready.back();
        ready.pop_back();
        result.instant_order.push_back(v);
        for (const MessageId w : successors[v]) {
            if (--remaining_indegree[w] == 0) {
                ready.push_back(w);
                std::ranges::push_heap(ready, std::greater<>{});
            }
        }
    }

    if (result.instant_order.size() == m) {
        result.synchronous = true;
        result.integer_timestamps.assign(m, 0);
        for (std::size_t rank = 0; rank < m; ++rank) {
            result.integer_timestamps[result.instant_order[rank]] = rank + 1;
        }
        return result;
    }

    // Extract a witness cycle. Every leftover node keeps remaining
    // indegree > 0, i.e. it has at least one leftover predecessor, so a
    // backward walk over leftover nodes can never dead-end and must
    // revisit a node — the revisited suffix is a cycle (reversed).
    std::vector<char> leftover(m, 1);
    for (const MessageId v : result.instant_order) leftover[v] = 0;
    MessageId start = 0;
    while (!leftover[start]) ++start;
    std::vector<MessageId> path;
    std::vector<std::size_t> position_in_path(m, m);
    MessageId current = start;
    while (position_in_path[current] == m) {
        position_in_path[current] = path.size();
        path.push_back(current);
        for (const MessageId w : predecessors[current]) {
            if (leftover[w]) {
                current = w;
                break;
            }
        }
    }
    result.violation_cycle.assign(path.begin() + static_cast<std::ptrdiff_t>(
                                                     position_in_path[current]),
                                  path.end());
    std::ranges::reverse(result.violation_cycle);
    return result;
}

namespace {

SyncComputation build_sync(const AsyncComputation& computation,
                           Graph topology) {
    const SynchronyResult check = check_synchronous(computation);
    SYNCTS_REQUIRE(check.synchronous,
                   "computation is not realizable with synchronous "
                   "communication");
    SyncComputation sync(std::move(topology));
    for (const MessageId m : check.instant_order) {
        sync.add_message(computation.sender_of(m), computation.receiver_of(m));
    }
    return sync;
}

}  // namespace

SyncComputation to_sync_computation(const AsyncComputation& computation,
                                    Graph topology) {
    return build_sync(computation, std::move(topology));
}

SyncComputation to_sync_computation(const AsyncComputation& computation) {
    Graph topology(computation.num_processes());
    for (MessageId m = 0; m < computation.num_messages(); ++m) {
        const ProcessId s = computation.sender_of(m);
        const ProcessId r = computation.receiver_of(m);
        if (!topology.has_edge(s, r)) topology.add_edge(s, r);
    }
    return build_sync(computation, std::move(topology));
}

}  // namespace syncts
