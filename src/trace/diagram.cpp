#include "trace/diagram.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace syncts {

namespace {

struct Column {
    bool is_message = false;
    MessageId message = 0;
    ProcessId internal_process = 0;
};

/// A valid instant order: each message preceded by the internal events
/// before it in its endpoints' sequences (same walk as trace_io).
std::vector<Column> build_columns(const SyncComputation& computation) {
    std::vector<Column> columns;
    std::vector<std::size_t> cursor(computation.num_processes(), 0);
    const auto drain = [&](ProcessId p, MessageId until) {
        const auto events = computation.process_events(p);
        while (cursor[p] < events.size()) {
            const ProcessEvent& e = events[cursor[p]];
            if (e.kind == ProcessEvent::Kind::message) {
                SYNCTS_ENSURE(until != kNoMessage && e.index == until,
                              "diagram walk out of order");
                ++cursor[p];
                return;
            }
            columns.push_back({false, 0, p});
            ++cursor[p];
        }
        SYNCTS_ENSURE(until == kNoMessage, "message missing from sequence");
    };
    for (const SyncMessage& m : computation.messages()) {
        drain(m.sender, m.id);
        drain(m.receiver, m.id);
        columns.push_back({true, m.id, 0});
    }
    for (ProcessId p = 0; p < computation.num_processes(); ++p) {
        drain(p, kNoMessage);
    }
    return columns;
}

}  // namespace

std::string to_diagram(const SyncComputation& computation) {
    return to_diagram(computation, {});
}

std::string to_diagram(const SyncComputation& computation,
                       std::span<const VectorTimestamp> message_stamps) {
    SYNCTS_REQUIRE(
        message_stamps.empty() ||
            message_stamps.size() == computation.num_messages(),
        "need zero or one timestamp per message");
    const std::vector<Column> columns = build_columns(computation);

    // Cell width fits the widest label.
    std::size_t label_width = 1;
    for (const Column& column : columns) {
        if (column.is_message) {
            label_width = std::max(
                label_width,
                1 + std::to_string(column.message + 1).size());
        }
    }
    const auto pad = [&](std::string text) {
        while (text.size() < label_width + 1) text.push_back(' ');
        return text;
    };

    std::ostringstream os;
    const std::size_t name_width =
        2 + std::to_string(computation.num_processes()).size();
    for (ProcessId p = 0; p < computation.num_processes(); ++p) {
        std::string name = "P";
        name += std::to_string(p + 1);
        while (name.size() < name_width) name.push_back(' ');
        os << name << "| ";
        for (const Column& column : columns) {
            if (column.is_message) {
                const SyncMessage& m = computation.message(column.message);
                std::string label = ".";
                if (m.involves(p)) {
                    label = "m";
                    label += std::to_string(column.message + 1);
                }
                os << pad(std::move(label));
            } else {
                os << pad(column.internal_process == p ? "i" : ".");
            }
        }
        os << '\n';
    }
    if (!message_stamps.empty()) {
        os << '\n';
        for (MessageId m = 0; m < computation.num_messages(); ++m) {
            os << 'm' << (m + 1) << " = "
               << message_stamps[m].to_string() << '\n';
        }
    }
    return os.str();
}

}  // namespace syncts
