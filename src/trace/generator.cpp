#include "trace/generator.hpp"

#include "common/check.hpp"
#include "graph/generators.hpp"

namespace syncts {

SyncComputation random_computation(const Graph& topology,
                                   const WorkloadOptions& options, Rng& rng) {
    SYNCTS_REQUIRE(topology.num_edges() > 0,
                   "cannot generate messages without channels");
    SyncComputation computation(topology);
    const std::size_t n = topology.num_vertices();
    // Internal events are interleaved as a Bernoulli stream so that the
    // expected rate per message matches options.internal_rate.
    const auto maybe_internal = [&] {
        if (options.internal_rate <= 0.0) return;
        while (rng.uniform01() <
               options.internal_rate / (1.0 + options.internal_rate)) {
            computation.add_internal(
                static_cast<ProcessId>(rng.below(n)));
        }
    };
    for (std::size_t i = 0; i < options.num_messages; ++i) {
        maybe_internal();
        Edge e{};
        if (options.edge_uniform) {
            e = topology.edge(rng.below(topology.num_edges()));
        } else {
            ProcessId p = 0;
            do {
                p = static_cast<ProcessId>(rng.below(n));
            } while (topology.degree(p) == 0);
            const auto nbrs = topology.neighbors(p);
            e = Edge::make(p, nbrs[rng.below(nbrs.size())]);
        }
        // Direction is symmetric for the ↦ relation; flip a fair coin so
        // both directions are exercised by the clock algorithms.
        if (rng.chance(1, 2)) {
            computation.add_message(e.u, e.v);
        } else {
            computation.add_message(e.v, e.u);
        }
    }
    maybe_internal();
    return computation;
}

SyncComputation paper_fig1_computation() {
    // Path topology P1-P2-P3-P4 (0-based: 0-1-2-3).
    Graph topology(4);
    topology.add_edge(0, 1);
    topology.add_edge(1, 2);
    topology.add_edge(2, 3);
    SyncComputation c(std::move(topology));
    c.add_message(0, 1);  // m1: P1 -> P2
    c.add_message(2, 3);  // m2: P3 -> P4
    c.add_message(1, 2);  // m3: P2 -> P3
    c.add_message(1, 2);  // m4: P2 -> P3
    c.add_message(2, 3);  // m5: P3 -> P4
    c.add_message(1, 2);  // m6: P2 -> P3
    return c;
}

Graph paper_fig6_topology() { return topology::complete(5); }

SyncComputation paper_fig6_computation() {
    SyncComputation c(paper_fig6_topology());
    c.add_message(0, 1);  // m1: P1 -> P2   (group E1, star at P1)
    c.add_message(2, 3);  // m2: P3 -> P4   (group E3, triangle P3P4P5)
    c.add_message(1, 2);  // m3: P2 -> P3   (group E2) -> stamped (1,1,1)
    c.add_message(3, 4);  // m4: P4 -> P5   (group E3)
    c.add_message(0, 3);  // m5: P1 -> P4   (group E1)
    return c;
}

}  // namespace syncts
