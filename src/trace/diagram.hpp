#pragma once

#include <span>
#include <string>

#include "clocks/vector_timestamp.hpp"
#include "trace/computation.hpp"

/// \file diagram.hpp
/// ASCII space-time diagrams in the paper's vertical-arrow style (Figs. 1
/// and 6): one row per process, one column per instant. A message occupies
/// its two participants' cells in one column — the arrows are vertical
/// because synchronous messages are logically instantaneous. Internal
/// events render as "i". This is the visualization primitive the paper's
/// introduction motivates (POET/XPVM-style debugging).
///
///     P1 |  m1   .    .   m4
///     P2 |  m1   m2   i   m4
///     P3 |  .    m2   .   .

namespace syncts {

/// Renders the computation. Messages are labeled m1, m2, ... (1-based,
/// like the paper); columns are instants.
std::string to_diagram(const SyncComputation& computation);

/// Same, with a legend line per message showing its timestamp.
std::string to_diagram(const SyncComputation& computation,
                       std::span<const VectorTimestamp> message_stamps);

}  // namespace syncts
