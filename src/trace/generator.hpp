#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "trace/computation.hpp"

/// \file generator.hpp
/// Workload generators: random synchronous computations over a topology,
/// plus verbatim reconstructions of the computations the paper walks
/// through (Fig. 1 and Fig. 6).

namespace syncts {

struct WorkloadOptions {
    /// Number of messages to generate.
    std::size_t num_messages = 100;

    /// Expected internal events per message instant (0 disables them; the
    /// Section 5 experiments use > 0).
    double internal_rate = 0.0;

    /// When set, message endpoints are drawn edge-uniformly; otherwise a
    /// random process is drawn first and then a random neighbor, which
    /// biases traffic toward low-degree processes' edges (a client-server
    /// pattern where every client is equally chatty).
    bool edge_uniform = true;
};

/// Random synchronous computation over `topology` (must have ≥ 1 edge).
SyncComputation random_computation(const Graph& topology,
                                   const WorkloadOptions& options, Rng& rng);

/// The computation of the paper's Fig. 1 (4 processes on a path topology,
/// messages m1..m6). The figure image is not part of the provided text;
/// this reconstruction satisfies every fact the paper states about it:
/// m1 ‖ m2, m1 ▷ m3, m2 ↦ m6, m3 ↦ m5, and a synchronous chain of size 4
/// from m1 to m5.
SyncComputation paper_fig1_computation();

/// The computation of the paper's Fig. 6 (fully-connected 5-process
/// system). Reconstruction consistent with the text: with the K5
/// decomposition into stars E1@P1, E2@P2 and triangle E3 = (P3,P4,P5), the
/// message from P2 to P3 is the third instant and is timestamped (1,1,1)
/// from local vectors (1,0,0) at P2 and (0,0,1) at P3; the message poset
/// has width 2, so the offline algorithm needs 2-dimensional vectors.
SyncComputation paper_fig6_computation();

/// The K5 decomposition the paper uses in Fig. 6 must order groups as
/// E1 = star at P1, E2 = star at P2, E3 = triangle(P3,P4,P5); this helper
/// returns that exact group ordering for the bench output.
Graph paper_fig6_topology();

}  // namespace syncts
