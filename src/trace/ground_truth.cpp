#include "trace/ground_truth.hpp"

namespace syncts {

Poset message_poset(const SyncComputation& computation,
                    const AnalysisOptions& analysis) {
    Poset poset(computation.num_messages());
    // Consecutive participations within one process generate ▷; its
    // transitive closure is ↦. Non-consecutive same-process pairs follow
    // transitively, so consecutive edges suffice.
    for (ProcessId p = 0; p < computation.num_processes(); ++p) {
        const auto msgs = computation.process_messages(p);
        for (std::size_t i = 0; i + 1 < msgs.size(); ++i) {
            poset.add_relation(msgs[i], msgs[i + 1]);
        }
    }
    poset.close(analysis);
    return poset;
}

Poset event_poset(const SyncComputation& computation) {
    const std::size_t message_count = computation.num_messages();
    Poset poset(message_count + computation.num_internal_events());
    const auto element_of = [&](const ProcessEvent& e) {
        return e.kind == ProcessEvent::Kind::message
                   ? static_cast<std::size_t>(e.index)
                   : message_count + e.index;
    };
    for (ProcessId p = 0; p < computation.num_processes(); ++p) {
        const auto events = computation.process_events(p);
        for (std::size_t i = 0; i + 1 < events.size(); ++i) {
            poset.add_relation(element_of(events[i]),
                               element_of(events[i + 1]));
        }
    }
    poset.close();
    return poset;
}

std::size_t internal_element(const SyncComputation& computation,
                             InternalId internal) {
    return computation.num_messages() + internal;
}

bool messages_totally_ordered(const Poset& message_order) {
    for (std::size_t a = 0; a < message_order.size(); ++a) {
        for (std::size_t b = a + 1; b < message_order.size(); ++b) {
            if (message_order.incomparable(a, b)) return false;
        }
    }
    return true;
}

}  // namespace syncts
