#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "common/checksum.hpp"
#include "common/ids.hpp"
#include "common/region.hpp"

/// \file wire.hpp
/// Wire format for piggybacked timestamps.
///
/// The paper's O(d) message overhead is realized concretely here: a
/// timestamp is serialized as LEB128 varints (width first, then each
/// component), so small fresh clocks cost d+1 bytes and long-running
/// systems pay only for the magnitude their counters actually reached.
/// This is what a production transport would append to every message and
/// acknowledgement.
///
/// Because production transports lose and corrupt bytes, the rendezvous
/// protocol does not ship bare timestamps: it ships *frames* — sequence
/// number + message id + timestamp, trailed by an FNV-1a 64 checksum.
/// Decoders validate length, checksum, and the expected decomposition
/// width d *before* allocating components, and report failures with a
/// typed WireError so callers can count and recover (retransmission)
/// instead of propagating garbage into timestamps.

namespace syncts {

/// Malformed wire input. Derives from std::invalid_argument so existing
/// "parsers throw invalid_argument on bad input" contracts still hold,
/// but carries a machine-readable kind for recovery and statistics.
class WireError : public std::invalid_argument {
public:
    enum class Kind {
        truncated,            ///< input ended mid-value
        overlong_varint,      ///< varint encodes more than 64 bits
        checksum_mismatch,    ///< frame trailer does not match the payload
        width_mismatch,       ///< timestamp width differs from expected d
        length_mismatch,      ///< declared width exceeds remaining bytes
        trailing_bytes,       ///< undecoded bytes after the value
        unsupported_version,  ///< versioned frame from a future format
    };

    WireError(Kind kind, const std::string& what)
        : std::invalid_argument(what), kind_(kind) {}

    Kind kind() const noexcept { return kind_; }

private:
    Kind kind_;
};

/// Appends the LEB128 encoding of `value` to `out`.
void encode_varint(std::uint64_t value, std::vector<std::uint8_t>& out);

/// Decodes one varint starting at out[offset]; advances offset. Throws
/// WireError on truncated or over-long (> 10 byte) input.
std::uint64_t decode_varint(std::span<const std::uint8_t> bytes,
                            std::size_t& offset);

/// Serializes width + components.
std::vector<std::uint8_t> encode_timestamp(const VectorTimestamp& stamp);

/// Span form: replaces the contents of `out` (capacity is reused, so a
/// caller-kept buffer makes the steady state allocation-free).
void encode_timestamp_into(std::span<const std::uint64_t> components,
                           std::vector<std::uint8_t>& out);

/// Inverse of encode_timestamp. Throws WireError on malformed input or
/// trailing bytes.
VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes);

/// As decode_timestamp, but additionally rejects (WireError::Kind::
/// width_mismatch) any payload whose declared width differs from
/// `expected_width` — checked against the decomposition size d *before*
/// any component is decoded or allocated, so a corrupted or hostile
/// length prefix cannot trigger large allocations or short vectors.
VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes,
                                 std::size_t expected_width);

/// Span form of the width-checked decode: writes the components into
/// `out` (whose size is the expected width d). Nothing is allocated.
void decode_timestamp_into(std::span<const std::uint8_t> bytes,
                           std::span<std::uint64_t> out);

/// Exact encoded size without materializing the bytes.
std::size_t encoded_size(const VectorTimestamp& stamp);
std::size_t encoded_size(std::span<const std::uint64_t> components);

/// FNV-1a 64-bit hash of `bytes` — the frame checksum. The one shared
/// implementation lives in common/checksum.hpp; this alias keeps the
/// historical call sites (and the wire-format documentation anchor).
inline std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
    return common::fnv1a64(bytes);
}

/// One rendezvous-protocol frame: the body of a REQ or ACK packet.
struct SyncFrame {
    std::uint64_t sequence = 0;  ///< per-directed-channel sequence number
    std::uint64_t message = 0;   ///< script MessageId (cross-check only)
    VectorTimestamp stamp;       ///< piggybacked clock vector

    friend bool operator==(const SyncFrame&, const SyncFrame&) = default;
};

/// Layout: varint sequence, varint message, encoded timestamp, then an
/// 8-byte little-endian FNV-1a 64 checksum of everything before it.
///
/// Deprecated: allocates a fresh vector per frame. Hot paths (and new
/// code) use encode_frame_into with a reusable scratch buffer instead.
[[deprecated("use encode_frame_into with a reusable scratch buffer")]]
std::vector<std::uint8_t> encode_frame(const SyncFrame& frame);

/// Span form: frames `stamp` (an arena row or clock span) with the given
/// header, replacing the contents of `out`. Capacity is reused — the
/// synchronizer's per-packet steady state allocates nothing.
void encode_frame_into(std::uint64_t sequence, std::uint64_t message,
                       std::span<const std::uint64_t> stamp,
                       std::vector<std::uint8_t>& out);

/// Inverse of encode_frame; validates length, checksum, and that the
/// timestamp width equals `expected_width`. Throws WireError.
SyncFrame decode_frame(std::span<const std::uint8_t> bytes,
                       std::size_t expected_width);

/// Frame header fields, decoupled from timestamp storage. `epoch` is 0
/// for version-1 frames (the format predates topology epochs; see
/// docs/FORMATS.md and docs/TOPOLOGY.md for the version matrix).
struct FrameHeader {
    std::uint64_t sequence = 0;
    std::uint64_t message = 0;
    EpochId epoch = 0;
};

/// Span form of decode_frame: validates as decode_frame with
/// expected_width = stamp_out.size(), writes the components into
/// `stamp_out`, and returns the header. Nothing is allocated.
FrameHeader decode_frame_into(std::span<const std::uint8_t> bytes,
                              std::span<std::uint64_t> stamp_out);

/// Version escape for epoch-tagged frames (format version 2). A v1 frame
/// begins with the varint sequence number and the rendezvous protocol
/// numbers sequences from 1, so a leading 0x00 byte is unambiguous: v2
/// frames are `0x00, varint version, varint epoch` followed by the v1
/// body (varint sequence, varint message, encoded timestamp) and the same
/// 8-byte FNV-1a trailer over everything before it.
inline constexpr std::uint8_t kEpochFrameMarker = 0x00;

/// Current versioned frame format.
inline constexpr std::uint64_t kEpochFrameVersion = 2;

/// Epoch-aware frame writer. Epoch 0 emits the version-1 layout
/// bit-identically (the back-compat rule: pre-epoch peers read epoch-0
/// traffic unchanged); any later epoch emits a v2 frame. `sequence` must
/// be >= 1 — that is what keeps the two layouts distinguishable.
void encode_epoch_frame_into(EpochId epoch, std::uint64_t sequence,
                             std::uint64_t message,
                             std::span<const std::uint64_t> stamp,
                             std::vector<std::uint8_t>& out);

/// Epoch-aware frame reader: accepts v2 frames and plain v1 frames, the
/// latter reported as epoch 0. Validates checksum, version, and width as
/// decode_frame_into. Nothing is allocated.
FrameHeader decode_epoch_frame_into(std::span<const std::uint8_t> bytes,
                                    std::span<std::uint64_t> stamp_out);

/// Header-only reader: validates the checksum and the version escape and
/// returns the header without decoding the timestamp components, so a
/// receiver can classify a frame from *another* epoch (whose width it no
/// longer knows) before deciding to reject it. The timestamp bytes are
/// checksum-covered but otherwise unexamined. Throws WireError on
/// corruption or unsupported versions (v1 and v2 only — delta v3 needs
/// peek_frame_info, and batch containers are not frames: use
/// BatchReader). The runtime's replay/parking paths rely on this
/// strictness: everything they store is a canonical full frame
/// (docs/PROTOCOL.md), so a v3 reaching this reader is a logic error.
FrameHeader peek_epoch_frame_header(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Delta-encoded frames (format version 3)
//
// A channel that already delivered a frame knows the peer's previous
// stamp, so the next frame need only carry the components that moved —
// the Vaidya–Kulkarni observation applied to the rendezvous protocol.
// Layout: `0x00, varint 3, varint epoch, varint sequence, varint
// message, varint count, count x (varint index, varint increment)`, same
// 8-byte FNV-1a trailer. Unlike v2, epoch 0 is legal here (the 0x00
// marker already disambiguates from v1). `increment` is the component's
// growth over the shadow base — clock components are monotonic on a
// channel, so increments are small and the encoder refuses (returns
// false) if any component moved backwards, forcing a full-frame resync.

/// Delta frame format version.
inline constexpr std::uint64_t kDeltaFrameVersion = 3;

/// Batch container format version (see BatchFrame below).
inline constexpr std::uint64_t kBatchFrameVersion = 4;

/// Encodes `stamp` as a delta against `base` (the channel's last-sent
/// shadow). Returns false — leaving `out` cleared — when the widths
/// differ or some component of `stamp` is below `base` (non-monotone:
/// the caller must send a full frame and resync the shadow). `sequence`
/// must be >= 1, as for every versioned frame.
bool encode_delta_frame_into(EpochId epoch, std::uint64_t sequence,
                             std::uint64_t message,
                             std::span<const std::uint64_t> base,
                             std::span<const std::uint64_t> stamp,
                             std::vector<std::uint8_t>& out);

/// Decodes a v3 delta frame against `base` (the receiver's shadow of the
/// channel): `stamp_out` = `base` with the carried increments applied.
/// `base` and `stamp_out` must both be the decomposition width and may
/// alias. Validates checksum, version, strictly-increasing in-range
/// indices, and count <= width. Throws WireError; rejects v1/v2 frames
/// with WireError::Kind::unsupported_version (callers route on
/// peek_frame_info first).
FrameHeader decode_delta_frame_into(std::span<const std::uint8_t> bytes,
                                    std::span<const std::uint64_t> base,
                                    std::span<std::uint64_t> stamp_out);

/// What a checksum-valid frame is, before committing to a decode path.
struct FrameInfo {
    FrameHeader header;
    std::uint64_t version = 1;  ///< 1, 2, or kDeltaFrameVersion
    bool delta = false;         ///< version == kDeltaFrameVersion
};

/// Classifying peek over v1/v2/v3 frames: validates the checksum and
/// header fields only (component/increment bytes are checksum-covered
/// but undecoded). The extended receive path calls this first to decide
/// between decode_epoch_frame_into and decode_delta_frame_into. Batch
/// containers (v4) are rejected with unsupported_version — they travel
/// under their own packet kind and BatchReader.
FrameInfo peek_frame_info(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Batch containers (format version 4)
//
// One network packet carrying several complete frames — the container
// the ACK coalescer and the bandwidth scheduler flush. Layout: `0x00,
// varint 4, varint count, count x (varint kind, varint tag, varint
// length, length bytes)`, 8-byte FNV-1a trailer over everything before
// it. Every entry body is itself a complete checksummed frame, so a
// flipped bit inside one entry spoils only that entry: the streaming
// reader keeps yielding the rest and the per-entry decode rejects the
// damaged one (corruption of a length prefix abandons the remainder of
// the container — retransmission recovers, exactly as for a lost
// packet).

/// Scatter-gather builder for batch containers. Entry bodies are copied
/// into SlabPool-backed scratch at add() time (heap-backed when no pool
/// is given), so the steady state of a pool-fed builder performs no
/// allocations: the entry table and scratch slab are reused across
/// clear() cycles. Also serves as the synchronizer's per-destination TX
/// queue — supersede() implements cumulative-ACK coalescing by retiring
/// a queued entry that a newer one subsumes.
class BatchFrame {
public:
    /// `pool`, when given, must outlive the builder.
    explicit BatchFrame(SlabPool* pool = nullptr) noexcept : pool_(pool) {}
    ~BatchFrame();

    BatchFrame(const BatchFrame&) = delete;
    BatchFrame& operator=(const BatchFrame&) = delete;
    BatchFrame(BatchFrame&&) = default;
    BatchFrame& operator=(BatchFrame&&) = default;

    /// Live (non-superseded) entries.
    std::size_t size() const noexcept { return live_; }
    bool empty() const noexcept { return live_ == 0; }

    /// Body bytes queued across live entries (bandwidth accounting).
    std::size_t pending_bytes() const noexcept { return pending_bytes_; }

    /// Drops every entry; scratch and table storage are kept for reuse.
    void clear() noexcept;

    /// Appends an entry (kind/tag mirror Packet::kind/Packet::tag).
    void add(std::uint64_t kind, std::uint64_t tag,
             std::span<const std::uint8_t> body);

    /// Retires the most recent live entry with this kind and tag (the
    /// cumulative-ACK rule: a newer ACK on a channel subsumes the queued
    /// one). Returns whether an entry was retired.
    bool supersede(std::uint64_t kind, std::uint64_t tag) noexcept;

    /// One queued entry, in arrival order over live entries. The span
    /// points into the builder's scratch — valid until clear()/add().
    struct Entry {
        std::uint64_t kind = 0;
        std::uint64_t tag = 0;
        std::span<const std::uint8_t> body;
    };

    /// The oldest live entry — the single-entry fast path reads it back
    /// and sends the bare frame so a lone frame never pays container
    /// overhead (and stays decodable by v1/v2-only peers). Requires
    /// !empty().
    Entry front() const;

    /// Encodes the live entries, in order, as one v4 container
    /// (replacing the contents of `out`). Requires !empty().
    void encode_batch_into(std::vector<std::uint8_t>& out) const;

private:
    struct Slot {
        std::uint64_t kind = 0;
        std::uint64_t tag = 0;
        std::size_t offset = 0;
        std::size_t length = 0;
        bool live = false;
    };

    std::uint8_t* scratch() noexcept;
    const std::uint8_t* scratch() const noexcept;
    void reserve_scratch(std::size_t bytes);

    SlabPool* pool_ = nullptr;
    Slab slab_;                         ///< pool-backed scratch
    std::vector<std::uint8_t> heap_;    ///< heap scratch when pool_ == nullptr
    std::size_t used_ = 0;              ///< scratch bytes written
    std::vector<Slot> slots_;
    std::size_t live_ = 0;
    std::size_t pending_bytes_ = 0;
};

/// Streaming decoder over a v4 batch container. The constructor
/// validates the marker and version; next() then yields entries in order
/// without allocating. The outer checksum is *advisory* (reported by
/// intact()): entry bodies carry their own frame checksums, so a flipped
/// bit inside one entry spoils only that entry. A structural break
/// mid-entry (truncated varint, length past the end) throws WireError —
/// entries already yielded stand, the remainder of the container is
/// lost.
class BatchReader {
public:
    /// Throws WireError unless `bytes` is structurally a v4 container
    /// (long enough, marker + version valid, count decodable).
    explicit BatchReader(std::span<const std::uint8_t> bytes);

    /// Whether the outer checksum matched. False means at least one byte
    /// of the container was damaged in flight — per-entry decodes decide
    /// which entries survive.
    bool intact() const noexcept { return intact_; }

    /// Entries the container header declares (next() additionally stops
    /// at the end of the payload, so a hostile count cannot loop).
    std::uint64_t declared_count() const noexcept { return declared_; }

    /// Yields the next entry; false when exhausted. The body span points
    /// into the caller's buffer. Throws WireError on structural breaks.
    bool next(BatchFrame::Entry& out);

private:
    std::span<const std::uint8_t> payload_;
    std::size_t offset_ = 0;
    std::uint64_t declared_ = 0;
    std::uint64_t yielded_ = 0;
    bool intact_ = false;
};

}  // namespace syncts
