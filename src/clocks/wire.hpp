#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "common/ids.hpp"

/// \file wire.hpp
/// Wire format for piggybacked timestamps.
///
/// The paper's O(d) message overhead is realized concretely here: a
/// timestamp is serialized as LEB128 varints (width first, then each
/// component), so small fresh clocks cost d+1 bytes and long-running
/// systems pay only for the magnitude their counters actually reached.
/// This is what a production transport would append to every message and
/// acknowledgement.
///
/// Because production transports lose and corrupt bytes, the rendezvous
/// protocol does not ship bare timestamps: it ships *frames* — sequence
/// number + message id + timestamp, trailed by an FNV-1a 64 checksum.
/// Decoders validate length, checksum, and the expected decomposition
/// width d *before* allocating components, and report failures with a
/// typed WireError so callers can count and recover (retransmission)
/// instead of propagating garbage into timestamps.

namespace syncts {

/// Malformed wire input. Derives from std::invalid_argument so existing
/// "parsers throw invalid_argument on bad input" contracts still hold,
/// but carries a machine-readable kind for recovery and statistics.
class WireError : public std::invalid_argument {
public:
    enum class Kind {
        truncated,            ///< input ended mid-value
        overlong_varint,      ///< varint encodes more than 64 bits
        checksum_mismatch,    ///< frame trailer does not match the payload
        width_mismatch,       ///< timestamp width differs from expected d
        length_mismatch,      ///< declared width exceeds remaining bytes
        trailing_bytes,       ///< undecoded bytes after the value
        unsupported_version,  ///< versioned frame from a future format
    };

    WireError(Kind kind, const std::string& what)
        : std::invalid_argument(what), kind_(kind) {}

    Kind kind() const noexcept { return kind_; }

private:
    Kind kind_;
};

/// Appends the LEB128 encoding of `value` to `out`.
void encode_varint(std::uint64_t value, std::vector<std::uint8_t>& out);

/// Decodes one varint starting at out[offset]; advances offset. Throws
/// WireError on truncated or over-long (> 10 byte) input.
std::uint64_t decode_varint(std::span<const std::uint8_t> bytes,
                            std::size_t& offset);

/// Serializes width + components.
std::vector<std::uint8_t> encode_timestamp(const VectorTimestamp& stamp);

/// Span form: replaces the contents of `out` (capacity is reused, so a
/// caller-kept buffer makes the steady state allocation-free).
void encode_timestamp_into(std::span<const std::uint64_t> components,
                           std::vector<std::uint8_t>& out);

/// Inverse of encode_timestamp. Throws WireError on malformed input or
/// trailing bytes.
VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes);

/// As decode_timestamp, but additionally rejects (WireError::Kind::
/// width_mismatch) any payload whose declared width differs from
/// `expected_width` — checked against the decomposition size d *before*
/// any component is decoded or allocated, so a corrupted or hostile
/// length prefix cannot trigger large allocations or short vectors.
VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes,
                                 std::size_t expected_width);

/// Span form of the width-checked decode: writes the components into
/// `out` (whose size is the expected width d). Nothing is allocated.
void decode_timestamp_into(std::span<const std::uint8_t> bytes,
                           std::span<std::uint64_t> out);

/// Exact encoded size without materializing the bytes.
std::size_t encoded_size(const VectorTimestamp& stamp);
std::size_t encoded_size(std::span<const std::uint64_t> components);

/// FNV-1a 64-bit hash of `bytes` — the frame checksum.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept;

/// One rendezvous-protocol frame: the body of a REQ or ACK packet.
struct SyncFrame {
    std::uint64_t sequence = 0;  ///< per-directed-channel sequence number
    std::uint64_t message = 0;   ///< script MessageId (cross-check only)
    VectorTimestamp stamp;       ///< piggybacked clock vector

    friend bool operator==(const SyncFrame&, const SyncFrame&) = default;
};

/// Layout: varint sequence, varint message, encoded timestamp, then an
/// 8-byte little-endian FNV-1a 64 checksum of everything before it.
std::vector<std::uint8_t> encode_frame(const SyncFrame& frame);

/// Span form: frames `stamp` (an arena row or clock span) with the given
/// header, replacing the contents of `out`. Capacity is reused — the
/// synchronizer's per-packet steady state allocates nothing.
void encode_frame_into(std::uint64_t sequence, std::uint64_t message,
                       std::span<const std::uint64_t> stamp,
                       std::vector<std::uint8_t>& out);

/// Inverse of encode_frame; validates length, checksum, and that the
/// timestamp width equals `expected_width`. Throws WireError.
SyncFrame decode_frame(std::span<const std::uint8_t> bytes,
                       std::size_t expected_width);

/// Frame header fields, decoupled from timestamp storage. `epoch` is 0
/// for version-1 frames (the format predates topology epochs; see
/// docs/FORMATS.md and docs/TOPOLOGY.md for the version matrix).
struct FrameHeader {
    std::uint64_t sequence = 0;
    std::uint64_t message = 0;
    EpochId epoch = 0;
};

/// Span form of decode_frame: validates as decode_frame with
/// expected_width = stamp_out.size(), writes the components into
/// `stamp_out`, and returns the header. Nothing is allocated.
FrameHeader decode_frame_into(std::span<const std::uint8_t> bytes,
                              std::span<std::uint64_t> stamp_out);

/// Version escape for epoch-tagged frames (format version 2). A v1 frame
/// begins with the varint sequence number and the rendezvous protocol
/// numbers sequences from 1, so a leading 0x00 byte is unambiguous: v2
/// frames are `0x00, varint version, varint epoch` followed by the v1
/// body (varint sequence, varint message, encoded timestamp) and the same
/// 8-byte FNV-1a trailer over everything before it.
inline constexpr std::uint8_t kEpochFrameMarker = 0x00;

/// Current versioned frame format.
inline constexpr std::uint64_t kEpochFrameVersion = 2;

/// Epoch-aware frame writer. Epoch 0 emits the version-1 layout
/// bit-identically (the back-compat rule: pre-epoch peers read epoch-0
/// traffic unchanged); any later epoch emits a v2 frame. `sequence` must
/// be >= 1 — that is what keeps the two layouts distinguishable.
void encode_epoch_frame_into(EpochId epoch, std::uint64_t sequence,
                             std::uint64_t message,
                             std::span<const std::uint64_t> stamp,
                             std::vector<std::uint8_t>& out);

/// Epoch-aware frame reader: accepts v2 frames and plain v1 frames, the
/// latter reported as epoch 0. Validates checksum, version, and width as
/// decode_frame_into. Nothing is allocated.
FrameHeader decode_epoch_frame_into(std::span<const std::uint8_t> bytes,
                                    std::span<std::uint64_t> stamp_out);

/// Header-only reader: validates the checksum and the version escape and
/// returns the header without decoding the timestamp components, so a
/// receiver can classify a frame from *another* epoch (whose width it no
/// longer knows) before deciding to reject it. The timestamp bytes are
/// checksum-covered but otherwise unexamined. Throws WireError on
/// corruption or unsupported versions.
FrameHeader peek_epoch_frame_header(std::span<const std::uint8_t> bytes);

}  // namespace syncts
