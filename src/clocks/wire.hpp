#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "clocks/vector_timestamp.hpp"

/// \file wire.hpp
/// Wire format for piggybacked timestamps.
///
/// The paper's O(d) message overhead is realized concretely here: a
/// timestamp is serialized as LEB128 varints (width first, then each
/// component), so small fresh clocks cost d+1 bytes and long-running
/// systems pay only for the magnitude their counters actually reached.
/// This is what a production transport would append to every message and
/// acknowledgement.

namespace syncts {

/// Appends the LEB128 encoding of `value` to `out`.
void encode_varint(std::uint64_t value, std::vector<std::uint8_t>& out);

/// Decodes one varint starting at out[offset]; advances offset. Throws
/// std::invalid_argument on truncated or over-long (> 10 byte) input.
std::uint64_t decode_varint(std::span<const std::uint8_t> bytes,
                            std::size_t& offset);

/// Serializes width + components.
std::vector<std::uint8_t> encode_timestamp(const VectorTimestamp& stamp);

/// Inverse of encode_timestamp. Throws std::invalid_argument on malformed
/// input or trailing bytes.
VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes);

/// Exact encoded size without materializing the bytes.
std::size_t encoded_size(const VectorTimestamp& stamp);

}  // namespace syncts
