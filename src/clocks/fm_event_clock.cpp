#include "clocks/fm_event_clock.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace syncts {

FmEventTimestamps fm_event_timestamps(const SyncComputation& computation) {
    const std::size_t n = computation.num_processes();
    std::vector<VectorTimestamp> clocks(n, VectorTimestamp(n));

    FmEventTimestamps result;
    result.message_stamps.resize(computation.num_messages());
    result.internal_stamps.resize(computation.num_internal_events());

    // Replay in instant order. Per-process cursors walk each process's
    // event sequence; the global instant order interleaves them exactly as
    // the computation was built (messages and internal events were appended
    // in instant order, and ids are assigned densely), so replaying
    // messages by id and injecting internal events at their recorded
    // positions reproduces the original schedule.
    std::vector<std::size_t> cursor(n, 0);
    const auto drain_internals = [&](ProcessId p, MessageId until_message) {
        const auto events = computation.process_events(p);
        while (cursor[p] < events.size()) {
            const ProcessEvent& e = events[cursor[p]];
            if (e.kind == ProcessEvent::Kind::message) {
                SYNCTS_ENSURE(until_message != kNoMessage &&
                                  e.index == until_message,
                              "event replay out of order");
                ++cursor[p];
                return;
            }
            clocks[p].increment(p);
            result.internal_stamps[e.index] = clocks[p];
            ++cursor[p];
        }
        SYNCTS_ENSURE(until_message == kNoMessage,
                      "message missing from process event sequence");
    };

    for (const SyncMessage& m : computation.messages()) {
        drain_internals(m.sender, m.id);
        drain_internals(m.receiver, m.id);
        // Shared rendezvous event: merge both vectors, tick both components.
        VectorTimestamp merged = clocks[m.sender];
        merged.join(clocks[m.receiver]);
        merged.increment(m.sender);
        merged.increment(m.receiver);
        clocks[m.sender] = merged;
        clocks[m.receiver] = merged;
        result.message_stamps[m.id] = merged;
    }
    for (ProcessId p = 0; p < n; ++p) drain_internals(p, kNoMessage);
    return result;
}

}  // namespace syncts
