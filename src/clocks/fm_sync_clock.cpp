#include "clocks/fm_sync_clock.hpp"

#include "common/check.hpp"

namespace syncts {

FmSyncTimestamper::FmSyncTimestamper(std::size_t num_processes)
    : clocks_(num_processes, VectorTimestamp(num_processes)) {}

VectorTimestamp FmSyncTimestamper::timestamp_message(ProcessId sender,
                                                     ProcessId receiver) {
    SYNCTS_REQUIRE(sender < clocks_.size() && receiver < clocks_.size(),
                   "process id out of range");
    SYNCTS_REQUIRE(sender != receiver, "no self-messages");
    VectorTimestamp merged = clocks_[sender];
    merged.join(clocks_[receiver]);
    merged.increment(sender);
    merged.increment(receiver);
    clocks_[sender] = merged;
    clocks_[receiver] = merged;
    return merged;
}

std::vector<VectorTimestamp> FmSyncTimestamper::timestamp_computation(
    const SyncComputation& computation) {
    SYNCTS_REQUIRE(computation.num_processes() == clocks_.size(),
                   "computation size does not match the timestamper");
    std::vector<VectorTimestamp> stamps;
    stamps.reserve(computation.num_messages());
    for (const SyncMessage& m : computation.messages()) {
        stamps.push_back(timestamp_message(m.sender, m.receiver));
    }
    return stamps;
}

const VectorTimestamp& FmSyncTimestamper::clock(ProcessId p) const {
    SYNCTS_REQUIRE(p < clocks_.size(), "process id out of range");
    return clocks_[p];
}

std::vector<VectorTimestamp> fm_sync_timestamps(
    const SyncComputation& computation) {
    FmSyncTimestamper timestamper(computation.num_processes());
    return timestamper.timestamp_computation(computation);
}

}  // namespace syncts
