#include "clocks/engine_stock.hpp"

namespace syncts {

std::unique_ptr<ClockEngine> EngineStock::lease(
    ClockFamily family,
    std::shared_ptr<const EdgeDecomposition> decomposition) {
    SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
    std::vector<std::unique_ptr<ClockEngine>>& bucket =
        engines_[static_cast<std::size_t>(family)];
    if (!bucket.empty()) {
        std::unique_ptr<ClockEngine> engine = std::move(bucket.back());
        bucket.pop_back();
        engine->rebind(std::move(decomposition));
        note_lease(/*reused=*/true);
        note_parked();
        return engine;
    }
    note_lease(/*reused=*/false);
    return make_clock_engine(family, std::move(decomposition));
}

void EngineStock::restock(std::unique_ptr<ClockEngine> engine) {
    if (engine == nullptr) return;
    engine->detach_metrics();
    engines_[static_cast<std::size_t>(engine->family())].push_back(
        std::move(engine));
    if (metric_restocks_ != nullptr) metric_restocks_->inc();
    note_parked();
}

std::unique_ptr<OnlineProcessClock> EngineStock::lease_clock(
    ProcessId self, std::shared_ptr<const EdgeDecomposition> decomposition) {
    SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
    if (!clocks_.empty()) {
        std::unique_ptr<OnlineProcessClock> clock = std::move(clocks_.back());
        clocks_.pop_back();
        clock->rebind(self, std::move(decomposition));
        note_lease(/*reused=*/true);
        note_parked();
        return clock;
    }
    note_lease(/*reused=*/false);
    return std::make_unique<OnlineProcessClock>(self,
                                                std::move(decomposition));
}

void EngineStock::restock_clock(std::unique_ptr<OnlineProcessClock> clock) {
    if (clock == nullptr) return;
    clocks_.push_back(std::move(clock));
    if (metric_restocks_ != nullptr) metric_restocks_->inc();
    note_parked();
}

std::size_t EngineStock::stocked_engines() const noexcept {
    std::size_t total = 0;
    for (const auto& bucket : engines_) total += bucket.size();
    return total;
}

void EngineStock::trim() noexcept {
    for (auto& bucket : engines_) bucket.clear();
    clocks_.clear();
    if (metric_parked_ != nullptr) metric_parked_->set(0);
}

void EngineStock::attach_metrics(obs::MetricsRegistry& registry,
                                 std::string_view prefix) {
    const std::string p(prefix);
    metric_leases_ = &registry.counter(p + "_leases");
    metric_reuses_ = &registry.counter(p + "_reuses");
    metric_creates_ = &registry.counter(p + "_creates");
    metric_restocks_ = &registry.counter(p + "_restocks");
    metric_parked_ = &registry.gauge(p + "_parked");
    note_parked();
}

void EngineStock::note_lease(bool reused) {
    ++leases_;
    if (reused) ++reuses_;
    if (metric_leases_ != nullptr) {
        metric_leases_->inc();
        if (reused) {
            metric_reuses_->inc();
        } else {
            metric_creates_->inc();
        }
    }
}

void EngineStock::note_parked() {
    if (metric_parked_ != nullptr) {
        metric_parked_->set(
            static_cast<std::int64_t>(stocked_engines() + clocks_.size()));
    }
}

}  // namespace syncts
