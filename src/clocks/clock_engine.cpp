#include "clocks/clock_engine.hpp"

#include <limits>
#include <string>
#include <utility>

#include "clocks/offline_timestamper.hpp"
#include "clocks/online_clock.hpp"
#include "clocks/wire.hpp"
#include "common/check.hpp"
#include "common/checksum.hpp"
#include "common/ts_kernels.hpp"

namespace syncts {

const char* to_string(ClockFamily family) noexcept {
    switch (family) {
        case ClockFamily::online: return "online";
        case ClockFamily::fm_sync: return "fm_sync";
        case ClockFamily::fm_event: return "fm_event";
        case ClockFamily::lamport: return "lamport";
        case ClockFamily::direct_dependency: return "direct_dependency";
        case ClockFamily::offline: return "offline";
    }
    return "unknown";
}

std::vector<VectorTimestamp> EngineStamps::materialize_messages() const {
    std::vector<VectorTimestamp> result;
    result.reserve(message_stamps.size());
    for (const TsHandle h : message_stamps) {
        result.emplace_back(arena.span(h));
    }
    return result;
}

void ClockEngine::on_internal(ProcessId, std::span<std::uint64_t>) {}

void ClockEngine::on_epoch(const EpochTransition&) {
    SYNCTS_REQUIRE(false, std::string("clock family ") + to_string(family()) +
                              " does not implement epoch transitions");
}

void ClockEngine::advance_epoch(const EpochTransition& transition) {
    SYNCTS_REQUIRE(transition.from_epoch == epoch_,
                   "epoch transition does not continue this engine's epoch");
    epoch_ = transition.to_epoch;
}

void ClockEngine::fold_epoch_floor(const EpochTransition& transition,
                                   std::span<const std::uint64_t> high_water,
                                   bool by_process) {
    const std::size_t old_len = by_process ? transition.old_num_processes
                                           : transition.old_width();
    SYNCTS_REQUIRE(high_water.size() == old_len,
                   "epoch high-water mark has the wrong width");
    std::vector<std::uint64_t> absolute(high_water.begin(), high_water.end());
    if (!floor_.empty()) {
        SYNCTS_ENSURE(floor_.size() == old_len,
                      "accumulated floor width diverged from the engine");
        for (std::size_t i = 0; i < absolute.size(); ++i) {
            absolute[i] += floor_[i];
        }
    }
    advance_epoch(transition);
    const std::size_t new_len = by_process ? transition.new_num_processes
                                           : transition.new_width();
    floor_.assign(new_len, 0);
    if (by_process) {
        transition.migrate_processes(absolute, floor_);
    } else {
        transition.migrate_components(absolute, floor_);
    }
}

namespace {

/// Magic prefix of a serialized clock state (docs/RECOVERY.md).
constexpr std::uint8_t kStateMagic[4] = {'S', 'Y', 'C', 'K'};

/// Current clock-state capture format.
constexpr std::uint64_t kStateVersion = 1;

}  // namespace

void ClockEngine::save_state(std::vector<std::uint8_t>& out) const {
    const std::size_t start = out.size();
    out.insert(out.end(), std::begin(kStateMagic), std::end(kStateMagic));
    encode_varint(kStateVersion, out);
    encode_varint(static_cast<std::uint64_t>(family()), out);
    encode_varint(epoch_, out);
    encode_varint(floor_.size(), out);
    for (const std::uint64_t word : floor_) encode_varint(word, out);
    std::vector<std::uint64_t> payload;
    save_payload(payload);
    encode_varint(payload.size(), out);
    for (const std::uint64_t word : payload) encode_varint(word, out);
    common::append_checksum_trailer(out, start);
}

std::vector<std::uint8_t> ClockEngine::save_state() const {
    std::vector<std::uint8_t> out;
    save_state(out);
    return out;
}

void ClockEngine::restore_state(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < sizeof(kStateMagic) + 8) {
        throw WireError(WireError::Kind::truncated,
                        "clock state shorter than magic plus checksum");
    }
    const std::span<const std::uint8_t> body = bytes.first(bytes.size() - 8);
    const std::uint64_t stored =
        common::read_checksum_trailer(bytes, body.size());
    if (common::fnv1a64(body) != stored) {
        throw WireError(WireError::Kind::checksum_mismatch,
                        "clock state checksum mismatch");
    }
    std::size_t offset = 0;
    for (const std::uint8_t magic : kStateMagic) {
        if (body[offset++] != magic) {
            throw WireError(WireError::Kind::unsupported_version,
                            "clock state magic mismatch");
        }
    }
    const std::uint64_t version = decode_varint(body, offset);
    if (version != kStateVersion) {
        throw WireError(WireError::Kind::unsupported_version,
                        "clock state from an unsupported format version");
    }
    const std::uint64_t tag = decode_varint(body, offset);
    SYNCTS_REQUIRE(tag == static_cast<std::uint64_t>(family()),
                   std::string("clock state family does not match this "
                               "engine (") +
                       to_string(family()) + ")");
    const std::uint64_t epoch = decode_varint(body, offset);
    SYNCTS_REQUIRE(epoch <= std::numeric_limits<EpochId>::max(),
                   "clock state epoch exceeds the epoch id range");
    const std::uint64_t floor_count = decode_varint(body, offset);
    SYNCTS_REQUIRE(floor_count <= body.size(),
                   "clock state floor length exceeds the frame");
    std::vector<std::uint64_t> restored_floor;
    restored_floor.reserve(floor_count);
    for (std::uint64_t i = 0; i < floor_count; ++i) {
        restored_floor.push_back(decode_varint(body, offset));
    }
    const std::uint64_t payload_count = decode_varint(body, offset);
    SYNCTS_REQUIRE(payload_count <= body.size(),
                   "clock state payload length exceeds the frame");
    std::vector<std::uint64_t> payload;
    payload.reserve(payload_count);
    for (std::uint64_t i = 0; i < payload_count; ++i) {
        payload.push_back(decode_varint(body, offset));
    }
    if (offset != body.size()) {
        throw WireError(WireError::Kind::trailing_bytes,
                        "clock state has undecoded trailing bytes");
    }
    // The payload restore validates the shape; only after it succeeds is
    // any engine state mutated.
    restore_payload(payload);
    floor_ = std::move(restored_floor);
    epoch_ = static_cast<EpochId>(epoch);
}

void ClockEngine::attach_metrics(obs::MetricsRegistry& registry) {
    const std::string prefix = std::string("clock_") + to_string(family());
    metric_stamps_ = &registry.counter(prefix + "_stamps");
    metric_internal_ = &registry.counter(prefix + "_internal_ticks");
    metric_width_ = &registry.gauge("clock_width");
    metric_width_->set(static_cast<std::int64_t>(width()));
}

void ClockEngine::detach_metrics() noexcept {
    metric_stamps_ = nullptr;
    metric_internal_ = nullptr;
    metric_width_ = nullptr;
}

TsHandle ClockEngine::timestamp_message(ProcessId sender, ProcessId receiver,
                                        TimestampArena& arena) {
    const std::size_t w = width();
    SYNCTS_REQUIRE(arena.width() == w,
                   "arena width does not match the engine width");
    if (scratch_piggy_.size() != w) {
        scratch_piggy_.resize(w);
        scratch_ack_.resize(w);
        scratch_echo_.resize(w);
    }
    prepare_send(sender, scratch_piggy_);
    const TsHandle h = arena.allocate();
    on_receive(sender, receiver, scratch_piggy_, scratch_ack_, arena.span(h));
    on_ack(sender, receiver, scratch_ack_, scratch_echo_);
    SYNCTS_ENSURE(ts::equal(arena.span(h), scratch_echo_),
                  "sender and receiver disagree on the message timestamp");
    if (metric_stamps_ != nullptr) metric_stamps_->inc();
    return h;
}

void ClockEngine::replay(const SyncComputation& computation,
                         TimestampArena& arena,
                         std::vector<TsHandle>& message_out,
                         std::vector<TsHandle>* internal_out) {
    const std::size_t n = computation.num_processes();
    SYNCTS_REQUIRE(n == num_processes(),
                   "computation size does not match the engine");
    const std::size_t w = width();
    SYNCTS_REQUIRE(arena.width() == w,
                   "arena width does not match the engine width");
    scratch_piggy_.resize(w);
    scratch_ack_.resize(w);
    scratch_echo_.resize(w);
    message_out.assign(computation.num_messages(), kNoTimestamp);
    const bool want_internal = internal_out != nullptr &&
                               stamps_internal_events();
    if (internal_out != nullptr) {
        internal_out->assign(
            want_internal ? computation.num_internal_events() : 0,
            kNoTimestamp);
    }

    // Replay in instant order: per-process cursors drain internal events
    // that precede each endpoint's rendezvous (same walk as the legacy
    // per-family replays, so stamps are bit-identical).
    std::vector<std::size_t> cursor(n, 0);
    const auto drain = [&](ProcessId p, MessageId until_message) {
        const auto events = computation.process_events(p);
        while (cursor[p] < events.size()) {
            const ProcessEvent& e = events[cursor[p]];
            if (e.kind == ProcessEvent::Kind::message) {
                SYNCTS_ENSURE(until_message != kNoMessage &&
                                  e.index == until_message,
                              "event replay out of order");
                ++cursor[p];
                return;
            }
            if (want_internal) {
                const TsHandle h = arena.allocate();
                on_internal(p, arena.span(h));
                (*internal_out)[e.index] = h;
            } else {
                on_internal(p, {});
            }
            if (metric_internal_ != nullptr) metric_internal_->inc();
            ++cursor[p];
        }
        SYNCTS_ENSURE(until_message == kNoMessage,
                      "message missing from process event sequence");
    };

    for (const SyncMessage& m : computation.messages()) {
        drain(m.sender, m.id);
        drain(m.receiver, m.id);
        prepare_send(m.sender, scratch_piggy_);
        const TsHandle h = arena.allocate();
        on_receive(m.sender, m.receiver, scratch_piggy_, scratch_ack_,
                   arena.span(h));
        on_ack(m.sender, m.receiver, scratch_ack_, scratch_echo_);
        SYNCTS_ENSURE(ts::equal(arena.span(h), scratch_echo_),
                      "sender and receiver disagree on the message timestamp");
        if (metric_stamps_ != nullptr) metric_stamps_->inc();
        message_out[m.id] = h;
    }
    for (ProcessId p = 0; p < n; ++p) drain(p, kNoMessage);
}

std::vector<TsHandle> ClockEngine::stamp_messages(
    const SyncComputation& computation, TimestampArena& arena) {
    std::vector<TsHandle> stamps;
    replay(computation, arena, stamps, nullptr);
    return stamps;
}

EngineStamps ClockEngine::stamp_computation(
    const SyncComputation& computation) {
    const std::size_t slots =
        computation.num_messages() +
        (stamps_internal_events() ? computation.num_internal_events() : 0);
    EngineStamps result{TimestampArena(width(), slots), {}, {}};
    replay(computation, result.arena, result.message_stamps,
           &result.internal_stamps);
    return result;
}

std::vector<VectorTimestamp> ClockEngine::timestamp_computation_legacy(
    const SyncComputation& computation) {
    return stamp_computation(computation).materialize_messages();
}

namespace {

/// Shared rendezvous math of the two Fidge–Mattern adaptations: merge
/// both participants' width-N vectors and tick both their components.
class FmRendezvousBase : public ClockEngine {
public:
    explicit FmRendezvousBase(std::size_t num_processes)
        : clocks_(num_processes) {
        for (std::size_t p = 0; p < num_processes; ++p) {
            clocks_.allocate();
        }
    }

    std::size_t width() const noexcept override { return clocks_.size(); }
    std::size_t num_processes() const noexcept override {
        return clocks_.size();
    }

    void reset() override {
        for (std::size_t p = 0; p < clocks_.size(); ++p) {
            ts::zero(clocks_.span(static_cast<TsHandle>(p)));
        }
        floor_.clear();
        epoch_ = 0;
    }

    /// Same process count ⇒ an O(N²) re-zero of the existing slab; a
    /// different count rebuilds the clock arena.
    void rebind(std::shared_ptr<const EdgeDecomposition> decomposition)
        override {
        SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
        const std::size_t n = decomposition->graph().num_vertices();
        if (n == clocks_.size()) {
            reset();
            return;
        }
        TimestampArena next(n, n);
        for (std::size_t p = 0; p < n; ++p) {
            next.allocate();
        }
        clocks_ = std::move(next);
        floor_.clear();
        epoch_ = 0;
    }

    /// FM vectors are indexed by process, so the floor migrates by the
    /// process rule; the per-process clock slab is rebuilt arena-to-arena
    /// at the new width, zeroed (the barrier model — per-epoch stamps are
    /// those of a fresh engine).
    void on_epoch(const EpochTransition& transition) override {
        std::vector<std::uint64_t> high_water(clocks_.size(), 0);
        for (std::size_t p = 0; p < clocks_.size(); ++p) {
            const auto row = clocks_.span(static_cast<TsHandle>(p));
            for (std::size_t q = 0; q < row.size(); ++q) {
                high_water[q] = std::max(high_water[q], row[q]);
            }
        }
        fold_epoch_floor(transition, high_water, /*by_process=*/true);
        TimestampArena next(transition.new_num_processes,
                            transition.new_num_processes);
        for (std::size_t p = 0; p < transition.new_num_processes; ++p) {
            next.allocate();
        }
        clocks_ = std::move(next);
    }

    void prepare_send(ProcessId sender,
                      std::span<std::uint64_t> out) override {
        check_process(sender);
        check_span(out);
        ts::copy(out, clocks_.span(sender));
    }

    void on_receive(ProcessId sender, ProcessId receiver,
                    std::span<const std::uint64_t> piggyback,
                    std::span<std::uint64_t> ack_out,
                    std::span<std::uint64_t> stamp_out) override {
        check_rendezvous(sender, receiver);
        check_span(piggyback);
        check_span(ack_out);
        check_span(stamp_out);
        const std::span<std::uint64_t> mine = clocks_.span(receiver);
        ts::copy(ack_out, mine);
        ts::join(mine, piggyback);
        ts::increment(mine, sender);
        ts::increment(mine, receiver);
        ts::copy(stamp_out, mine);
    }

    void on_ack(ProcessId sender, ProcessId receiver,
                std::span<const std::uint64_t> acknowledgement,
                std::span<std::uint64_t> stamp_out) override {
        check_rendezvous(sender, receiver);
        check_span(acknowledgement);
        check_span(stamp_out);
        const std::span<std::uint64_t> mine = clocks_.span(sender);
        ts::join(mine, acknowledgement);
        ts::increment(mine, sender);
        ts::increment(mine, receiver);
        ts::copy(stamp_out, mine);
    }

    /// State payload: the N width-N process vectors, row-major.
    void save_payload(std::vector<std::uint64_t>& out) const override {
        for (std::size_t p = 0; p < clocks_.size(); ++p) {
            const auto row = clocks_.span(static_cast<TsHandle>(p));
            out.insert(out.end(), row.begin(), row.end());
        }
    }

    void restore_payload(std::span<const std::uint64_t> payload) override {
        const std::size_t n = clocks_.size();
        SYNCTS_REQUIRE(payload.size() == n * n,
                       "FM state payload does not match the process count");
        for (std::size_t p = 0; p < n; ++p) {
            ts::copy(clocks_.span(static_cast<TsHandle>(p)),
                     payload.subspan(p * n, n));
        }
    }

protected:
    void check_process(ProcessId p) const {
        SYNCTS_REQUIRE(p < clocks_.size(), "process id out of range");
    }
    void check_rendezvous(ProcessId sender, ProcessId receiver) const {
        check_process(sender);
        check_process(receiver);
        SYNCTS_REQUIRE(sender != receiver, "no self-messages");
    }
    template <typename Span>
    void check_span(Span s) const {
        SYNCTS_REQUIRE(s.size() == clocks_.size(),
                       "span width does not match the engine width");
    }

    /// clocks_.span(p) — process p's current width-N vector.
    TimestampArena clocks_;
};

/// FM vector clocks over sync messages only (width N, message stamps).
class FmSyncEngine final : public FmRendezvousBase {
public:
    using FmRendezvousBase::FmRendezvousBase;
    ClockFamily family() const noexcept override {
        return ClockFamily::fm_sync;
    }
};

/// Classic FM event clocks: rendezvous as above plus a tick per internal
/// event (width N, message and internal-event stamps).
class FmEventEngine final : public FmRendezvousBase {
public:
    using FmRendezvousBase::FmRendezvousBase;
    ClockFamily family() const noexcept override {
        return ClockFamily::fm_event;
    }
    bool stamps_internal_events() const noexcept override { return true; }

    void on_internal(ProcessId process,
                     std::span<std::uint64_t> stamp_out) override {
        check_process(process);
        const std::span<std::uint64_t> mine = clocks_.span(process);
        ts::increment(mine, process);
        if (!stamp_out.empty()) {
            check_span(stamp_out);
            ts::copy(stamp_out, mine);
        }
    }
};

/// Lamport scalar clocks as width-1 vectors.
class LamportEngine final : public ClockEngine {
public:
    explicit LamportEngine(std::size_t num_processes)
        : clocks_(num_processes, 0) {}

    ClockFamily family() const noexcept override {
        return ClockFamily::lamport;
    }
    std::size_t width() const noexcept override { return 1; }
    std::size_t num_processes() const noexcept override {
        return clocks_.size();
    }
    bool stamps_internal_events() const noexcept override { return true; }

    void reset() override {
        clocks_.assign(clocks_.size(), 0);
        floor_.clear();
        epoch_ = 0;
    }

    void rebind(std::shared_ptr<const EdgeDecomposition> decomposition)
        override {
        SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
        clocks_.assign(decomposition->graph().num_vertices(), 0);
        floor_.clear();
        epoch_ = 0;
    }

    /// Scalar clocks have one component that always survives: the floor
    /// is the running maximum across every epoch so far.
    void on_epoch(const EpochTransition& transition) override {
        std::uint64_t high_water = 0;
        for (const std::uint64_t c : clocks_) {
            high_water = std::max(high_water, c);
        }
        const std::uint64_t base = floor_.empty() ? 0 : floor_[0];
        advance_epoch(transition);
        floor_.assign(1, base + high_water);
        clocks_.assign(transition.new_num_processes, 0);
    }

    void prepare_send(ProcessId sender,
                      std::span<std::uint64_t> out) override {
        check(sender, out);
        out[0] = clocks_[sender];
    }

    void on_receive(ProcessId sender, ProcessId receiver,
                    std::span<const std::uint64_t> piggyback,
                    std::span<std::uint64_t> ack_out,
                    std::span<std::uint64_t> stamp_out) override {
        check(sender, stamp_out);
        check(receiver, ack_out);
        SYNCTS_REQUIRE(piggyback.size() == 1, "lamport stamps have width 1");
        ack_out[0] = clocks_[receiver];
        clocks_[receiver] =
            std::max(clocks_[receiver], piggyback[0]) + 1;
        stamp_out[0] = clocks_[receiver];
    }

    void on_ack(ProcessId sender, ProcessId /*receiver*/,
                std::span<const std::uint64_t> acknowledgement,
                std::span<std::uint64_t> stamp_out) override {
        check(sender, stamp_out);
        SYNCTS_REQUIRE(acknowledgement.size() == 1,
                       "lamport stamps have width 1");
        clocks_[sender] =
            std::max(clocks_[sender], acknowledgement[0]) + 1;
        stamp_out[0] = clocks_[sender];
    }

    void on_internal(ProcessId process,
                     std::span<std::uint64_t> stamp_out) override {
        SYNCTS_REQUIRE(process < clocks_.size(), "process id out of range");
        ++clocks_[process];
        if (!stamp_out.empty()) stamp_out[0] = clocks_[process];
    }

    /// State payload: the N scalar clocks.
    void save_payload(std::vector<std::uint64_t>& out) const override {
        out.insert(out.end(), clocks_.begin(), clocks_.end());
    }

    void restore_payload(std::span<const std::uint64_t> payload) override {
        SYNCTS_REQUIRE(
            payload.size() == clocks_.size(),
            "lamport state payload does not match the process count");
        clocks_.assign(payload.begin(), payload.end());
    }

private:
    void check(ProcessId p, std::span<std::uint64_t> out) const {
        SYNCTS_REQUIRE(p < clocks_.size(), "process id out of range");
        SYNCTS_REQUIRE(out.size() == 1, "lamport stamps have width 1");
    }

    std::vector<std::uint64_t> clocks_;
};

/// Fowler–Zwaenepoel direct dependencies as width-2 "timestamps": the
/// stamp of message m is (prev message of sender, prev message of
/// receiver), with kNoDirectDep encoding "none". The piggyback/ack carry
/// the O(1) channel state the real protocol would ship (the sender's
/// previous message id; the ack returns the receiver's previous id plus
/// the id the receiver assigned to the commit).
class DirectDependencyEngine final : public ClockEngine {
public:
    static constexpr std::uint64_t kNone =
        std::numeric_limits<std::uint64_t>::max();

    explicit DirectDependencyEngine(std::size_t num_processes)
        : last_(num_processes, kNone) {}

    ClockFamily family() const noexcept override {
        return ClockFamily::direct_dependency;
    }
    std::size_t width() const noexcept override { return 2; }
    std::size_t num_processes() const noexcept override {
        return last_.size();
    }

    void reset() override {
        last_.assign(last_.size(), kNone);
        next_id_ = 0;
        floor_.clear();
        epoch_ = 0;
    }

    void rebind(std::shared_ptr<const EdgeDecomposition> decomposition)
        override {
        SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
        last_.assign(decomposition->graph().num_vertices(), kNone);
        next_id_ = 0;
        floor_.clear();
        epoch_ = 0;
    }

    /// Direct-dependency stamps are message *identifiers*, not counters —
    /// there is no meaningful floor to carry; ids restart per epoch, as a
    /// fresh engine's would.
    void on_epoch(const EpochTransition& transition) override {
        advance_epoch(transition);
        last_.assign(transition.new_num_processes, kNone);
        next_id_ = 0;
        floor_.clear();
    }

    void prepare_send(ProcessId sender,
                      std::span<std::uint64_t> out) override {
        check(sender, out);
        out[0] = last_[sender];
        out[1] = kNone;
    }

    void on_receive(ProcessId sender, ProcessId receiver,
                    std::span<const std::uint64_t> piggyback,
                    std::span<std::uint64_t> ack_out,
                    std::span<std::uint64_t> stamp_out) override {
        check(sender, stamp_out);
        check(receiver, ack_out);
        SYNCTS_REQUIRE(piggyback.size() == 2,
                       "direct-dependency stamps have width 2");
        stamp_out[0] = piggyback[0];
        stamp_out[1] = last_[receiver];
        ack_out[0] = last_[receiver];
        ack_out[1] = next_id_;
        last_[receiver] = next_id_++;
    }

    void on_ack(ProcessId sender, ProcessId /*receiver*/,
                std::span<const std::uint64_t> acknowledgement,
                std::span<std::uint64_t> stamp_out) override {
        check(sender, stamp_out);
        SYNCTS_REQUIRE(acknowledgement.size() == 2,
                       "direct-dependency stamps have width 2");
        stamp_out[0] = last_[sender];
        stamp_out[1] = acknowledgement[0];
        last_[sender] = acknowledgement[1];
    }

    /// State payload: the N last-message ids, then the id counter.
    void save_payload(std::vector<std::uint64_t>& out) const override {
        out.insert(out.end(), last_.begin(), last_.end());
        out.push_back(next_id_);
    }

    void restore_payload(std::span<const std::uint64_t> payload) override {
        SYNCTS_REQUIRE(payload.size() == last_.size() + 1,
                       "direct-dependency state payload does not match the "
                       "process count");
        last_.assign(payload.begin(), payload.end() - 1);
        next_id_ = payload.back();
    }

private:
    void check(ProcessId p, std::span<std::uint64_t> out) const {
        SYNCTS_REQUIRE(p < last_.size(), "process id out of range");
        SYNCTS_REQUIRE(out.size() == 2,
                       "direct-dependency stamps have width 2");
    }

    std::vector<std::uint64_t> last_;  // per process: last message id
    std::uint64_t next_id_ = 0;
};

/// Fig. 9 wrapped as a batch-only engine. The vector width is the realizer
/// size of each stamped computation, so width() is only known after a
/// stamp_* call.
class OfflineEngine final : public ClockEngine {
public:
    explicit OfflineEngine(std::size_t num_processes)
        : num_processes_(num_processes) {}

    ClockFamily family() const noexcept override {
        return ClockFamily::offline;
    }
    std::size_t width() const noexcept override { return width_; }
    std::size_t num_processes() const noexcept override {
        return num_processes_;
    }
    bool online() const noexcept override { return false; }

    void reset() override {
        width_ = 0;
        floor_.clear();
        epoch_ = 0;
    }

    void rebind(std::shared_ptr<const EdgeDecomposition> decomposition)
        override {
        SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
        num_processes_ = decomposition->graph().num_vertices();
        width_ = 0;
        floor_.clear();
        epoch_ = 0;
    }

    /// Batch-only: an epoch transition just moves the process space; each
    /// stamp_* call realizes one epoch's computation from scratch anyway.
    void on_epoch(const EpochTransition& transition) override {
        advance_epoch(transition);
        num_processes_ = transition.new_num_processes;
        width_ = 0;
    }

    void prepare_send(ProcessId, std::span<std::uint64_t>) override {
        no_hooks();
    }
    void on_receive(ProcessId, ProcessId, std::span<const std::uint64_t>,
                    std::span<std::uint64_t>,
                    std::span<std::uint64_t>) override {
        no_hooks();
    }
    void on_ack(ProcessId, ProcessId, std::span<const std::uint64_t>,
                std::span<std::uint64_t>) override {
        no_hooks();
    }

    std::vector<TsHandle> stamp_messages(const SyncComputation& computation,
                                         TimestampArena& arena) override {
        const OfflineResult result = offline_timestamps(computation);
        width_ = result.width;
        SYNCTS_REQUIRE(arena.width() == width_,
                       "arena width does not match the realizer width");
        std::vector<TsHandle> stamps;
        stamps.reserve(result.timestamps.size());
        for (const VectorTimestamp& v : result.timestamps) {
            stamps.push_back(arena.allocate(v.components()));
        }
        return stamps;
    }

    EngineStamps stamp_computation(
        const SyncComputation& computation) override {
        const OfflineResult result = offline_timestamps(computation);
        width_ = result.width;
        EngineStamps stamps{
            TimestampArena(width_, result.timestamps.size()), {}, {}};
        stamps.message_stamps.reserve(result.timestamps.size());
        for (const VectorTimestamp& v : result.timestamps) {
            stamps.message_stamps.push_back(
                stamps.arena.allocate(v.components()));
        }
        return stamps;
    }

    /// State payload: the realizer width of the last stamped computation
    /// (the only mutable state of a batch engine).
    void save_payload(std::vector<std::uint64_t>& out) const override {
        out.push_back(width_);
    }

    void restore_payload(std::span<const std::uint64_t> payload) override {
        SYNCTS_REQUIRE(payload.size() == 1,
                       "offline state payload must be a single width word");
        width_ = payload[0];
    }

private:
    [[noreturn]] void no_hooks() const {
        SYNCTS_REQUIRE(false,
                       "the offline engine is batch-only: it has no "
                       "rendezvous protocol hooks");
        std::abort();  // unreachable: SYNCTS_REQUIRE(false) throws
    }

    std::size_t num_processes_;
    std::size_t width_ = 0;
};

}  // namespace

std::unique_ptr<ClockEngine> make_clock_engine(
    ClockFamily family,
    std::shared_ptr<const EdgeDecomposition> decomposition) {
    SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
    const std::size_t n = decomposition->graph().num_vertices();
    switch (family) {
        case ClockFamily::online:
            return std::make_unique<OnlineTimestamper>(
                std::move(decomposition));
        case ClockFamily::fm_sync:
            return std::make_unique<FmSyncEngine>(n);
        case ClockFamily::fm_event:
            return std::make_unique<FmEventEngine>(n);
        case ClockFamily::lamport:
            return std::make_unique<LamportEngine>(n);
        case ClockFamily::direct_dependency:
            return std::make_unique<DirectDependencyEngine>(n);
        case ClockFamily::offline:
            return std::make_unique<OfflineEngine>(n);
    }
    throw std::invalid_argument("unknown clock family");
}

}  // namespace syncts
