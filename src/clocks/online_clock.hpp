#pragma once

#include <memory>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "decomp/edge_decomposition.hpp"
#include "trace/computation.hpp"

/// \file online_clock.hpp
/// The paper's online timestamping algorithm (Fig. 5).
///
/// Each process keeps a vector of size d (the edge-decomposition size). On
/// a message from Pi to Pj the two processes exchange their current
/// vectors (piggybacked on the message and its acknowledgement), each takes
/// the component-wise maximum, and each increments the component of the
/// edge group containing channel (i, j). Both sides arrive at the same
/// vector, which is the message's timestamp. Theorem 4:
///     m1 ↦ m2 ⟺ v(m1) < v(m2).
///
/// OnlineProcessClock exposes the three protocol hooks exactly as a real
/// transport would drive them (prepare_send / on_receive /
/// on_acknowledgement); OnlineTimestamper drives all N clocks from a
/// recorded SyncComputation for simulation and analysis.

namespace syncts {

class OnlineProcessClock {
public:
    /// Clock for process `self` under a shared decomposition. The
    /// decomposition is shared immutable state — "known by all processes".
    OnlineProcessClock(ProcessId self,
                       std::shared_ptr<const EdgeDecomposition> decomposition);

    ProcessId self() const noexcept { return self_; }

    /// Fig. 5 line (02): the vector to piggyback on an outgoing message.
    const VectorTimestamp& prepare_send() const noexcept { return vector_; }

    /// Fig. 5 lines (03)-(07), receiver side: returns the acknowledgement
    /// vector to send back (the local vector *before* merging) and applies
    /// merge + increment. The return value's second element is the message
    /// timestamp.
    struct ReceiveResult {
        VectorTimestamp acknowledgement;
        VectorTimestamp timestamp;
    };
    ReceiveResult on_receive(ProcessId sender,
                             const VectorTimestamp& piggybacked);

    /// Fig. 5 lines (08)-(11), sender side: merges the acknowledgement and
    /// increments; returns the message timestamp (identical to the
    /// receiver's).
    VectorTimestamp on_acknowledgement(ProcessId receiver,
                                       const VectorTimestamp& acknowledgement);

    /// Current local vector (the timestamp of this process's latest
    /// message, or zero before any).
    const VectorTimestamp& current() const noexcept { return vector_; }

private:
    void merge_and_increment(ProcessId peer, const VectorTimestamp& remote);

    ProcessId self_;
    std::shared_ptr<const EdgeDecomposition> decomposition_;
    /// group_by_peer_[p] — edge group of channel (self, p); kNoGroup when
    /// no such channel. Precomputed so the per-message hot path is one
    /// array load instead of a hash lookup in the decomposition.
    std::vector<GroupId> group_by_peer_;
    VectorTimestamp vector_;
};

/// Drives the Fig. 5 protocol over a whole system from recorded or
/// incrementally appended messages.
class OnlineTimestamper {
public:
    explicit OnlineTimestamper(
        std::shared_ptr<const EdgeDecomposition> decomposition);

    /// Timestamp width d.
    std::size_t width() const noexcept;

    /// Executes one rendezvous and returns the message timestamp.
    VectorTimestamp timestamp_message(ProcessId sender, ProcessId receiver);

    /// Runs the whole computation; result[id] is message id's timestamp.
    /// The computation's topology must match the decomposition's.
    std::vector<VectorTimestamp> timestamp_computation(
        const SyncComputation& computation);

    const OnlineProcessClock& clock(ProcessId p) const;

private:
    std::shared_ptr<const EdgeDecomposition> decomposition_;
    std::vector<OnlineProcessClock> clocks_;
};

/// One-shot convenience: decompose with the library default and timestamp
/// every message of `computation`.
std::vector<VectorTimestamp> online_timestamps(
    const SyncComputation& computation);

}  // namespace syncts
