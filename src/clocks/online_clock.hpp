#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "clocks/clock_engine.hpp"
#include "clocks/vector_timestamp.hpp"
#include "decomp/edge_decomposition.hpp"
#include "trace/computation.hpp"

/// \file online_clock.hpp
/// The paper's online timestamping algorithm (Fig. 5).
///
/// Each process keeps a vector of size d (the edge-decomposition size). On
/// a message from Pi to Pj the two processes exchange their current
/// vectors (piggybacked on the message and its acknowledgement), each takes
/// the component-wise maximum, and each increments the component of the
/// edge group containing channel (i, j). Both sides arrive at the same
/// vector, which is the message's timestamp. Theorem 4:
///     m1 ↦ m2 ⟺ v(m1) < v(m2).
///
/// OnlineProcessClock exposes the three protocol hooks exactly as a real
/// transport would drive them. The `*_into` span forms are the hot path:
/// they write into caller-provided width-d slots (arena rows, packet
/// buffers) and never allocate. The value-returning forms are compat
/// shims over them. OnlineTimestamper drives all N clocks from a recorded
/// SyncComputation and is the ClockFamily::online engine.

namespace syncts {

class OnlineProcessClock {
public:
    /// Clock for process `self` under a shared decomposition. The
    /// decomposition is shared immutable state — "known by all processes".
    OnlineProcessClock(ProcessId self,
                       std::shared_ptr<const EdgeDecomposition> decomposition);

    ProcessId self() const noexcept { return self_; }

    /// Timestamp width d.
    std::size_t width() const noexcept { return vector_.width(); }

    /// Returns the clock to its initial all-zero vector.
    void reset() noexcept;

    /// Re-targets the clock at process `self` under `decomposition`, as
    /// if freshly constructed, reusing the vector and peer-table storage
    /// when the shapes match — the EngineStock recycling hook
    /// (docs/MEMORY.md).
    void rebind(ProcessId self,
                std::shared_ptr<const EdgeDecomposition> decomposition);

    /// Overwrites the local vector with `state` (width() words) — the
    /// crash-recovery restore hook (docs/RECOVERY.md). The decomposition
    /// is immutable shared state, so a snapshot needs only the vector.
    void restore_from(std::span<const std::uint64_t> state);

    // ---- Non-allocating span hooks (the hot path) ---------------------

    /// The current local vector as a read-only span of width() words.
    std::span<const std::uint64_t> current_span() const noexcept {
        return vector_.components();
    }

    /// Fig. 5 line (02): writes the vector to piggyback on an outgoing
    /// message into `out` (width() words).
    void prepare_send_into(std::span<std::uint64_t> out) const;

    /// Fig. 5 lines (03)-(07), receiver side: writes the acknowledgement
    /// vector (the local vector *before* the merge) into `ack_out`, then
    /// merges the piggybacked vector, increments the channel group, and
    /// writes the message timestamp into `stamp_out`.
    void on_receive_into(ProcessId sender,
                         std::span<const std::uint64_t> piggybacked,
                         std::span<std::uint64_t> ack_out,
                         std::span<std::uint64_t> stamp_out);

    /// Fig. 5 lines (08)-(11), sender side: merges the acknowledgement,
    /// increments, and writes the (identical) message timestamp into
    /// `stamp_out`.
    void on_ack_into(ProcessId receiver,
                     std::span<const std::uint64_t> acknowledgement,
                     std::span<std::uint64_t> stamp_out);

    // ---- Value-returning compat shims ---------------------------------

    /// Fig. 5 line (02): the vector to piggyback on an outgoing message.
    const VectorTimestamp& prepare_send() const noexcept { return vector_; }

    /// Receiver side; the return value's second element is the message
    /// timestamp.
    struct ReceiveResult {
        VectorTimestamp acknowledgement;
        VectorTimestamp timestamp;
    };
    ReceiveResult on_receive(ProcessId sender,
                             const VectorTimestamp& piggybacked);

    /// Sender side: merges the acknowledgement and increments; returns the
    /// message timestamp (identical to the receiver's).
    VectorTimestamp on_acknowledgement(ProcessId receiver,
                                       const VectorTimestamp& acknowledgement);

    /// Current local vector (the timestamp of this process's latest
    /// message, or zero before any).
    const VectorTimestamp& current() const noexcept { return vector_; }

private:
    void merge_and_increment(ProcessId peer,
                             std::span<const std::uint64_t> remote);

    ProcessId self_;
    std::shared_ptr<const EdgeDecomposition> decomposition_;
    /// group_by_peer_[p] — edge group of channel (self, p); kNoGroup when
    /// no such channel. Precomputed so the per-message hot path is one
    /// array load instead of a hash lookup in the decomposition.
    std::vector<GroupId> group_by_peer_;
    VectorTimestamp vector_;
};

/// Drives the Fig. 5 protocol over a whole system from recorded or
/// incrementally appended messages; the ClockFamily::online engine.
class OnlineTimestamper final : public ClockEngine {
public:
    explicit OnlineTimestamper(
        std::shared_ptr<const EdgeDecomposition> decomposition);

    ClockFamily family() const noexcept override {
        return ClockFamily::online;
    }

    /// Timestamp width d.
    std::size_t width() const noexcept override;

    std::size_t num_processes() const noexcept override {
        return clocks_.size();
    }

    void reset() override;

    void rebind(
        std::shared_ptr<const EdgeDecomposition> decomposition) override;

    /// Swaps in the new epoch's decomposition: the accumulated floor is
    /// migrated by the component rule (preserved groups carry, rebuilt
    /// ones start at zero) and every process clock is rebuilt at the new
    /// width d, zeroed. Requires transition.from to match the current
    /// decomposition's shape.
    void on_epoch(const EpochTransition& transition) override;

    const EdgeDecomposition& decomposition() const noexcept {
        return *decomposition_;
    }

    void prepare_send(ProcessId sender,
                      std::span<std::uint64_t> out) override;
    void on_receive(ProcessId sender, ProcessId receiver,
                    std::span<const std::uint64_t> piggyback,
                    std::span<std::uint64_t> ack_out,
                    std::span<std::uint64_t> stamp_out) override;
    void on_ack(ProcessId sender, ProcessId receiver,
                std::span<const std::uint64_t> acknowledgement,
                std::span<std::uint64_t> stamp_out) override;

    /// Arena-slot rendezvous driver from the base class.
    using ClockEngine::timestamp_message;

    /// Legacy allocating rendezvous: executes one rendezvous and returns
    /// the message timestamp as an owning value.
    VectorTimestamp timestamp_message(ProcessId sender, ProcessId receiver);

    /// Legacy allocating batch driver; result[id] is message id's
    /// timestamp. The computation's topology must match the
    /// decomposition's.
    std::vector<VectorTimestamp> timestamp_computation(
        const SyncComputation& computation);

    const OnlineProcessClock& clock(ProcessId p) const;

protected:
    /// State payload: the N width-d process vectors, row-major.
    void save_payload(std::vector<std::uint64_t>& out) const override;
    void restore_payload(std::span<const std::uint64_t> payload) override;

private:
    std::shared_ptr<const EdgeDecomposition> decomposition_;
    std::vector<OnlineProcessClock> clocks_;
};

/// One-shot convenience: decompose with the library default and timestamp
/// every message of `computation`.
std::vector<VectorTimestamp> online_timestamps(
    const SyncComputation& computation);

}  // namespace syncts
