#include "clocks/wire.hpp"

#include <utility>

namespace syncts {

void encode_varint(std::uint64_t value, std::vector<std::uint8_t>& out) {
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t decode_varint(std::span<const std::uint8_t> bytes,
                            std::size_t& offset) {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (offset >= bytes.size()) {
            throw WireError(WireError::Kind::truncated, "truncated varint");
        }
        const std::uint8_t byte = bytes[offset++];
        if (shift >= 64) {
            throw WireError(WireError::Kind::overlong_varint,
                            "varint longer than 64 bits");
        }
        value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
        if ((byte & 0x80u) == 0) return value;
    }
    throw WireError(WireError::Kind::overlong_varint,
                    "unreachable varint state");
}

std::vector<std::uint8_t> encode_timestamp(const VectorTimestamp& stamp) {
    std::vector<std::uint8_t> out;
    out.reserve(1 + stamp.width());
    encode_varint(stamp.width(), out);
    for (const std::uint64_t component : stamp.components()) {
        encode_varint(component, out);
    }
    return out;
}

namespace {

/// Shared tail of the two decode_timestamp overloads: decodes `width`
/// components starting at `offset` and requires the input to end there.
VectorTimestamp decode_components(std::span<const std::uint8_t> bytes,
                                  std::size_t& offset, std::uint64_t width) {
    // Each component needs at least one byte; reject absurd widths before
    // allocating.
    if (width > bytes.size() - offset) {
        throw WireError(WireError::Kind::length_mismatch,
                        "timestamp width exceeds available bytes");
    }
    std::vector<std::uint64_t> components(static_cast<std::size_t>(width));
    for (auto& component : components) {
        component = decode_varint(bytes, offset);
    }
    if (offset != bytes.size()) {
        throw WireError(WireError::Kind::trailing_bytes,
                        "trailing bytes after encoded timestamp");
    }
    return VectorTimestamp(std::move(components));
}

}  // namespace

VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes) {
    std::size_t offset = 0;
    const std::uint64_t width = decode_varint(bytes, offset);
    return decode_components(bytes, offset, width);
}

VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes,
                                 std::size_t expected_width) {
    std::size_t offset = 0;
    const std::uint64_t width = decode_varint(bytes, offset);
    if (width != expected_width) {
        throw WireError(WireError::Kind::width_mismatch,
                        "timestamp width " + std::to_string(width) +
                            " does not match decomposition size " +
                            std::to_string(expected_width));
    }
    return decode_components(bytes, offset, width);
}

std::size_t encoded_size(const VectorTimestamp& stamp) {
    const auto varint_size = [](std::uint64_t value) {
        std::size_t size = 1;
        while (value >= 0x80) {
            value >>= 7;
            ++size;
        }
        return size;
    };
    std::size_t total = varint_size(stamp.width());
    for (const std::uint64_t component : stamp.components()) {
        total += varint_size(component);
    }
    return total;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (const std::uint8_t byte : bytes) {
        hash ^= byte;
        hash *= 0x100000001B3ull;
    }
    return hash;
}

namespace {

constexpr std::size_t kChecksumBytes = 8;

}  // namespace

std::vector<std::uint8_t> encode_frame(const SyncFrame& frame) {
    std::vector<std::uint8_t> out;
    out.reserve(2 + 1 + frame.stamp.width() + kChecksumBytes);
    encode_varint(frame.sequence, out);
    encode_varint(frame.message, out);
    encode_varint(frame.stamp.width(), out);
    for (const std::uint64_t component : frame.stamp.components()) {
        encode_varint(component, out);
    }
    std::uint64_t checksum = fnv1a64(out);
    for (std::size_t i = 0; i < kChecksumBytes; ++i) {
        out.push_back(static_cast<std::uint8_t>(checksum));
        checksum >>= 8;
    }
    return out;
}

SyncFrame decode_frame(std::span<const std::uint8_t> bytes,
                       std::size_t expected_width) {
    // Minimum frame: three one-byte varints plus the checksum trailer.
    if (bytes.size() < 3 + kChecksumBytes) {
        throw WireError(WireError::Kind::truncated,
                        "frame shorter than header + checksum");
    }
    const std::span<const std::uint8_t> payload =
        bytes.first(bytes.size() - kChecksumBytes);
    std::uint64_t declared = 0;
    for (std::size_t i = 0; i < kChecksumBytes; ++i) {
        declared |= static_cast<std::uint64_t>(bytes[payload.size() + i])
                    << (8 * i);
    }
    if (fnv1a64(payload) != declared) {
        throw WireError(WireError::Kind::checksum_mismatch,
                        "frame checksum mismatch");
    }
    SyncFrame frame;
    std::size_t offset = 0;
    frame.sequence = decode_varint(payload, offset);
    frame.message = decode_varint(payload, offset);
    const std::uint64_t width = decode_varint(payload, offset);
    if (width != expected_width) {
        throw WireError(WireError::Kind::width_mismatch,
                        "frame timestamp width " + std::to_string(width) +
                            " does not match decomposition size " +
                            std::to_string(expected_width));
    }
    if (width > payload.size() - offset) {
        throw WireError(WireError::Kind::length_mismatch,
                        "frame timestamp width exceeds available bytes");
    }
    std::vector<std::uint64_t> components(static_cast<std::size_t>(width));
    for (auto& component : components) {
        component = decode_varint(payload, offset);
    }
    if (offset != payload.size()) {
        throw WireError(WireError::Kind::trailing_bytes,
                        "trailing bytes inside frame payload");
    }
    frame.stamp = VectorTimestamp(std::move(components));
    return frame;
}

}  // namespace syncts
