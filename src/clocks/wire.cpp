#include "clocks/wire.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.hpp"

namespace syncts {

void encode_varint(std::uint64_t value, std::vector<std::uint8_t>& out) {
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t decode_varint(std::span<const std::uint8_t> bytes,
                            std::size_t& offset) {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (offset >= bytes.size()) {
            throw WireError(WireError::Kind::truncated, "truncated varint");
        }
        const std::uint8_t byte = bytes[offset++];
        if (shift >= 64) {
            throw WireError(WireError::Kind::overlong_varint,
                            "varint longer than 64 bits");
        }
        value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
        if ((byte & 0x80u) == 0) return value;
    }
    throw WireError(WireError::Kind::overlong_varint,
                    "unreachable varint state");
}

void encode_timestamp_into(std::span<const std::uint64_t> components,
                           std::vector<std::uint8_t>& out) {
    out.clear();
    encode_varint(components.size(), out);
    for (const std::uint64_t component : components) {
        encode_varint(component, out);
    }
}

std::vector<std::uint8_t> encode_timestamp(const VectorTimestamp& stamp) {
    std::vector<std::uint8_t> out;
    out.reserve(1 + stamp.width());
    encode_timestamp_into(stamp.components(), out);
    return out;
}

namespace {

/// Shared tail of the timestamp decoders: checks the declared width
/// against the destination, decodes into it, and requires the input to
/// end at the end of the components.
void decode_components_into(std::span<const std::uint8_t> bytes,
                            std::size_t& offset, std::uint64_t width,
                            std::span<std::uint64_t> out) {
    if (width != out.size()) {
        throw WireError(WireError::Kind::width_mismatch,
                        "timestamp width " + std::to_string(width) +
                            " does not match decomposition size " +
                            std::to_string(out.size()));
    }
    // Each component needs at least one byte; reject absurd widths before
    // touching the components.
    if (width > bytes.size() - offset) {
        throw WireError(WireError::Kind::length_mismatch,
                        "timestamp width exceeds available bytes");
    }
    for (auto& component : out) {
        component = decode_varint(bytes, offset);
    }
    if (offset != bytes.size()) {
        throw WireError(WireError::Kind::trailing_bytes,
                        "trailing bytes after encoded timestamp");
    }
}

}  // namespace

VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes) {
    std::size_t offset = 0;
    const std::uint64_t width = decode_varint(bytes, offset);
    // Pre-check as decode_components_into would, but against the declared
    // width itself (no expected width to compare to).
    if (width > bytes.size() - offset) {
        throw WireError(WireError::Kind::length_mismatch,
                        "timestamp width exceeds available bytes");
    }
    VectorTimestamp stamp(static_cast<std::size_t>(width));
    decode_components_into(bytes, offset, width, stamp.mutable_components());
    return stamp;
}

VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes,
                                 std::size_t expected_width) {
    VectorTimestamp stamp(expected_width);
    decode_timestamp_into(bytes, stamp.mutable_components());
    return stamp;
}

void decode_timestamp_into(std::span<const std::uint8_t> bytes,
                           std::span<std::uint64_t> out) {
    std::size_t offset = 0;
    const std::uint64_t width = decode_varint(bytes, offset);
    decode_components_into(bytes, offset, width, out);
}

namespace {

std::size_t varint_size(std::uint64_t value) noexcept {
    std::size_t size = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++size;
    }
    return size;
}

}  // namespace

std::size_t encoded_size(std::span<const std::uint64_t> components) {
    std::size_t total = varint_size(components.size());
    for (const std::uint64_t component : components) {
        total += varint_size(component);
    }
    return total;
}

std::size_t encoded_size(const VectorTimestamp& stamp) {
    return encoded_size(stamp.components());
}

namespace {

constexpr std::size_t kChecksumBytes = common::kChecksumTrailerBytes;

}  // namespace

void encode_frame_into(std::uint64_t sequence, std::uint64_t message,
                       std::span<const std::uint64_t> stamp,
                       std::vector<std::uint8_t>& out) {
    out.clear();
    encode_varint(sequence, out);
    encode_varint(message, out);
    encode_varint(stamp.size(), out);
    for (const std::uint64_t component : stamp) {
        encode_varint(component, out);
    }
    std::uint64_t checksum = fnv1a64(out);
    for (std::size_t i = 0; i < kChecksumBytes; ++i) {
        out.push_back(static_cast<std::uint8_t>(checksum));
        checksum >>= 8;
    }
}

std::vector<std::uint8_t> encode_frame(const SyncFrame& frame) {
    std::vector<std::uint8_t> out;
    out.reserve(2 + 1 + frame.stamp.width() + kChecksumBytes);
    encode_frame_into(frame.sequence, frame.message,
                      frame.stamp.components(), out);
    return out;
}

namespace {

/// Checksum gate shared by both frame versions: strips and validates the
/// 8-byte FNV-1a trailer, returning the covered payload.
std::span<const std::uint8_t> checked_payload(
    std::span<const std::uint8_t> bytes) {
    // Minimum v1 frame: three one-byte varints plus the checksum trailer.
    if (bytes.size() < 3 + kChecksumBytes) {
        throw WireError(WireError::Kind::truncated,
                        "frame shorter than header + checksum");
    }
    const std::span<const std::uint8_t> payload =
        bytes.first(bytes.size() - kChecksumBytes);
    std::uint64_t declared = 0;
    for (std::size_t i = 0; i < kChecksumBytes; ++i) {
        declared |= static_cast<std::uint64_t>(bytes[payload.size() + i])
                    << (8 * i);
    }
    if (fnv1a64(payload) != declared) {
        throw WireError(WireError::Kind::checksum_mismatch,
                        "frame checksum mismatch");
    }
    return payload;
}

/// Decodes the common frame body (sequence, message, timestamp) starting
/// at payload[offset]; used by both the v1 and the epoch-tagged decoder.
FrameHeader decode_frame_body(std::span<const std::uint8_t> payload,
                              std::size_t offset,
                              std::span<std::uint64_t> stamp_out) {
    FrameHeader header;
    header.sequence = decode_varint(payload, offset);
    header.message = decode_varint(payload, offset);
    const std::uint64_t width = decode_varint(payload, offset);
    if (width != stamp_out.size()) {
        throw WireError(WireError::Kind::width_mismatch,
                        "frame timestamp width " + std::to_string(width) +
                            " does not match decomposition size " +
                            std::to_string(stamp_out.size()));
    }
    if (width > payload.size() - offset) {
        throw WireError(WireError::Kind::length_mismatch,
                        "frame timestamp width exceeds available bytes");
    }
    for (auto& component : stamp_out) {
        component = decode_varint(payload, offset);
    }
    if (offset != payload.size()) {
        throw WireError(WireError::Kind::trailing_bytes,
                        "trailing bytes inside frame payload");
    }
    return header;
}

}  // namespace

FrameHeader decode_frame_into(std::span<const std::uint8_t> bytes,
                              std::span<std::uint64_t> stamp_out) {
    return decode_frame_body(checked_payload(bytes), 0, stamp_out);
}

void encode_epoch_frame_into(EpochId epoch, std::uint64_t sequence,
                             std::uint64_t message,
                             std::span<const std::uint64_t> stamp,
                             std::vector<std::uint8_t>& out) {
    SYNCTS_REQUIRE(sequence >= 1,
                   "epoch-aware frames need 1-based sequence numbers");
    if (epoch == 0) {
        // Back-compat rule: epoch-0 traffic is bit-identical to the
        // version-1 format, so pre-epoch peers interoperate unchanged.
        encode_frame_into(sequence, message, stamp, out);
        return;
    }
    out.clear();
    out.push_back(kEpochFrameMarker);
    encode_varint(kEpochFrameVersion, out);
    encode_varint(epoch, out);
    encode_varint(sequence, out);
    encode_varint(message, out);
    encode_varint(stamp.size(), out);
    for (const std::uint64_t component : stamp) {
        encode_varint(component, out);
    }
    std::uint64_t checksum = fnv1a64(out);
    for (std::size_t i = 0; i < kChecksumBytes; ++i) {
        out.push_back(static_cast<std::uint8_t>(checksum));
        checksum >>= 8;
    }
}

FrameHeader decode_epoch_frame_into(std::span<const std::uint8_t> bytes,
                                    std::span<std::uint64_t> stamp_out) {
    const std::span<const std::uint8_t> payload = checked_payload(bytes);
    if (payload[0] != kEpochFrameMarker) {
        return decode_frame_body(payload, 0, stamp_out);
    }
    std::size_t offset = 1;
    const std::uint64_t version = decode_varint(payload, offset);
    if (version != kEpochFrameVersion) {
        throw WireError(WireError::Kind::unsupported_version,
                        "unsupported frame version " +
                            std::to_string(version));
    }
    const std::uint64_t epoch = decode_varint(payload, offset);
    // Epoch 0 must use the v1 layout (the encoder enforces this), and
    // EpochId is 32-bit; anything else is from a future format.
    if (epoch == 0 || epoch > std::numeric_limits<EpochId>::max()) {
        throw WireError(WireError::Kind::unsupported_version,
                        "v2 frame carrying out-of-range epoch " +
                            std::to_string(epoch));
    }
    FrameHeader header = decode_frame_body(payload, offset, stamp_out);
    header.epoch = static_cast<EpochId>(epoch);
    return header;
}

FrameHeader peek_epoch_frame_header(std::span<const std::uint8_t> bytes) {
    const std::span<const std::uint8_t> payload = checked_payload(bytes);
    FrameHeader header;
    std::size_t offset = 0;
    if (payload[0] == kEpochFrameMarker) {
        offset = 1;
        const std::uint64_t version = decode_varint(payload, offset);
        if (version != kEpochFrameVersion) {
            throw WireError(WireError::Kind::unsupported_version,
                            "unsupported frame version " +
                                std::to_string(version));
        }
        const std::uint64_t epoch = decode_varint(payload, offset);
        if (epoch == 0 || epoch > std::numeric_limits<EpochId>::max()) {
            throw WireError(WireError::Kind::unsupported_version,
                            "v2 frame carrying out-of-range epoch " +
                                std::to_string(epoch));
        }
        header.epoch = static_cast<EpochId>(epoch);
    }
    header.sequence = decode_varint(payload, offset);
    header.message = decode_varint(payload, offset);
    // The remaining payload is the timestamp; its bytes are covered by the
    // validated checksum, so skipping them cannot hide corruption.
    return header;
}

SyncFrame decode_frame(std::span<const std::uint8_t> bytes,
                       std::size_t expected_width) {
    SyncFrame frame;
    frame.stamp = VectorTimestamp(expected_width);
    const FrameHeader header =
        decode_frame_into(bytes, frame.stamp.mutable_components());
    frame.sequence = header.sequence;
    frame.message = header.message;
    return frame;
}

// ---------------------------------------------------------------------------
// Delta frames (v3)

bool encode_delta_frame_into(EpochId epoch, std::uint64_t sequence,
                             std::uint64_t message,
                             std::span<const std::uint64_t> base,
                             std::span<const std::uint64_t> stamp,
                             std::vector<std::uint8_t>& out) {
    SYNCTS_REQUIRE(sequence >= 1,
                   "epoch-aware frames need 1-based sequence numbers");
    out.clear();
    if (base.size() != stamp.size()) return false;
    std::uint64_t changed = 0;
    for (std::size_t i = 0; i < stamp.size(); ++i) {
        if (stamp[i] < base[i]) return false;  // non-monotone: full resync
        if (stamp[i] != base[i]) ++changed;
    }
    out.push_back(kEpochFrameMarker);
    encode_varint(kDeltaFrameVersion, out);
    encode_varint(epoch, out);
    encode_varint(sequence, out);
    encode_varint(message, out);
    encode_varint(changed, out);
    for (std::size_t i = 0; i < stamp.size(); ++i) {
        if (stamp[i] == base[i]) continue;
        encode_varint(i, out);
        encode_varint(stamp[i] - base[i], out);
    }
    std::uint64_t checksum = fnv1a64(out);
    for (std::size_t i = 0; i < kChecksumBytes; ++i) {
        out.push_back(static_cast<std::uint8_t>(checksum));
        checksum >>= 8;
    }
    return true;
}

namespace {

/// Shared v3 header parse for the delta decoder and peek_frame_info:
/// payload[0] is already known to be the marker and the version already
/// consumed as kDeltaFrameVersion; reads epoch/sequence/message.
FrameHeader decode_delta_header(std::span<const std::uint8_t> payload,
                                std::size_t& offset) {
    FrameHeader header;
    const std::uint64_t epoch = decode_varint(payload, offset);
    if (epoch > std::numeric_limits<EpochId>::max()) {
        throw WireError(WireError::Kind::unsupported_version,
                        "delta frame carrying out-of-range epoch " +
                            std::to_string(epoch));
    }
    header.epoch = static_cast<EpochId>(epoch);
    header.sequence = decode_varint(payload, offset);
    header.message = decode_varint(payload, offset);
    return header;
}

}  // namespace

FrameHeader decode_delta_frame_into(std::span<const std::uint8_t> bytes,
                                    std::span<const std::uint64_t> base,
                                    std::span<std::uint64_t> stamp_out) {
    SYNCTS_REQUIRE(base.size() == stamp_out.size(),
                   "delta decode needs base and output of equal width");
    const std::span<const std::uint8_t> payload = checked_payload(bytes);
    if (payload[0] != kEpochFrameMarker) {
        throw WireError(WireError::Kind::unsupported_version,
                        "v1 frame fed to the delta decoder");
    }
    std::size_t offset = 1;
    const std::uint64_t version = decode_varint(payload, offset);
    if (version != kDeltaFrameVersion) {
        throw WireError(WireError::Kind::unsupported_version,
                        "non-delta frame version " + std::to_string(version) +
                            " fed to the delta decoder");
    }
    const FrameHeader header = decode_delta_header(payload, offset);
    const std::uint64_t count = decode_varint(payload, offset);
    if (count > stamp_out.size()) {
        throw WireError(WireError::Kind::width_mismatch,
                        "delta pair count " + std::to_string(count) +
                            " exceeds decomposition size " +
                            std::to_string(stamp_out.size()));
    }
    // Each pair needs at least two bytes; reject absurd counts before
    // touching the pairs (mirrors the width pre-check of the full decoder).
    if (count > (payload.size() - offset) / 2) {
        throw WireError(WireError::Kind::length_mismatch,
                        "delta pair count exceeds available bytes");
    }
    // Apply over the base, enforcing strictly increasing in-range indices
    // so a pair cannot target a component twice or out of bounds.
    if (stamp_out.data() != base.data()) {
        std::copy(base.begin(), base.end(), stamp_out.begin());
    }
    std::uint64_t next_index = 0;
    for (std::uint64_t pair = 0; pair < count; ++pair) {
        const std::uint64_t index = decode_varint(payload, offset);
        if (index < next_index || index >= stamp_out.size()) {
            throw WireError(WireError::Kind::length_mismatch,
                            "delta pair index " + std::to_string(index) +
                                " out of order or out of range");
        }
        next_index = index + 1;
        stamp_out[index] += decode_varint(payload, offset);
    }
    if (offset != payload.size()) {
        throw WireError(WireError::Kind::trailing_bytes,
                        "trailing bytes inside delta frame payload");
    }
    return header;
}

FrameInfo peek_frame_info(std::span<const std::uint8_t> bytes) {
    const std::span<const std::uint8_t> payload = checked_payload(bytes);
    FrameInfo info;
    std::size_t offset = 0;
    if (payload[0] == kEpochFrameMarker) {
        offset = 1;
        info.version = decode_varint(payload, offset);
        if (info.version == kEpochFrameVersion) {
            const std::uint64_t epoch = decode_varint(payload, offset);
            if (epoch == 0 || epoch > std::numeric_limits<EpochId>::max()) {
                throw WireError(WireError::Kind::unsupported_version,
                                "v2 frame carrying out-of-range epoch " +
                                    std::to_string(epoch));
            }
            info.header.epoch = static_cast<EpochId>(epoch);
        } else if (info.version == kDeltaFrameVersion) {
            info.delta = true;
            const FrameHeader header = decode_delta_header(payload, offset);
            info.header = header;
            return info;
        } else {
            throw WireError(WireError::Kind::unsupported_version,
                            "unsupported frame version " +
                                std::to_string(info.version));
        }
    }
    info.header.sequence = decode_varint(payload, offset);
    info.header.message = decode_varint(payload, offset);
    return info;
}

// ---------------------------------------------------------------------------
// Batch containers (v4)

BatchFrame::~BatchFrame() {
    if (pool_ != nullptr && slab_) pool_->release(std::move(slab_));
}

std::uint8_t* BatchFrame::scratch() noexcept {
    return pool_ != nullptr
               ? reinterpret_cast<std::uint8_t*>(slab_.words.get())
               : heap_.data();
}

const std::uint8_t* BatchFrame::scratch() const noexcept {
    return pool_ != nullptr
               ? reinterpret_cast<const std::uint8_t*>(slab_.words.get())
               : heap_.data();
}

void BatchFrame::reserve_scratch(std::size_t bytes) {
    if (pool_ == nullptr) {
        if (heap_.size() < bytes) heap_.resize(bytes);
        return;
    }
    const std::size_t have = slab_.capacity_words * sizeof(std::uint64_t);
    if (have >= bytes) return;
    Slab grown = pool_->acquire((bytes + sizeof(std::uint64_t) - 1) /
                                sizeof(std::uint64_t));
    if (slab_) {
        std::memcpy(grown.words.get(), slab_.words.get(), used_);
        pool_->release(std::move(slab_));
    }
    slab_ = std::move(grown);
}

void BatchFrame::clear() noexcept {
    slots_.clear();
    used_ = 0;
    live_ = 0;
    pending_bytes_ = 0;
}

void BatchFrame::add(std::uint64_t kind, std::uint64_t tag,
                     std::span<const std::uint8_t> body) {
    reserve_scratch(used_ + body.size());
    if (!body.empty()) std::memcpy(scratch() + used_, body.data(), body.size());
    slots_.push_back(Slot{kind, tag, used_, body.size(), true});
    used_ += body.size();
    ++live_;
    pending_bytes_ += body.size();
}

bool BatchFrame::supersede(std::uint64_t kind, std::uint64_t tag) noexcept {
    for (std::size_t i = slots_.size(); i-- > 0;) {
        Slot& slot = slots_[i];
        if (!slot.live || slot.kind != kind || slot.tag != tag) continue;
        slot.live = false;
        --live_;
        pending_bytes_ -= slot.length;
        return true;
    }
    return false;
}

BatchFrame::Entry BatchFrame::front() const {
    for (const Slot& slot : slots_) {
        if (!slot.live) continue;
        return Entry{slot.kind, slot.tag,
                     {scratch() + slot.offset, slot.length}};
    }
    SYNCTS_REQUIRE(false, "front() on an empty batch");
    return Entry{};
}

void BatchFrame::encode_batch_into(std::vector<std::uint8_t>& out) const {
    SYNCTS_REQUIRE(!empty(), "encoding an empty batch container");
    out.clear();
    out.push_back(kEpochFrameMarker);
    encode_varint(kBatchFrameVersion, out);
    encode_varint(live_, out);
    for (const Slot& slot : slots_) {
        if (!slot.live) continue;
        encode_varint(slot.kind, out);
        encode_varint(slot.tag, out);
        encode_varint(slot.length, out);
        out.insert(out.end(), scratch() + slot.offset,
                   scratch() + slot.offset + slot.length);
    }
    common::append_checksum_trailer(out);
}

BatchReader::BatchReader(std::span<const std::uint8_t> bytes) {
    // Minimum container: marker, version, count, trailer.
    if (bytes.size() < 3 + kChecksumBytes) {
        throw WireError(WireError::Kind::truncated,
                        "batch container shorter than header + checksum");
    }
    payload_ = bytes.first(bytes.size() - kChecksumBytes);
    const std::uint64_t declared_checksum =
        common::read_checksum_trailer(bytes, payload_.size());
    // The outer checksum is advisory: every entry body is itself a
    // complete checksummed frame, so a flipped bit inside one entry must
    // spoil only that entry, not the container. A mismatch is recorded
    // (intact() == false) and iteration proceeds; structural damage to
    // the entry table still throws from next().
    intact_ = fnv1a64(payload_) == declared_checksum;
    if (payload_[0] != kEpochFrameMarker) {
        throw WireError(WireError::Kind::unsupported_version,
                        "buffer is not a batch container");
    }
    offset_ = 1;
    const std::uint64_t version = decode_varint(payload_, offset_);
    if (version != kBatchFrameVersion) {
        throw WireError(WireError::Kind::unsupported_version,
                        "unsupported batch container version " +
                            std::to_string(version));
    }
    declared_ = decode_varint(payload_, offset_);
}

bool BatchReader::next(BatchFrame::Entry& out) {
    if (yielded_ >= declared_ || offset_ >= payload_.size()) {
        if (yielded_ < declared_ && offset_ >= payload_.size()) {
            throw WireError(WireError::Kind::truncated,
                            "batch container ends before its declared " +
                                std::to_string(declared_) + " entries");
        }
        return false;
    }
    out.kind = decode_varint(payload_, offset_);
    out.tag = decode_varint(payload_, offset_);
    const std::uint64_t length = decode_varint(payload_, offset_);
    if (length > payload_.size() - offset_) {
        throw WireError(WireError::Kind::length_mismatch,
                        "batch entry length exceeds container");
    }
    out.body = payload_.subspan(offset_, static_cast<std::size_t>(length));
    offset_ += static_cast<std::size_t>(length);
    ++yielded_;
    return true;
}

}  // namespace syncts
