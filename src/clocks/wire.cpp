#include "clocks/wire.hpp"

#include <limits>
#include <utility>

#include "common/check.hpp"

namespace syncts {

void encode_varint(std::uint64_t value, std::vector<std::uint8_t>& out) {
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t decode_varint(std::span<const std::uint8_t> bytes,
                            std::size_t& offset) {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (offset >= bytes.size()) {
            throw WireError(WireError::Kind::truncated, "truncated varint");
        }
        const std::uint8_t byte = bytes[offset++];
        if (shift >= 64) {
            throw WireError(WireError::Kind::overlong_varint,
                            "varint longer than 64 bits");
        }
        value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
        if ((byte & 0x80u) == 0) return value;
    }
    throw WireError(WireError::Kind::overlong_varint,
                    "unreachable varint state");
}

void encode_timestamp_into(std::span<const std::uint64_t> components,
                           std::vector<std::uint8_t>& out) {
    out.clear();
    encode_varint(components.size(), out);
    for (const std::uint64_t component : components) {
        encode_varint(component, out);
    }
}

std::vector<std::uint8_t> encode_timestamp(const VectorTimestamp& stamp) {
    std::vector<std::uint8_t> out;
    out.reserve(1 + stamp.width());
    encode_timestamp_into(stamp.components(), out);
    return out;
}

namespace {

/// Shared tail of the timestamp decoders: checks the declared width
/// against the destination, decodes into it, and requires the input to
/// end at the end of the components.
void decode_components_into(std::span<const std::uint8_t> bytes,
                            std::size_t& offset, std::uint64_t width,
                            std::span<std::uint64_t> out) {
    if (width != out.size()) {
        throw WireError(WireError::Kind::width_mismatch,
                        "timestamp width " + std::to_string(width) +
                            " does not match decomposition size " +
                            std::to_string(out.size()));
    }
    // Each component needs at least one byte; reject absurd widths before
    // touching the components.
    if (width > bytes.size() - offset) {
        throw WireError(WireError::Kind::length_mismatch,
                        "timestamp width exceeds available bytes");
    }
    for (auto& component : out) {
        component = decode_varint(bytes, offset);
    }
    if (offset != bytes.size()) {
        throw WireError(WireError::Kind::trailing_bytes,
                        "trailing bytes after encoded timestamp");
    }
}

}  // namespace

VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes) {
    std::size_t offset = 0;
    const std::uint64_t width = decode_varint(bytes, offset);
    // Pre-check as decode_components_into would, but against the declared
    // width itself (no expected width to compare to).
    if (width > bytes.size() - offset) {
        throw WireError(WireError::Kind::length_mismatch,
                        "timestamp width exceeds available bytes");
    }
    VectorTimestamp stamp(static_cast<std::size_t>(width));
    decode_components_into(bytes, offset, width, stamp.mutable_components());
    return stamp;
}

VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes,
                                 std::size_t expected_width) {
    VectorTimestamp stamp(expected_width);
    decode_timestamp_into(bytes, stamp.mutable_components());
    return stamp;
}

void decode_timestamp_into(std::span<const std::uint8_t> bytes,
                           std::span<std::uint64_t> out) {
    std::size_t offset = 0;
    const std::uint64_t width = decode_varint(bytes, offset);
    decode_components_into(bytes, offset, width, out);
}

namespace {

std::size_t varint_size(std::uint64_t value) noexcept {
    std::size_t size = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++size;
    }
    return size;
}

}  // namespace

std::size_t encoded_size(std::span<const std::uint64_t> components) {
    std::size_t total = varint_size(components.size());
    for (const std::uint64_t component : components) {
        total += varint_size(component);
    }
    return total;
}

std::size_t encoded_size(const VectorTimestamp& stamp) {
    return encoded_size(stamp.components());
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (const std::uint8_t byte : bytes) {
        hash ^= byte;
        hash *= 0x100000001B3ull;
    }
    return hash;
}

namespace {

constexpr std::size_t kChecksumBytes = 8;

}  // namespace

void encode_frame_into(std::uint64_t sequence, std::uint64_t message,
                       std::span<const std::uint64_t> stamp,
                       std::vector<std::uint8_t>& out) {
    out.clear();
    encode_varint(sequence, out);
    encode_varint(message, out);
    encode_varint(stamp.size(), out);
    for (const std::uint64_t component : stamp) {
        encode_varint(component, out);
    }
    std::uint64_t checksum = fnv1a64(out);
    for (std::size_t i = 0; i < kChecksumBytes; ++i) {
        out.push_back(static_cast<std::uint8_t>(checksum));
        checksum >>= 8;
    }
}

std::vector<std::uint8_t> encode_frame(const SyncFrame& frame) {
    std::vector<std::uint8_t> out;
    out.reserve(2 + 1 + frame.stamp.width() + kChecksumBytes);
    encode_frame_into(frame.sequence, frame.message,
                      frame.stamp.components(), out);
    return out;
}

namespace {

/// Checksum gate shared by both frame versions: strips and validates the
/// 8-byte FNV-1a trailer, returning the covered payload.
std::span<const std::uint8_t> checked_payload(
    std::span<const std::uint8_t> bytes) {
    // Minimum v1 frame: three one-byte varints plus the checksum trailer.
    if (bytes.size() < 3 + kChecksumBytes) {
        throw WireError(WireError::Kind::truncated,
                        "frame shorter than header + checksum");
    }
    const std::span<const std::uint8_t> payload =
        bytes.first(bytes.size() - kChecksumBytes);
    std::uint64_t declared = 0;
    for (std::size_t i = 0; i < kChecksumBytes; ++i) {
        declared |= static_cast<std::uint64_t>(bytes[payload.size() + i])
                    << (8 * i);
    }
    if (fnv1a64(payload) != declared) {
        throw WireError(WireError::Kind::checksum_mismatch,
                        "frame checksum mismatch");
    }
    return payload;
}

/// Decodes the common frame body (sequence, message, timestamp) starting
/// at payload[offset]; used by both the v1 and the epoch-tagged decoder.
FrameHeader decode_frame_body(std::span<const std::uint8_t> payload,
                              std::size_t offset,
                              std::span<std::uint64_t> stamp_out) {
    FrameHeader header;
    header.sequence = decode_varint(payload, offset);
    header.message = decode_varint(payload, offset);
    const std::uint64_t width = decode_varint(payload, offset);
    if (width != stamp_out.size()) {
        throw WireError(WireError::Kind::width_mismatch,
                        "frame timestamp width " + std::to_string(width) +
                            " does not match decomposition size " +
                            std::to_string(stamp_out.size()));
    }
    if (width > payload.size() - offset) {
        throw WireError(WireError::Kind::length_mismatch,
                        "frame timestamp width exceeds available bytes");
    }
    for (auto& component : stamp_out) {
        component = decode_varint(payload, offset);
    }
    if (offset != payload.size()) {
        throw WireError(WireError::Kind::trailing_bytes,
                        "trailing bytes inside frame payload");
    }
    return header;
}

}  // namespace

FrameHeader decode_frame_into(std::span<const std::uint8_t> bytes,
                              std::span<std::uint64_t> stamp_out) {
    return decode_frame_body(checked_payload(bytes), 0, stamp_out);
}

void encode_epoch_frame_into(EpochId epoch, std::uint64_t sequence,
                             std::uint64_t message,
                             std::span<const std::uint64_t> stamp,
                             std::vector<std::uint8_t>& out) {
    SYNCTS_REQUIRE(sequence >= 1,
                   "epoch-aware frames need 1-based sequence numbers");
    if (epoch == 0) {
        // Back-compat rule: epoch-0 traffic is bit-identical to the
        // version-1 format, so pre-epoch peers interoperate unchanged.
        encode_frame_into(sequence, message, stamp, out);
        return;
    }
    out.clear();
    out.push_back(kEpochFrameMarker);
    encode_varint(kEpochFrameVersion, out);
    encode_varint(epoch, out);
    encode_varint(sequence, out);
    encode_varint(message, out);
    encode_varint(stamp.size(), out);
    for (const std::uint64_t component : stamp) {
        encode_varint(component, out);
    }
    std::uint64_t checksum = fnv1a64(out);
    for (std::size_t i = 0; i < kChecksumBytes; ++i) {
        out.push_back(static_cast<std::uint8_t>(checksum));
        checksum >>= 8;
    }
}

FrameHeader decode_epoch_frame_into(std::span<const std::uint8_t> bytes,
                                    std::span<std::uint64_t> stamp_out) {
    const std::span<const std::uint8_t> payload = checked_payload(bytes);
    if (payload[0] != kEpochFrameMarker) {
        return decode_frame_body(payload, 0, stamp_out);
    }
    std::size_t offset = 1;
    const std::uint64_t version = decode_varint(payload, offset);
    if (version != kEpochFrameVersion) {
        throw WireError(WireError::Kind::unsupported_version,
                        "unsupported frame version " +
                            std::to_string(version));
    }
    const std::uint64_t epoch = decode_varint(payload, offset);
    // Epoch 0 must use the v1 layout (the encoder enforces this), and
    // EpochId is 32-bit; anything else is from a future format.
    if (epoch == 0 || epoch > std::numeric_limits<EpochId>::max()) {
        throw WireError(WireError::Kind::unsupported_version,
                        "v2 frame carrying out-of-range epoch " +
                            std::to_string(epoch));
    }
    FrameHeader header = decode_frame_body(payload, offset, stamp_out);
    header.epoch = static_cast<EpochId>(epoch);
    return header;
}

FrameHeader peek_epoch_frame_header(std::span<const std::uint8_t> bytes) {
    const std::span<const std::uint8_t> payload = checked_payload(bytes);
    FrameHeader header;
    std::size_t offset = 0;
    if (payload[0] == kEpochFrameMarker) {
        offset = 1;
        const std::uint64_t version = decode_varint(payload, offset);
        if (version != kEpochFrameVersion) {
            throw WireError(WireError::Kind::unsupported_version,
                            "unsupported frame version " +
                                std::to_string(version));
        }
        const std::uint64_t epoch = decode_varint(payload, offset);
        if (epoch == 0 || epoch > std::numeric_limits<EpochId>::max()) {
            throw WireError(WireError::Kind::unsupported_version,
                            "v2 frame carrying out-of-range epoch " +
                                std::to_string(epoch));
        }
        header.epoch = static_cast<EpochId>(epoch);
    }
    header.sequence = decode_varint(payload, offset);
    header.message = decode_varint(payload, offset);
    // The remaining payload is the timestamp; its bytes are covered by the
    // validated checksum, so skipping them cannot hide corruption.
    return header;
}

SyncFrame decode_frame(std::span<const std::uint8_t> bytes,
                       std::size_t expected_width) {
    SyncFrame frame;
    frame.stamp = VectorTimestamp(expected_width);
    const FrameHeader header =
        decode_frame_into(bytes, frame.stamp.mutable_components());
    frame.sequence = header.sequence;
    frame.message = header.message;
    return frame;
}

}  // namespace syncts
