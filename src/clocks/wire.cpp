#include "clocks/wire.hpp"

#include "common/check.hpp"

namespace syncts {

void encode_varint(std::uint64_t value, std::vector<std::uint8_t>& out) {
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t decode_varint(std::span<const std::uint8_t> bytes,
                            std::size_t& offset) {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        SYNCTS_REQUIRE(offset < bytes.size(), "truncated varint");
        const std::uint8_t byte = bytes[offset++];
        SYNCTS_REQUIRE(shift < 64, "varint longer than 64 bits");
        value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
        if ((byte & 0x80u) == 0) return value;
    }
    throw std::invalid_argument("unreachable varint state");
}

std::vector<std::uint8_t> encode_timestamp(const VectorTimestamp& stamp) {
    std::vector<std::uint8_t> out;
    out.reserve(1 + stamp.width());
    encode_varint(stamp.width(), out);
    for (const std::uint64_t component : stamp.components()) {
        encode_varint(component, out);
    }
    return out;
}

VectorTimestamp decode_timestamp(std::span<const std::uint8_t> bytes) {
    std::size_t offset = 0;
    const std::uint64_t width = decode_varint(bytes, offset);
    // Each component needs at least one byte; reject absurd widths before
    // allocating.
    SYNCTS_REQUIRE(width <= bytes.size() - offset,
                   "timestamp width exceeds available bytes");
    std::vector<std::uint64_t> components(static_cast<std::size_t>(width));
    for (auto& component : components) {
        component = decode_varint(bytes, offset);
    }
    SYNCTS_REQUIRE(offset == bytes.size(),
                   "trailing bytes after encoded timestamp");
    return VectorTimestamp(std::move(components));
}

std::size_t encoded_size(const VectorTimestamp& stamp) {
    const auto varint_size = [](std::uint64_t value) {
        std::size_t size = 1;
        while (value >= 0x80) {
            value >>= 7;
            ++size;
        }
        return size;
    };
    std::size_t total = varint_size(stamp.width());
    for (const std::uint64_t component : stamp.components()) {
        total += varint_size(component);
    }
    return total;
}

}  // namespace syncts
