#include "clocks/plausible_clock.hpp"

#include "common/check.hpp"
#include "poset/poset.hpp"

namespace syncts {

PlausibleTimestamper::PlausibleTimestamper(std::size_t num_processes,
                                           std::size_t width)
    : width_(width), clocks_(num_processes, VectorTimestamp(width)) {
    SYNCTS_REQUIRE(width >= 1, "plausible clock needs at least one component");
}

VectorTimestamp PlausibleTimestamper::timestamp_message(ProcessId sender,
                                                        ProcessId receiver) {
    SYNCTS_REQUIRE(sender < clocks_.size() && receiver < clocks_.size(),
                   "process id out of range");
    SYNCTS_REQUIRE(sender != receiver, "no self-messages");
    VectorTimestamp merged = clocks_[sender];
    merged.join(clocks_[receiver]);
    merged.increment(sender % width_);
    // When both participants fold onto one component, a single tick
    // already distinguishes the message from its predecessors.
    if (sender % width_ != receiver % width_) {
        merged.increment(receiver % width_);
    }
    clocks_[sender] = merged;
    clocks_[receiver] = merged;
    return merged;
}

std::vector<VectorTimestamp> PlausibleTimestamper::timestamp_computation(
    const SyncComputation& computation) {
    SYNCTS_REQUIRE(computation.num_processes() == clocks_.size(),
                   "computation size does not match the timestamper");
    std::vector<VectorTimestamp> stamps;
    stamps.reserve(computation.num_messages());
    for (const SyncMessage& m : computation.messages()) {
        stamps.push_back(timestamp_message(m.sender, m.receiver));
    }
    return stamps;
}

double concurrency_accuracy(const Poset& truth,
                            std::span<const VectorTimestamp> stamps) {
    SYNCTS_REQUIRE(truth.size() == stamps.size(),
                   "one stamp per poset element required");
    std::size_t concurrent_pairs = 0;
    std::size_t recognized = 0;
    for (std::size_t a = 0; a < stamps.size(); ++a) {
        for (std::size_t b = a + 1; b < stamps.size(); ++b) {
            if (!truth.incomparable(a, b)) continue;
            ++concurrent_pairs;
            if (stamps[a].concurrent_with(stamps[b])) ++recognized;
        }
    }
    if (concurrent_pairs == 0) return 1.0;
    return static_cast<double>(recognized) /
           static_cast<double>(concurrent_pairs);
}

}  // namespace syncts
