#pragma once

#include <cstddef>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "trace/computation.hpp"

/// \file fm_sync_clock.hpp
/// Baseline: Fidge–Mattern vector clocks specialized to synchronous
/// messages, with one component per *process* (width N).
///
/// At a rendezvous between Pi and Pj both processes take the component-wise
/// maximum of their vectors and increment both participants' components;
/// the common result is the message timestamp. This is the natural FM
/// adaptation the paper compares against: it characterizes ↦ exactly, but
/// its vectors are always N wide, whereas the online algorithm needs only
/// the decomposition size d ≤ min(β(G), N−2).

namespace syncts {

class FmSyncTimestamper {
public:
    explicit FmSyncTimestamper(std::size_t num_processes);

    /// Timestamp width == number of processes.
    std::size_t width() const noexcept { return clocks_.size(); }

    /// Executes one rendezvous and returns the message timestamp.
    VectorTimestamp timestamp_message(ProcessId sender, ProcessId receiver);

    /// Runs the whole computation; result[id] is message id's timestamp.
    std::vector<VectorTimestamp> timestamp_computation(
        const SyncComputation& computation);

    const VectorTimestamp& clock(ProcessId p) const;

private:
    std::vector<VectorTimestamp> clocks_;
};

/// One-shot convenience over a recorded computation.
std::vector<VectorTimestamp> fm_sync_timestamps(
    const SyncComputation& computation);

}  // namespace syncts
