#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/timestamp_arena.hpp"
#include "clocks/vector_timestamp.hpp"
#include "decomp/edge_decomposition.hpp"
#include "topo/epoch.hpp"
#include "trace/computation.hpp"

/// \file clock_engine.hpp
/// The unified clock interface: every timestamping scheme in the library —
/// the paper's online algorithm (Fig. 5), the Fidge–Mattern sync and event
/// baselines, Lamport scalar clocks, Fowler–Zwaenepoel direct-dependency
/// tracking, and the offline realizer algorithm (Fig. 9) — is driven
/// through the same protocol hooks and the same batch driver.
///
/// The hooks mirror what a real transport does per rendezvous and are
/// strictly non-allocating: the caller provides the output slots (arena
/// rows or scratch spans of width() words) and the engine writes
/// components into them. One rendezvous between Pi and Pj is always the
/// three-step dance of Fig. 5:
///
///     prepare_send(i, piggy)            // sender's vector onto the wire
///     on_receive(i, j, piggy, ack, ts)  // receiver merges, stamps, acks
///     on_ack(i, j, ack, ts')            // sender merges; ts' == ts
///
/// with on_internal() ticking the families whose internal events carry
/// stamps (Lamport, FM event clocks). Batch-only engines (offline Fig. 9)
/// report online() == false and implement only the computation drivers.
///
/// See docs/INTERNALS.md for the full interface contract.

namespace syncts {

/// Every clock family behind the unified interface.
enum class ClockFamily {
    online,             ///< Fig. 5, width d (edge-decomposition size)
    fm_sync,            ///< Fidge–Mattern sync messages, width N
    fm_event,           ///< classic FM event clocks, width N
    lamport,            ///< scalar clocks, width 1
    direct_dependency,  ///< Fowler–Zwaenepoel, width 2 (prev-message pair)
    offline,            ///< Fig. 9 realizer, width = width(M, ↦)
};

const char* to_string(ClockFamily family) noexcept;

/// A stamped computation: the arena holding every component slab plus the
/// per-message (and, for families that stamp them, per-internal-event)
/// slot handles.
struct EngineStamps {
    TimestampArena arena;
    /// message_stamps[m] — arena slot of message m's timestamp.
    std::vector<TsHandle> message_stamps;
    /// internal_stamps[i] — arena slot of internal event i's stamp; empty
    /// unless the engine stamps internal events (Lamport, FM event).
    std::vector<TsHandle> internal_stamps;

    /// Materializes the message stamps as owning values (compat shim for
    /// diagram/trace-IO/tooling surfaces).
    std::vector<VectorTimestamp> materialize_messages() const;
};

class ClockEngine {
public:
    virtual ~ClockEngine() = default;

    virtual ClockFamily family() const noexcept = 0;

    /// Components per timestamp. Offline engines report the width of the
    /// most recently stamped computation (0 before any).
    virtual std::size_t width() const noexcept = 0;

    virtual std::size_t num_processes() const noexcept = 0;

    /// False for batch-only engines whose protocol hooks throw.
    virtual bool online() const noexcept { return true; }

    /// True when internal events carry stamps (Lamport, FM event clocks).
    virtual bool stamps_internal_events() const noexcept { return false; }

    /// Returns every process clock to its initial all-zero state, drops
    /// the accumulated epoch floor, and rewinds epoch() to 0 (the engine
    /// behaves as if freshly constructed on its current topology).
    virtual void reset() = 0;

    /// Re-targets the engine at `decomposition` as if freshly constructed
    /// on it — zero clocks, empty floor, epoch 0 — while reusing existing
    /// buffer capacity wherever the shapes allow. This is the EngineStock
    /// recycling hook (docs/MEMORY.md): lease + rebind replaces a heap
    /// construction per epoch/rejoin with an O(width) reset. Stamping
    /// after rebind is bit-identical to a fresh
    /// make_clock_engine(family(), decomposition) engine.
    virtual void rebind(
        std::shared_ptr<const EdgeDecomposition> decomposition) = 0;

    // ---- Epoch transitions (docs/TOPOLOGY.md) -------------------------

    /// Epoch this engine currently stamps in (0 until the first
    /// on_epoch call after construction or reset()).
    EpochId epoch() const noexcept { return epoch_; }

    /// Crosses one epoch boundary. The engine (1) captures this epoch's
    /// high-water mark (the component-wise maximum over its process
    /// vectors), (2) folds it into the accumulated absolute floor and
    /// migrates the floor into the new component space via the
    /// transition's rule (preserved components carry, rebuilt ones start
    /// at zero), and (3) rebuilds per-process state for transition.to,
    /// reset to zero. Afterwards width()/num_processes() reflect the new
    /// topology and stamping is bit-identical to a fresh engine on it —
    /// the absolute history of a surviving component is epoch_floor()
    /// plus its per-epoch value. Requires epoch() == transition.from_epoch.
    virtual void on_epoch(const EpochTransition& transition);

    /// Accumulated absolute floor of the current epoch: what the
    /// transition chain carried into the current component space. Empty
    /// until the first transition and for families whose stamps are
    /// identifiers rather than counters (direct_dependency) or that are
    /// batch-only (offline).
    std::span<const std::uint64_t> epoch_floor() const noexcept {
        return floor_;
    }

    // ---- Crash-recovery state capture (docs/RECOVERY.md) --------------

    /// Serializes the engine's complete mutable state — family tag,
    /// epoch, accumulated floor, and the family payload — as a versioned
    /// byte frame trailed by an FNV-1a 64 checksum, appended to `out`.
    /// An engine restored from these bytes stamps bit-identically to
    /// this one from the capture point on.
    void save_state(std::vector<std::uint8_t>& out) const;

    /// Convenience form of save_state into a fresh buffer.
    std::vector<std::uint8_t> save_state() const;

    /// Restores the state captured by save_state. The engine must have
    /// been built for the same topology shape the saver had at capture
    /// time (same family; payload sized to this engine's process count
    /// and width). Throws WireError on framing or checksum damage and
    /// std::invalid_argument on family or shape mismatch.
    void restore_state(std::span<const std::uint8_t> bytes);

    // ---- Instrumentation ----------------------------------------------

    /// Registers this engine's metrics: `clock_<family>_stamps` (messages
    /// stamped), `clock_<family>_internal_ticks` (internal-event hook
    /// calls during replay), and the `clock_width` gauge. Registration
    /// allocates; the per-stamp cost afterwards is one branch + relaxed
    /// add, so the non-allocating hook contract is preserved. The
    /// registry must outlive the engine.
    void attach_metrics(obs::MetricsRegistry& registry);

    /// Reverts to uninstrumented operation.
    void detach_metrics() noexcept;

    // ---- Non-allocating protocol hooks -------------------------------
    // All spans must hold exactly width() words unless stated otherwise.

    /// Writes the vector to piggyback on a message from `sender`
    /// (Fig. 5 line (02)).
    virtual void prepare_send(ProcessId sender,
                              std::span<std::uint64_t> out) = 0;

    /// Receiver side of the rendezvous (Fig. 5 lines (03)-(07)): writes
    /// the acknowledgement vector (the receiver's state *before* the
    /// merge) into `ack_out` and the message timestamp into `stamp_out`.
    virtual void on_receive(ProcessId sender, ProcessId receiver,
                            std::span<const std::uint64_t> piggyback,
                            std::span<std::uint64_t> ack_out,
                            std::span<std::uint64_t> stamp_out) = 0;

    /// Sender side (Fig. 5 lines (08)-(11)): merges the acknowledgement
    /// and writes the (identical) message timestamp into `stamp_out`.
    virtual void on_ack(ProcessId sender, ProcessId receiver,
                        std::span<const std::uint64_t> acknowledgement,
                        std::span<std::uint64_t> stamp_out) = 0;

    /// Internal event on `process`. `stamp_out` must hold width() words
    /// when stamps_internal_events(), and may be empty otherwise. Default:
    /// no-op (internal events are invisible to message-only families).
    virtual void on_internal(ProcessId process,
                             std::span<std::uint64_t> stamp_out);

    // ---- Drivers ------------------------------------------------------

    /// One full rendezvous into a fresh slot of `arena` (whose width must
    /// equal width()). Uses per-engine scratch; zero steady-state
    /// allocations once the arena has capacity.
    TsHandle timestamp_message(ProcessId sender, ProcessId receiver,
                               TimestampArena& arena);

    /// Replays the whole computation (messages and internal events, in
    /// instant order) and stamps every message into `arena`. Returns the
    /// slot handles by MessageId.
    virtual std::vector<TsHandle> stamp_messages(
        const SyncComputation& computation, TimestampArena& arena);

    /// As stamp_messages, but into a fresh arena and also stamping
    /// internal events for the families that do.
    virtual EngineStamps stamp_computation(const SyncComputation& computation);

    /// Compat shim: materialized owning timestamps, one per message.
    std::vector<VectorTimestamp> timestamp_computation_legacy(
        const SyncComputation& computation);

protected:
    /// Shared replay loop: walks the computation in instant order, calling
    /// on_internal at each internal event and the three rendezvous hooks
    /// per message. `internal_out` null ⇒ internal stamps are not
    /// collected (the hooks still tick).
    void replay(const SyncComputation& computation, TimestampArena& arena,
                std::vector<TsHandle>& message_out,
                std::vector<TsHandle>* internal_out);

    /// Floor bookkeeping shared by the on_epoch overrides: adds the
    /// current floor onto `high_water` (this epoch's relative maximum, in
    /// the *old* space), migrates the sum into the new space with the
    /// transition's component rule (`by_process` false) or process rule
    /// (true), stores it as the new floor, and advances epoch(). Checks
    /// that the transition continues this engine's epoch.
    void fold_epoch_floor(const EpochTransition& transition,
                          std::span<const std::uint64_t> high_water,
                          bool by_process);

    /// For families without floor semantics: just validates continuity
    /// and advances epoch().
    void advance_epoch(const EpochTransition& transition);

    /// Appends the family-specific mutable state as 64-bit words — the
    /// save_state payload. The base class frames it together with the
    /// epoch and floor, so overrides write raw clock words only.
    virtual void save_payload(std::vector<std::uint64_t>& out) const = 0;

    /// Inverse of save_payload. Throws std::invalid_argument when the
    /// word count does not fit this engine's topology shape.
    virtual void restore_payload(std::span<const std::uint64_t> payload) = 0;

    /// Accumulated absolute floor, indexed like the current width() (may
    /// be empty). Cleared by reset().
    std::vector<std::uint64_t> floor_;

    /// Current epoch id; cleared by reset().
    EpochId epoch_ = 0;

    /// Stamp/tick counters for the drivers; nullptr when detached.
    obs::Counter* metric_stamps_ = nullptr;
    obs::Counter* metric_internal_ = nullptr;
    obs::Gauge* metric_width_ = nullptr;

private:
    // Scratch for the rendezvous drivers (piggyback, ack, sender echo).
    std::vector<std::uint64_t> scratch_piggy_;
    std::vector<std::uint64_t> scratch_ack_;
    std::vector<std::uint64_t> scratch_echo_;
};

/// Engine factory. The decomposition fixes the topology (so N) for every
/// family; only ClockFamily::online uses its groups. The offline engine
/// captures `num_processes` for the Theorem 8 bound report.
std::unique_ptr<ClockEngine> make_clock_engine(
    ClockFamily family,
    std::shared_ptr<const EdgeDecomposition> decomposition);

}  // namespace syncts
