#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "clocks/clock_engine.hpp"
#include "clocks/online_clock.hpp"
#include "obs/metrics.hpp"

/// \file engine_stock.hpp
/// Stock/lease recycling of clock-engine state (docs/MEMORY.md).
///
/// `run_reconfigurable_protocol` constructs one per-process clock per
/// epoch transition and per crash rejoin; a 1000-epoch soak therefore
/// used to perform thousands of engine constructions — each a handful
/// of heap allocations (vectors, peer tables, clock slabs). The stock
/// turns that into a lease: retired engines park here, and the next
/// lease of the same family pops one and `rebind()`s it onto the new
/// decomposition — an O(width) reset that reuses every buffer whose
/// shape still fits. The rebind contract (clock_engine.hpp) guarantees
/// a leased engine stamps bit-identically to a freshly constructed one,
/// so recycling is invisible to the protocol and to the chaos oracles.
///
/// The stock is not thread-safe: one stock per protocol run (or one per
/// thread), exactly like the SlabPool it mirrors on the data side.

namespace syncts {

class EngineStock {
public:
    EngineStock() = default;
    EngineStock(const EngineStock&) = delete;
    EngineStock& operator=(const EngineStock&) = delete;

    // ---- Whole engines (the six ClockFamily drivers) ------------------

    /// A ready engine of `family` targeting `decomposition`: a restocked
    /// engine rebound in place when one is parked, a fresh
    /// make_clock_engine otherwise.
    std::unique_ptr<ClockEngine> lease(
        ClockFamily family,
        std::shared_ptr<const EdgeDecomposition> decomposition);

    /// Parks a retired engine for the next lease of its family. Null
    /// pointers are ignored.
    void restock(std::unique_ptr<ClockEngine> engine);

    // ---- Per-process online clocks (the reconfig runtime's engines) ---

    /// A ready Fig. 5 process clock for `self` under `decomposition`;
    /// recycled and rebound when the stock has one parked.
    std::unique_ptr<OnlineProcessClock> lease_clock(
        ProcessId self,
        std::shared_ptr<const EdgeDecomposition> decomposition);

    /// Parks a retired process clock. Null pointers are ignored.
    void restock_clock(std::unique_ptr<OnlineProcessClock> clock);

    // ---- Introspection ------------------------------------------------

    /// Engines currently parked (all families).
    std::size_t stocked_engines() const noexcept;

    /// Process clocks currently parked.
    std::size_t stocked_clocks() const noexcept { return clocks_.size(); }

    std::uint64_t leases() const noexcept { return leases_; }
    std::uint64_t reuses() const noexcept { return reuses_; }

    /// Drops every parked engine and clock.
    void trim() noexcept;

    /// Registers `<prefix>_leases/_reuses/_creates/_restocks` counters
    /// and a `<prefix>_parked` gauge. The registry must outlive the
    /// stock.
    void attach_metrics(obs::MetricsRegistry& registry,
                        std::string_view prefix = "stock");

private:
    void note_lease(bool reused);
    void note_parked();

    /// Parked engines bucketed by family (enum value order).
    std::array<std::vector<std::unique_ptr<ClockEngine>>, 6> engines_{};
    std::vector<std::unique_ptr<OnlineProcessClock>> clocks_;
    std::uint64_t leases_ = 0;
    std::uint64_t reuses_ = 0;
    obs::Counter* metric_leases_ = nullptr;
    obs::Counter* metric_reuses_ = nullptr;
    obs::Counter* metric_creates_ = nullptr;
    obs::Counter* metric_restocks_ = nullptr;
    obs::Gauge* metric_parked_ = nullptr;
};

}  // namespace syncts
