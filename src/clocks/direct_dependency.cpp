#include "clocks/direct_dependency.hpp"

#include "common/check.hpp"

namespace syncts {

DirectDependencyTracker::DirectDependencyTracker(std::size_t num_processes)
    : last_(num_processes, kNoMessage) {}

MessageId DirectDependencyTracker::record_message(ProcessId sender,
                                                  ProcessId receiver) {
    SYNCTS_REQUIRE(sender < last_.size() && receiver < last_.size(),
                   "process id out of range");
    SYNCTS_REQUIRE(sender != receiver, "no self-messages");
    const auto id = static_cast<MessageId>(records_.size());
    records_.push_back({last_[sender], last_[receiver]});
    last_[sender] = id;
    last_[receiver] = id;
    return id;
}

std::vector<DirectDeps> DirectDependencyTracker::record_computation(
    const SyncComputation& computation) {
    DirectDependencyTracker tracker(computation.num_processes());
    for (const SyncMessage& m : computation.messages()) {
        tracker.record_message(m.sender, m.receiver);
    }
    return {tracker.records_.begin(), tracker.records_.end()};
}

bool direct_precedes(MessageId m1, MessageId m2,
                     std::span<const DirectDeps> records,
                     std::vector<char>& scratch) {
    SYNCTS_REQUIRE(m1 < records.size() && m2 < records.size(),
                   "message id out of range");
    if (m1 == m2) return false;
    // Message ids are assigned in instant order, so predecessors always
    // have smaller ids: anything at or below m1 cannot lead back to it
    // except m1 itself.
    if (m1 > m2) return false;
    scratch.assign(records.size(), 0);
    std::vector<MessageId> stack{m2};
    scratch[m2] = 1;
    while (!stack.empty()) {
        const MessageId current = stack.back();
        stack.pop_back();
        for (const MessageId prev : {records[current].prev_sender,
                                     records[current].prev_receiver}) {
            if (prev == kNoMessage || prev < m1 || scratch[prev]) continue;
            if (prev == m1) return true;
            scratch[prev] = 1;
            stack.push_back(prev);
        }
    }
    return false;
}

bool direct_precedes(MessageId m1, MessageId m2,
                     std::span<const DirectDeps> records) {
    std::vector<char> scratch;
    return direct_precedes(m1, m2, records, scratch);
}

}  // namespace syncts
