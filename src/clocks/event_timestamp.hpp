#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "trace/computation.hpp"

/// \file event_timestamp.hpp
/// Internal-event timestamps (Section 5 of the paper).
///
/// Each internal event e is stamped with the tuple
///     (prev(e), succ(e), c(e))
/// where prev(e) is the timestamp of the last message on e's process
/// before e (zero vector when none), succ(e) the timestamp of the first
/// message after e (∞ when none, represented here as nullopt), and c(e) a
/// per-interval counter reset at every external event. Theorem 9:
///     e → f ⟺ succ(e) ≤ prev(f)
/// for events in different message intervals, with the counter ordering
/// events inside one interval.
///
/// Deviation from the paper (documented in DESIGN.md): the counter
/// tie-break is only sound for events on the *same process*. Two internal
/// events on different processes can share both prev and succ timestamps —
/// take a message m between Pi and Pj immediately followed by another
/// message m' between the same two processes, with an internal event on
/// each process in between; both events then carry (v(m), v(m'), c).
/// Such events are concurrent, so the tuple also records the process id
/// and the tie-break applies only when the processes match.

namespace syncts {

struct EventTimestamp {
    ProcessId process = 0;
    VectorTimestamp prev;                 // zero vector when no prior message
    std::optional<VectorTimestamp> succ;  // nullopt encodes ∞
    std::uint64_t counter = 0;            // position within the interval

    std::string to_string() const;
};

/// e → f per Theorem 9 (with the same-process counter tie-break).
bool happened_before(const EventTimestamp& e, const EventTimestamp& f);

/// Neither e → f nor f → e.
bool concurrent(const EventTimestamp& e, const EventTimestamp& f);

/// Stamps every internal event of the computation. `message_stamps` must
/// be the per-message timestamps produced by any exact message-timestamping
/// scheme over the same computation (online Fig. 5 or offline Fig. 9);
/// `width` is the vector width (used for the zero vector of prev).
/// result[i] is the timestamp of internal event i.
std::vector<EventTimestamp> timestamp_internal_events(
    const SyncComputation& computation,
    const std::vector<VectorTimestamp>& message_stamps, std::size_t width);

}  // namespace syncts
