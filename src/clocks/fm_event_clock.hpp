#pragma once

#include <cstddef>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "trace/computation.hpp"

/// \file fm_event_clock.hpp
/// Baseline for Section 5: classic Fidge–Mattern *event* clocks (width N)
/// over the rendezvous event model. A message instant is a shared event of
/// its two participants (both components incremented, vectors merged); an
/// internal event increments only its own process's component. For any two
/// events, e → f ⟺ V(e) < V(f).
///
/// This is what the paper's event timestamps (prev/succ/counter tuples of
/// width d) are traded against: FM event vectors cost N per event, the
/// paper's tuples cost 2d + O(1) per internal event.

namespace syncts {

struct FmEventTimestamps {
    /// message_stamps[m] — the shared rendezvous event's vector.
    std::vector<VectorTimestamp> message_stamps;
    /// internal_stamps[i] — the internal event's vector.
    std::vector<VectorTimestamp> internal_stamps;
};

/// Replays the computation and stamps every event.
FmEventTimestamps fm_event_timestamps(const SyncComputation& computation);

}  // namespace syncts
