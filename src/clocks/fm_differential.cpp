#include "clocks/fm_differential.hpp"

#include "common/check.hpp"

namespace syncts {

namespace {

std::size_t varint_size(std::uint64_t value) {
    std::size_t size = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++size;
    }
    return size;
}

}  // namespace

FmDifferentialTimestamper::FmDifferentialTimestamper(
    std::size_t num_processes)
    : n_(num_processes),
      clocks_(num_processes, VectorTimestamp(num_processes)),
      last_sent_(num_processes * num_processes) {}

void FmDifferentialTimestamper::account_direction(ProcessId from,
                                                  ProcessId to) {
    VectorTimestamp& snapshot = last_sent_[from * n_ + to];
    if (snapshot.width() == 0) snapshot = VectorTimestamp(n_);

    std::size_t entries = 0;
    std::size_t bytes = 0;
    const auto& current = clocks_[from];
    for (std::size_t k = 0; k < n_; ++k) {
        if (current[k] == snapshot[k]) continue;
        ++entries;
        bytes += varint_size(k) + varint_size(current[k]);
    }
    bytes += varint_size(entries);  // count header
    stats_.entries_sent += entries;
    stats_.wire_bytes += bytes;
    snapshot = current;
}

VectorTimestamp FmDifferentialTimestamper::timestamp_message(
    ProcessId sender, ProcessId receiver) {
    SYNCTS_REQUIRE(sender < n_ && receiver < n_, "process id out of range");
    SYNCTS_REQUIRE(sender != receiver, "no self-messages");

    // Message carries sender's diff; acknowledgement carries receiver's
    // (both relative to the previous exchange on this ordered pair).
    account_direction(sender, receiver);
    account_direction(receiver, sender);

    VectorTimestamp merged = clocks_[sender];
    merged.join(clocks_[receiver]);
    merged.increment(sender);
    merged.increment(receiver);
    clocks_[sender] = merged;
    clocks_[receiver] = merged;
    ++stats_.messages;
    return merged;
}

std::vector<VectorTimestamp> FmDifferentialTimestamper::timestamp_computation(
    const SyncComputation& computation) {
    SYNCTS_REQUIRE(computation.num_processes() == n_,
                   "computation size does not match the timestamper");
    std::vector<VectorTimestamp> stamps;
    stamps.reserve(computation.num_messages());
    for (const SyncMessage& m : computation.messages()) {
        stamps.push_back(timestamp_message(m.sender, m.receiver));
    }
    return stamps;
}

}  // namespace syncts
