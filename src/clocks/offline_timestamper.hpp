#pragma once

#include <cstddef>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "poset/poset.hpp"
#include "poset/realizer.hpp"
#include "trace/computation.hpp"

/// \file offline_timestamper.hpp
/// The paper's offline algorithm (Fig. 9, Section 4).
///
/// Given a completed computation, the message poset (M, ↦) has width
/// w ≤ ⌊N/2⌋ (Theorem 8: every message occupies two of the N processes, so
/// an antichain can hold at most ⌊N/2⌋ messages). By Dilworth's theorem
/// dim(M) ≤ width(M), so a chain realizer {L1..Lw} exists; message m is
/// stamped with V_m where V_m[i] = |{x : x <_{Li} m}|. Then
///     m1 ↦ m2 ⟺ V_{m1} < V_{m2},
/// with vectors of width w — often smaller than the online algorithm's d.

namespace syncts {

struct OfflineResult {
    /// One timestamp per message, width == realizer size == poset width.
    std::vector<VectorTimestamp> timestamps;

    /// The realizer used (kept for inspection / validation).
    Realizer realizer;

    /// width(M, ↦) — the vector width actually used.
    std::size_t width = 0;

    /// ⌊N/2⌋ — Theorem 8's bound on the width.
    std::size_t theorem8_bound = 0;
};

/// Runs Fig. 9 on a closed message poset. `num_processes` is only used to
/// report the Theorem 8 bound. With `minimize_dimension` set, a greedy
/// post-pass drops redundant realizer extensions (dim(P) can sit strictly
/// below the width bound Fig. 9 stops at), shrinking the vectors further;
/// costs an extra O(w²·M²) validation sweep — that sweep shards across
/// the analysis pool when `analysis.threads != 1` (or a pool is given),
/// producing bit-identical results at any thread count.
OfflineResult offline_timestamps(const Poset& message_order,
                                 std::size_t num_processes,
                                 bool minimize_dimension = false,
                                 const AnalysisOptions& analysis = {});

/// Convenience: builds the ground-truth poset from the computation first
/// (its transitive closure also runs through `analysis`).
OfflineResult offline_timestamps(const SyncComputation& computation,
                                 bool minimize_dimension = false,
                                 const AnalysisOptions& analysis = {});

}  // namespace syncts
