#include "clocks/vector_timestamp.hpp"

#include <algorithm>
#include <sstream>

namespace syncts {

void VectorTimestamp::join(const VectorTimestamp& other) {
    SYNCTS_REQUIRE(width() == other.width(),
                   "joining timestamps of different widths");
    for (std::size_t k = 0; k < components_.size(); ++k) {
        components_[k] = std::max(components_[k], other.components_[k]);
    }
}

void VectorTimestamp::increment(std::size_t k) {
    SYNCTS_REQUIRE(k < components_.size(), "component out of range");
    ++components_[k];
}

bool VectorTimestamp::leq(const VectorTimestamp& other) const {
    SYNCTS_REQUIRE(width() == other.width(),
                   "comparing timestamps of different widths");
    for (std::size_t k = 0; k < components_.size(); ++k) {
        if (components_[k] > other.components_[k]) return false;
    }
    return true;
}

bool VectorTimestamp::less(const VectorTimestamp& other) const {
    return leq(other) && *this != other;
}

bool VectorTimestamp::concurrent_with(const VectorTimestamp& other) const {
    return *this != other && !less(other) && !other.less(*this);
}

std::uint64_t VectorTimestamp::total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto c : components_) sum += c;
    return sum;
}

std::string VectorTimestamp::to_string() const {
    std::ostringstream os;
    os << '(';
    for (std::size_t k = 0; k < components_.size(); ++k) {
        if (k != 0) os << ',';
        os << components_[k];
    }
    os << ')';
    return os.str();
}

}  // namespace syncts
