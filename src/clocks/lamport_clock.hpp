#pragma once

#include <cstdint>
#include <vector>

#include "trace/computation.hpp"

/// \file lamport_clock.hpp
/// Lamport scalar clocks over the rendezvous event model — the cheapest
/// baseline. At a rendezvous both participants set c = max(ci, cj) + 1; an
/// internal event ticks its own counter. Scalar clocks are consistent
/// (e → f ⟹ c(e) < c(f)) but cannot witness concurrency, which is exactly
/// the gap vector timestamps close.
///
/// The scalar stamps also witness the synchronous-computation
/// characterization of Section 2: timestamps increase within each process
/// and both endpoints of every message share one value, i.e. the message
/// arrows can be drawn vertically.

namespace syncts {

struct LamportTimestamps {
    std::vector<std::uint64_t> message_stamps;   // by MessageId
    std::vector<std::uint64_t> internal_stamps;  // by InternalId
};

LamportTimestamps lamport_timestamps(const SyncComputation& computation);

}  // namespace syncts
