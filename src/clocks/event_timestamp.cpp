#include "clocks/event_timestamp.hpp"

#include <sstream>

#include "common/check.hpp"

namespace syncts {

std::string EventTimestamp::to_string() const {
    std::ostringstream os;
    os << "(prev=" << prev.to_string()
       << ", succ=" << (succ ? succ->to_string() : "inf")
       << ", c=" << counter << ", P" << (process + 1) << ')';
    return os.str();
}

bool happened_before(const EventTimestamp& e, const EventTimestamp& f) {
    // Cross-interval: causality must flow through e's next message and
    // f's previous message; succ(e) ≤ prev(f) captures exactly m_e ⊑ m_f.
    if (e.succ.has_value() && e.succ->leq(f.prev)) return true;
    // Same interval on the same process: the counter orders the events.
    return e.process == f.process && e.prev == f.prev && e.succ == f.succ &&
           e.counter < f.counter;
}

bool concurrent(const EventTimestamp& e, const EventTimestamp& f) {
    return !happened_before(e, f) && !happened_before(f, e);
}

std::vector<EventTimestamp> timestamp_internal_events(
    const SyncComputation& computation,
    const std::vector<VectorTimestamp>& message_stamps, std::size_t width) {
    SYNCTS_REQUIRE(message_stamps.size() == computation.num_messages(),
                   "one message timestamp per message required");

    std::vector<EventTimestamp> result(computation.num_internal_events());
    for (ProcessId p = 0; p < computation.num_processes(); ++p) {
        const auto events = computation.process_events(p);
        // Forward pass: prev and counter.
        VectorTimestamp last(width);
        std::uint64_t counter = 0;
        for (const ProcessEvent& ev : events) {
            if (ev.kind == ProcessEvent::Kind::message) {
                last = message_stamps[ev.index];
                counter = 0;
            } else {
                EventTimestamp& stamp = result[ev.index];
                stamp.process = p;
                stamp.prev = last;
                stamp.counter = counter++;
            }
        }
        // Backward pass: succ.
        std::optional<VectorTimestamp> next;
        for (auto it = events.rbegin(); it != events.rend(); ++it) {
            if (it->kind == ProcessEvent::Kind::message) {
                next = message_stamps[it->index];
            } else {
                result[it->index].succ = next;
            }
        }
    }
    return result;
}

}  // namespace syncts
