#include "clocks/online_clock.hpp"

#include <algorithm>
#include <utility>

#include "common/ts_kernels.hpp"
#include "decomp/cover_decomposer.hpp"

namespace syncts {

OnlineProcessClock::OnlineProcessClock(
    ProcessId self, std::shared_ptr<const EdgeDecomposition> decomposition) {
    rebind(self, std::move(decomposition));
}

void OnlineProcessClock::rebind(
    ProcessId self, std::shared_ptr<const EdgeDecomposition> decomposition) {
    SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
    SYNCTS_REQUIRE(decomposition->complete(),
                   "decomposition must cover every channel");
    const Graph& graph = decomposition->graph();
    SYNCTS_REQUIRE(self < graph.num_vertices(),
                   "process id outside the topology");
    self_ = self;
    decomposition_ = std::move(decomposition);
    if (vector_.width() == decomposition_->size()) {
        ts::zero(vector_.mutable_components());
    } else {
        vector_ = VectorTimestamp(decomposition_->size());
    }
    group_by_peer_.assign(graph.num_vertices(), kNoGroup);
    for (const ProcessId peer : graph.neighbors(self_)) {
        group_by_peer_[peer] = decomposition_->group_of(self_, peer);
    }
}

void OnlineProcessClock::reset() noexcept {
    ts::zero(vector_.mutable_components());
}

void OnlineProcessClock::restore_from(std::span<const std::uint64_t> state) {
    SYNCTS_REQUIRE(state.size() == vector_.width(),
                   "restored state width does not match the clock width");
    ts::copy(vector_.mutable_components(), state);
}

void OnlineProcessClock::merge_and_increment(
    ProcessId peer, std::span<const std::uint64_t> remote) {
    SYNCTS_REQUIRE(peer < group_by_peer_.size() &&
                       group_by_peer_[peer] != kNoGroup,
                   "no channel between these processes in the topology");
    SYNCTS_REQUIRE(remote.size() == vector_.width(),
                   "cannot join timestamps of different widths");
    const std::span<std::uint64_t> mine = vector_.mutable_components();
    ts::join(mine, remote);
    ts::increment(mine, group_by_peer_[peer]);
}

void OnlineProcessClock::prepare_send_into(
    std::span<std::uint64_t> out) const {
    SYNCTS_REQUIRE(out.size() == vector_.width(),
                   "output span width does not match the clock width");
    ts::copy(out, vector_.components());
}

void OnlineProcessClock::on_receive_into(
    ProcessId sender, std::span<const std::uint64_t> piggybacked,
    std::span<std::uint64_t> ack_out, std::span<std::uint64_t> stamp_out) {
    SYNCTS_REQUIRE(ack_out.size() == vector_.width() &&
                       stamp_out.size() == vector_.width(),
                   "output span width does not match the clock width");
    // Line (04): the acknowledgement carries the local vector before the
    // merge — the sender performs the same merge with it.
    ts::copy(ack_out, vector_.components());
    merge_and_increment(sender, piggybacked);
    ts::copy(stamp_out, vector_.components());
}

void OnlineProcessClock::on_ack_into(
    ProcessId receiver, std::span<const std::uint64_t> acknowledgement,
    std::span<std::uint64_t> stamp_out) {
    SYNCTS_REQUIRE(stamp_out.size() == vector_.width(),
                   "output span width does not match the clock width");
    merge_and_increment(receiver, acknowledgement);
    ts::copy(stamp_out, vector_.components());
}

OnlineProcessClock::ReceiveResult OnlineProcessClock::on_receive(
    ProcessId sender, const VectorTimestamp& piggybacked) {
    ReceiveResult result{VectorTimestamp(vector_.width()),
                         VectorTimestamp(vector_.width())};
    on_receive_into(sender, piggybacked.components(),
                    result.acknowledgement.mutable_components(),
                    result.timestamp.mutable_components());
    return result;
}

VectorTimestamp OnlineProcessClock::on_acknowledgement(
    ProcessId receiver, const VectorTimestamp& acknowledgement) {
    VectorTimestamp stamp(vector_.width());
    on_ack_into(receiver, acknowledgement.components(),
                stamp.mutable_components());
    return stamp;
}

OnlineTimestamper::OnlineTimestamper(
    std::shared_ptr<const EdgeDecomposition> decomposition)
    : decomposition_(std::move(decomposition)) {
    SYNCTS_REQUIRE(decomposition_ != nullptr, "decomposition must be set");
    const std::size_t n = decomposition_->graph().num_vertices();
    clocks_.reserve(n);
    for (ProcessId p = 0; p < n; ++p) {
        clocks_.emplace_back(p, decomposition_);
    }
}

std::size_t OnlineTimestamper::width() const noexcept {
    return decomposition_->size();
}

void OnlineTimestamper::reset() {
    for (OnlineProcessClock& clock : clocks_) {
        clock.reset();
    }
    floor_.clear();
    epoch_ = 0;
}

void OnlineTimestamper::rebind(
    std::shared_ptr<const EdgeDecomposition> decomposition) {
    SYNCTS_REQUIRE(decomposition != nullptr, "decomposition must be set");
    decomposition_ = std::move(decomposition);
    const std::size_t n = decomposition_->graph().num_vertices();
    const std::size_t keep = std::min(n, clocks_.size());
    for (ProcessId p = 0; p < keep; ++p) {
        clocks_[p].rebind(p, decomposition_);
    }
    clocks_.erase(clocks_.begin() + static_cast<std::ptrdiff_t>(keep),
                  clocks_.end());
    clocks_.reserve(n);
    for (ProcessId p = static_cast<ProcessId>(keep); p < n; ++p) {
        clocks_.emplace_back(p, decomposition_);
    }
    floor_.clear();
    epoch_ = 0;
}

void OnlineTimestamper::on_epoch(const EpochTransition& transition) {
    SYNCTS_REQUIRE(transition.to != nullptr && transition.from != nullptr,
                   "epoch transition must carry both decompositions");
    SYNCTS_REQUIRE(transition.old_width() == decomposition_->size() &&
                       transition.old_num_processes == clocks_.size(),
                   "epoch transition does not start from this topology");
    std::vector<std::uint64_t> high_water(width(), 0);
    for (const OnlineProcessClock& clock : clocks_) {
        const auto row = clock.current_span();
        for (std::size_t g = 0; g < row.size(); ++g) {
            high_water[g] = std::max(high_water[g], row[g]);
        }
    }
    fold_epoch_floor(transition, high_water, /*by_process=*/false);
    decomposition_ = transition.to;
    const std::size_t n = decomposition_->graph().num_vertices();
    clocks_.clear();
    clocks_.reserve(n);
    for (ProcessId p = 0; p < n; ++p) {
        clocks_.emplace_back(p, decomposition_);
    }
}

void OnlineTimestamper::prepare_send(ProcessId sender,
                                     std::span<std::uint64_t> out) {
    SYNCTS_REQUIRE(sender < clocks_.size(), "process id out of range");
    clocks_[sender].prepare_send_into(out);
}

void OnlineTimestamper::on_receive(ProcessId sender, ProcessId receiver,
                                   std::span<const std::uint64_t> piggyback,
                                   std::span<std::uint64_t> ack_out,
                                   std::span<std::uint64_t> stamp_out) {
    SYNCTS_REQUIRE(sender < clocks_.size() && receiver < clocks_.size(),
                   "process id out of range");
    SYNCTS_REQUIRE(sender != receiver, "no self-messages");
    clocks_[receiver].on_receive_into(sender, piggyback, ack_out, stamp_out);
}

void OnlineTimestamper::on_ack(ProcessId sender, ProcessId receiver,
                               std::span<const std::uint64_t> acknowledgement,
                               std::span<std::uint64_t> stamp_out) {
    SYNCTS_REQUIRE(sender < clocks_.size() && receiver < clocks_.size(),
                   "process id out of range");
    SYNCTS_REQUIRE(sender != receiver, "no self-messages");
    clocks_[sender].on_ack_into(receiver, acknowledgement, stamp_out);
}

VectorTimestamp OnlineTimestamper::timestamp_message(ProcessId sender,
                                                     ProcessId receiver) {
    SYNCTS_REQUIRE(sender < clocks_.size() && receiver < clocks_.size(),
                   "process id out of range");
    SYNCTS_REQUIRE(sender != receiver, "no self-messages");
    OnlineProcessClock& snd = clocks_[sender];
    OnlineProcessClock& rcv = clocks_[receiver];
    const VectorTimestamp piggybacked = snd.prepare_send();
    const auto [acknowledgement, receiver_stamp] =
        rcv.on_receive(sender, piggybacked);
    const VectorTimestamp sender_stamp =
        snd.on_acknowledgement(receiver, acknowledgement);
    SYNCTS_ENSURE(sender_stamp == receiver_stamp,
                  "sender and receiver disagree on the message timestamp");
    return sender_stamp;
}

std::vector<VectorTimestamp> OnlineTimestamper::timestamp_computation(
    const SyncComputation& computation) {
    std::vector<VectorTimestamp> stamps;
    stamps.reserve(computation.num_messages());
    for (const SyncMessage& m : computation.messages()) {
        stamps.push_back(timestamp_message(m.sender, m.receiver));
    }
    return stamps;
}

void OnlineTimestamper::save_payload(std::vector<std::uint64_t>& out) const {
    for (const OnlineProcessClock& clock : clocks_) {
        const auto row = clock.current_span();
        out.insert(out.end(), row.begin(), row.end());
    }
}

void OnlineTimestamper::restore_payload(
    std::span<const std::uint64_t> payload) {
    const std::size_t d = width();
    SYNCTS_REQUIRE(payload.size() == clocks_.size() * d,
                   "online state payload does not match the topology shape");
    for (std::size_t p = 0; p < clocks_.size(); ++p) {
        clocks_[p].restore_from(payload.subspan(p * d, d));
    }
}

const OnlineProcessClock& OnlineTimestamper::clock(ProcessId p) const {
    SYNCTS_REQUIRE(p < clocks_.size(), "process id out of range");
    return clocks_[p];
}

std::vector<VectorTimestamp> online_timestamps(
    const SyncComputation& computation) {
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(computation.topology()));
    OnlineTimestamper timestamper(std::move(decomposition));
    return timestamper.timestamp_computation(computation);
}

}  // namespace syncts
