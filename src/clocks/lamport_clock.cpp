#include "clocks/lamport_clock.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace syncts {

LamportTimestamps lamport_timestamps(const SyncComputation& computation) {
    const std::size_t n = computation.num_processes();
    std::vector<std::uint64_t> clocks(n, 0);

    LamportTimestamps result;
    result.message_stamps.resize(computation.num_messages());
    result.internal_stamps.resize(computation.num_internal_events());

    std::vector<std::size_t> cursor(n, 0);
    const auto drain_internals = [&](ProcessId p, MessageId until_message) {
        const auto events = computation.process_events(p);
        while (cursor[p] < events.size()) {
            const ProcessEvent& e = events[cursor[p]];
            if (e.kind == ProcessEvent::Kind::message) {
                SYNCTS_ENSURE(until_message != kNoMessage &&
                                  e.index == until_message,
                              "event replay out of order");
                ++cursor[p];
                return;
            }
            result.internal_stamps[e.index] = ++clocks[p];
            ++cursor[p];
        }
        SYNCTS_ENSURE(until_message == kNoMessage,
                      "message missing from process event sequence");
    };

    for (const SyncMessage& m : computation.messages()) {
        drain_internals(m.sender, m.id);
        drain_internals(m.receiver, m.id);
        const std::uint64_t stamp =
            std::max(clocks[m.sender], clocks[m.receiver]) + 1;
        clocks[m.sender] = stamp;
        clocks[m.receiver] = stamp;
        result.message_stamps[m.id] = stamp;
    }
    for (ProcessId p = 0; p < n; ++p) drain_internals(p, kNoMessage);
    return result;
}

}  // namespace syncts
