#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/timestamp_arena.hpp"
#include "common/ts_kernels.hpp"

/// \file vector_timestamp.hpp
/// Fixed-width vector timestamps and the vector order of Equation (2):
///     u < v ⟺ (∀k: u[k] ≤ v[k]) ∧ (∃j: u[j] < v[j]).
/// The width is d (edge-decomposition size) for the online algorithm,
/// N for the Fidge–Mattern baselines, and width(P) for the offline one.
///
/// VectorTimestamp is the *owning* value type — convenient for tests,
/// tooling, and post-run records. The hot paths (the Fig. 5 protocol
/// hooks, TimestampedTrace queries, wire serialization) operate on raw
/// component spans via the ts:: kernels and TimestampArena rows instead;
/// every comparison method here is a thin wrapper over the same kernels,
/// so both representations are bit-identical by construction.

namespace syncts {

class VectorTimestamp {
public:
    VectorTimestamp() = default;

    /// Zero vector of the given width.
    explicit VectorTimestamp(std::size_t width) : components_(width, 0) {}

    /// Vector with explicit components (convenient in tests).
    explicit VectorTimestamp(std::vector<std::uint64_t> components)
        : components_(std::move(components)) {}

    /// Owning copy of a component span (e.g. a TimestampArena row).
    explicit VectorTimestamp(std::span<const std::uint64_t> components)
        : components_(components.begin(), components.end()) {}

    std::size_t width() const noexcept { return components_.size(); }

    std::uint64_t operator[](std::size_t k) const {
        SYNCTS_REQUIRE(k < components_.size(), "component out of range");
        return components_[k];
    }

    std::span<const std::uint64_t> components() const noexcept {
        return components_;
    }

    /// Mutable view for span kernels operating in place.
    std::span<std::uint64_t> mutable_components() noexcept {
        return components_;
    }

    /// In-place component-wise maximum ("∀k: v_i[k] = max(v_i[k], v[k])",
    /// Fig. 5 lines (05)/(09)). Widths must match.
    void join(const VectorTimestamp& other) {
        SYNCTS_REQUIRE(width() == other.width(),
                       "joining timestamps of different widths");
        ts::join(components_, other.components_);
    }

    /// Increment component k ("v_i[g]++", Fig. 5 lines (06)/(10)).
    void increment(std::size_t k) {
        SYNCTS_REQUIRE(k < components_.size(), "component out of range");
        ts::increment(components_, k);
    }

    /// Component-wise ≤ (every component no larger). Reflexive.
    bool leq(const VectorTimestamp& other) const {
        SYNCTS_REQUIRE(width() == other.width(),
                       "comparing timestamps of different widths");
        return ts::leq(components_, other.components_);
    }

    /// The strict vector order of Equation (2).
    bool less(const VectorTimestamp& other) const {
        SYNCTS_REQUIRE(width() == other.width(),
                       "comparing timestamps of different widths");
        return ts::less(components_, other.components_);
    }

    /// Neither u < v nor v < u nor u == v: the timestamps witness
    /// concurrency (Section 2).
    bool concurrent_with(const VectorTimestamp& other) const {
        SYNCTS_REQUIRE(width() == other.width(),
                       "comparing timestamps of different widths");
        return ts::concurrent(components_, other.components_);
    }

    /// Sum of components — a cheap proxy for "how much causal history".
    std::uint64_t total() const noexcept { return ts::total(components_); }

    /// e.g. "(1,1,1)".
    std::string to_string() const {
        std::string out = "(";
        for (std::size_t k = 0; k < components_.size(); ++k) {
            if (k != 0) out += ',';
            out += std::to_string(components_[k]);
        }
        out += ')';
        return out;
    }

    friend bool operator==(const VectorTimestamp&,
                           const VectorTimestamp&) = default;

private:
    std::vector<std::uint64_t> components_;
};

/// Free-function form of the vector order for symmetry with the paper.
inline bool vector_less(const VectorTimestamp& u, const VectorTimestamp& v) {
    return u.less(v);
}

}  // namespace syncts
