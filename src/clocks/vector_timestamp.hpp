#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"

/// \file vector_timestamp.hpp
/// Fixed-width vector timestamps and the vector order of Equation (2):
///     u < v ⟺ (∀k: u[k] ≤ v[k]) ∧ (∃j: u[j] < v[j]).
/// The width is d (edge-decomposition size) for the online algorithm,
/// N for the Fidge–Mattern baselines, and width(P) for the offline one.

namespace syncts {

class VectorTimestamp {
public:
    VectorTimestamp() = default;

    /// Zero vector of the given width.
    explicit VectorTimestamp(std::size_t width) : components_(width, 0) {}

    /// Vector with explicit components (convenient in tests).
    explicit VectorTimestamp(std::vector<std::uint64_t> components)
        : components_(std::move(components)) {}

    std::size_t width() const noexcept { return components_.size(); }

    std::uint64_t operator[](std::size_t k) const {
        SYNCTS_REQUIRE(k < components_.size(), "component out of range");
        return components_[k];
    }

    std::span<const std::uint64_t> components() const noexcept {
        return components_;
    }

    /// In-place component-wise maximum ("∀k: v_i[k] = max(v_i[k], v[k])",
    /// Fig. 5 lines (05)/(09)). Widths must match.
    void join(const VectorTimestamp& other);

    /// Increment component k ("v_i[g]++", Fig. 5 lines (06)/(10)).
    void increment(std::size_t k);

    /// Component-wise ≤ (every component no larger). Reflexive.
    bool leq(const VectorTimestamp& other) const;

    /// The strict vector order of Equation (2).
    bool less(const VectorTimestamp& other) const;

    /// Neither u < v nor v < u nor u == v: the timestamps witness
    /// concurrency (Section 2).
    bool concurrent_with(const VectorTimestamp& other) const;

    /// Sum of components — a cheap proxy for "how much causal history".
    std::uint64_t total() const noexcept;

    /// e.g. "(1,1,1)".
    std::string to_string() const;

    friend bool operator==(const VectorTimestamp&,
                           const VectorTimestamp&) = default;

private:
    std::vector<std::uint64_t> components_;
};

/// Free-function form of the vector order for symmetry with the paper.
inline bool vector_less(const VectorTimestamp& u, const VectorTimestamp& v) {
    return u.less(v);
}

}  // namespace syncts
