#include "clocks/offline_timestamper.hpp"

#include <utility>

#include "common/check.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {

OfflineResult offline_timestamps(const Poset& message_order,
                                 std::size_t num_processes,
                                 bool minimize_dimension,
                                 const AnalysisOptions& analysis) {
    OfflineResult result;
    result.theorem8_bound = num_processes / 2;
    result.realizer = chain_realizer(message_order);
    if (minimize_dimension && !result.realizer.extensions.empty()) {
        result.realizer = minimize_realizer(
            message_order, std::move(result.realizer), analysis);
    }
    result.width = result.realizer.size();
    if (message_order.size() == 0) return result;

    const auto ranks = realizer_timestamps(result.realizer);
    result.timestamps.reserve(ranks.size());
    for (const auto& components : ranks) {
        result.timestamps.emplace_back(components);
    }
    SYNCTS_ENSURE(result.width <= result.theorem8_bound || num_processes < 2,
                  "message poset width exceeded Theorem 8's floor(N/2) bound");
    return result;
}

OfflineResult offline_timestamps(const SyncComputation& computation,
                                 bool minimize_dimension,
                                 const AnalysisOptions& analysis) {
    return offline_timestamps(message_poset(computation, analysis),
                              computation.num_processes(),
                              minimize_dimension, analysis);
}

}  // namespace syncts
