#pragma once

#include <cstddef>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "trace/computation.hpp"

/// \file plausible_clock.hpp
/// Related-work baseline (Section 6): plausible clocks (Torres-Rojas &
/// Ahamad), adapted to synchronous messages.
///
/// A plausible clock keeps a fixed-width vector regardless of N by folding
/// process ids onto components (here: p mod R, the "comb" scheme). At a
/// rendezvous both participants merge and tick their folded components.
/// The result is *consistent* — m1 ↦ m2 ⟹ v(m1) < v(m2) — but not
/// *characterizing*: concurrent messages whose processes collide on
/// components can be falsely ordered. The paper's contribution is exactly
/// that, for synchronous systems, one can have the small vectors *and*
/// exactness; this baseline quantifies what plausible clocks give up.

namespace syncts {

class PlausibleTimestamper {
public:
    /// `width` fixed components; process p ticks component p mod width.
    PlausibleTimestamper(std::size_t num_processes, std::size_t width);

    std::size_t width() const noexcept { return width_; }

    VectorTimestamp timestamp_message(ProcessId sender, ProcessId receiver);

    std::vector<VectorTimestamp> timestamp_computation(
        const SyncComputation& computation);

private:
    std::size_t width_;
    std::vector<VectorTimestamp> clocks_;
};

/// Accuracy of a consistent clock: the fraction of truly-concurrent pairs
/// whose stamps also report concurrency (1.0 for a characterizing clock).
/// Returns 1.0 when there are no concurrent pairs.
double concurrency_accuracy(const class Poset& truth,
                            std::span<const VectorTimestamp> stamps);

}  // namespace syncts
