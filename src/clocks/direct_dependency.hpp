#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "trace/computation.hpp"

/// \file direct_dependency.hpp
/// Related-work baseline (Section 6): Fowler–Zwaenepoel direct-dependency
/// tracking, adapted to synchronous messages.
///
/// Instead of piggybacking a vector, each message records only its
/// *direct* predecessors: the previous message of its sender and of its
/// receiver. Storage and piggyback are O(1) per message, but a precedence
/// test must recursively chase dependencies (here: a backward BFS). The
/// paper's clocks spend d components per message to make the same test a
/// single O(d) comparison — this module is the other end of that
/// trade-off, useful when tests are rare and run offline.

namespace syncts {

/// Per-message direct-dependency record.
struct DirectDeps {
    MessageId prev_sender = kNoMessage;    // sender's previous message
    MessageId prev_receiver = kNoMessage;  // receiver's previous message
};

/// Online recorder: O(1) state per process, O(1) record per message.
class DirectDependencyTracker {
public:
    explicit DirectDependencyTracker(std::size_t num_processes);

    /// Records one rendezvous; returns the new message's id (dense).
    MessageId record_message(ProcessId sender, ProcessId receiver);

    std::span<const DirectDeps> records() const noexcept { return records_; }

    /// Records the whole computation (message ids coincide).
    static std::vector<DirectDeps> record_computation(
        const SyncComputation& computation);

private:
    std::vector<MessageId> last_;  // per process: latest message id
    std::vector<DirectDeps> records_;
};

/// Precedence test m1 ↦ m2 by backward traversal from m2 over the direct
/// dependencies. O(M) worst case; `scratch` (resized as needed) avoids
/// reallocating the visited set across queries.
bool direct_precedes(MessageId m1, MessageId m2,
                     std::span<const DirectDeps> records,
                     std::vector<char>& scratch);

/// Convenience overload with a private scratch buffer.
bool direct_precedes(MessageId m1, MessageId m2,
                     std::span<const DirectDeps> records);

}  // namespace syncts
