#pragma once

#include <cstddef>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "trace/computation.hpp"

/// \file fm_differential.hpp
/// Related-work baseline (Section 6): Singhal & Kshemkalyani's
/// differential technique for Fidge–Mattern clocks, adapted to synchronous
/// messages.
///
/// Instead of shipping the whole N-vector, a process sends only the
/// entries that changed since its previous message to the *same* peer,
/// as (index, value) pairs. This trades message size for O(N) extra
/// storage per peer ("possible because of the increase in the amount of
/// data stored by each process", as the paper puts it). The timestamps
/// produced are identical to the FM-sync baseline; what differs is the
/// wire cost, which this class accounts exactly (varint-encoded entry
/// pairs, matching clocks/wire.hpp conventions).

namespace syncts {

struct DifferentialStats {
    std::size_t messages = 0;
    /// Total (index, value) entries shipped, both directions (message +
    /// acknowledgement).
    std::size_t entries_sent = 0;
    /// Exact varint wire bytes for those entries (per direction: a count
    /// header plus index/value pairs).
    std::size_t wire_bytes = 0;

    double mean_entries_per_message() const {
        return messages == 0 ? 0.0
                             : static_cast<double>(entries_sent) /
                                   static_cast<double>(messages);
    }
    double mean_bytes_per_message() const {
        return messages == 0 ? 0.0
                             : static_cast<double>(wire_bytes) /
                                   static_cast<double>(messages);
    }
};

class FmDifferentialTimestamper {
public:
    explicit FmDifferentialTimestamper(std::size_t num_processes);

    /// Executes one rendezvous; the returned timestamp equals the FM-sync
    /// baseline's bit for bit.
    VectorTimestamp timestamp_message(ProcessId sender, ProcessId receiver);

    std::vector<VectorTimestamp> timestamp_computation(
        const SyncComputation& computation);

    const DifferentialStats& stats() const noexcept { return stats_; }

private:
    /// Accounts the diff process `from` would ship to `to`, then refreshes
    /// the last-sent snapshot.
    void account_direction(ProcessId from, ProcessId to);

    std::size_t n_;
    std::vector<VectorTimestamp> clocks_;
    /// last_sent_[from * n + to] — snapshot of from's vector as of its
    /// previous exchange with to; empty until first used (the O(N) per
    /// peer storage the technique spends).
    std::vector<VectorTimestamp> last_sent_;
    DifferentialStats stats_;
};

}  // namespace syncts
