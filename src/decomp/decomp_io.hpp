#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "common/ids.hpp"
#include "decomp/edge_decomposition.hpp"

/// \file decomp_io.hpp
/// Plain-text persistence for edge decompositions. Fig. 5 assumes "the
/// information about edge decomposition is known by all processes"; in a
/// deployment that information is computed once and distributed — this is
/// the artifact that gets distributed. Versioned, line-oriented:
///
///   syncts-decomp 1
///   processes <N>
///   edges <M>
///   e <u> <v>                        # one per channel, in dense order
///   groups <d>
///   s <root> <k> <u1> <v1> ... <uk> <vk>   # star with k edges
///   t <x> <y> <z>                          # triangle
///
/// Version 2 tags the decomposition with the topology epoch that produced
/// it (docs/TOPOLOGY.md) by inserting one line after the magic:
///
///   syncts-decomp 2
///   epoch <id>                       # id >= 1
///   processes <N>
///   ...                              # v1 body, unchanged
///
/// Epoch 0 always serializes as version 1 — byte-identical to the
/// pre-epoch format — and a version-1 file parses as epoch 0, so
/// artifacts written before the epoch work interoperate unchanged (the
/// same back-compat rule the wire frames follow, docs/FORMATS.md).
///
/// Groups appear in component order, so a parsed decomposition assigns the
/// same vector component to every channel as the original.

namespace syncts {

/// Typed parse failure. Derives from std::invalid_argument, so callers
/// that only care about "bad input" keep catching what they always did;
/// callers that need to distinguish (e.g. a distribution pipeline that
/// wants to retry truncated transfers but hard-fail version skew) switch
/// on kind().
class DecompIoError : public std::invalid_argument {
public:
    enum class Kind {
        bad_magic,       ///< not a syncts-decomp artifact
        bad_version,     ///< version this build does not speak
        truncated,       ///< input ended mid-record
        bad_number,      ///< token where a number was expected
        out_of_range,    ///< process id / epoch outside the declared space
        bad_record,      ///< unknown record tag
        empty_groups,    ///< no groups declared but the graph has channels
        incomplete,      ///< groups don't cover every channel
    };

    DecompIoError(Kind kind, const std::string& what)
        : std::invalid_argument(what), kind_(kind) {}

    Kind kind() const noexcept { return kind_; }

private:
    Kind kind_;
};

/// A decomposition plus the topology epoch it belongs to.
struct TaggedDecomposition {
    EpochId epoch = 0;
    EdgeDecomposition decomposition;
};

/// Version-1 writers (equivalently: epoch 0).
std::string serialize_decomposition(const EdgeDecomposition& decomposition);
void write_decomposition(std::ostream& out,
                         const EdgeDecomposition& decomposition);

/// Epoch-tagged writers. Epoch 0 emits the version-1 layout
/// byte-identically; any later epoch emits version 2.
std::string serialize_decomposition(const EdgeDecomposition& decomposition,
                                    EpochId epoch);
void write_decomposition(std::ostream& out,
                         const EdgeDecomposition& decomposition,
                         EpochId epoch);

/// Throws DecompIoError (an std::invalid_argument) on malformed input,
/// unknown records, dangling indices, or incomplete decompositions; the
/// group records themselves may also surface std::invalid_argument from
/// EdgeDecomposition (non-edges, overlapping groups). Accepts versions 1
/// (epoch 0) and 2.
TaggedDecomposition parse_tagged_decomposition(const std::string& text);
TaggedDecomposition read_tagged_decomposition(std::istream& in);

/// Epoch-blind convenience wrappers over the tagged readers.
EdgeDecomposition parse_decomposition(const std::string& text);
EdgeDecomposition read_decomposition(std::istream& in);

}  // namespace syncts
