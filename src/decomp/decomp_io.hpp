#pragma once

#include <iosfwd>
#include <string>

#include "decomp/edge_decomposition.hpp"

/// \file decomp_io.hpp
/// Plain-text persistence for edge decompositions. Fig. 5 assumes "the
/// information about edge decomposition is known by all processes"; in a
/// deployment that information is computed once and distributed — this is
/// the artifact that gets distributed. Versioned, line-oriented:
///
///   syncts-decomp 1
///   processes <N>
///   edges <M>
///   e <u> <v>                        # one per channel, in dense order
///   groups <d>
///   s <root> <k> <u1> <v1> ... <uk> <vk>   # star with k edges
///   t <x> <y> <z>                          # triangle
///
/// Groups appear in component order, so a parsed decomposition assigns the
/// same vector component to every channel as the original.

namespace syncts {

std::string serialize_decomposition(const EdgeDecomposition& decomposition);
void write_decomposition(std::ostream& out,
                         const EdgeDecomposition& decomposition);

/// Throws std::invalid_argument on malformed input, unknown records,
/// dangling indices, non-edges, or incomplete decompositions.
EdgeDecomposition parse_decomposition(const std::string& text);
EdgeDecomposition read_decomposition(std::istream& in);

}  // namespace syncts
