#pragma once

#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"
#include "graph/triangles.hpp"

/// \file edge_group.hpp
/// One element of an edge decomposition (Definition 2 of the paper): a set
/// of edges forming either a star (all edges share a root vertex) or a
/// triangle (exactly three edges on three vertices). The online algorithm
/// assigns one vector-clock component per group.

namespace syncts {

enum class GroupKind { star, triangle };

struct EdgeGroup {
    GroupKind kind = GroupKind::star;

    /// Root vertex for star groups; kNoProcess for triangles.
    ProcessId root = kNoProcess;

    /// Corners for triangle groups; all-zero/unused for stars.
    Triangle triangle{};

    /// The edges assigned to this group.
    std::vector<Edge> edges;
};

}  // namespace syncts
