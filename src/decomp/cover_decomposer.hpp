#pragma once

#include <vector>

#include "decomp/edge_decomposition.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"

/// \file cover_decomposer.hpp
/// Decompositions derived from vertex covers (Theorem 5) and the trivial
/// complete-graph decomposition (N−3 stars + 1 triangle, Fig. 3(a)).
///
/// From a vertex cover V' every edge is incident to some cover vertex, so
/// assigning each edge to one cover endpoint partitions E into |V'| stars.
/// Theorem 5: timestamps of size min(β(G), N−2) therefore suffice.

namespace syncts {

/// Builds the star-per-cover-vertex decomposition. Requires `cover` to be a
/// vertex cover of `g`. Each edge goes to its lowest-numbered cover
/// endpoint; cover vertices with no assigned edges contribute no group, so
/// the result can be smaller than |cover|.
EdgeDecomposition decomposition_from_cover(const Graph& g,
                                           const std::vector<ProcessId>& cover);

/// Star-only decomposition via the maximal-matching 2-approximate cover.
EdgeDecomposition approx_cover_decomposition(const Graph& g);

/// Star-only decomposition via the exact minimum vertex cover β(G)
/// (exponential in β; for small graphs / experiments).
EdgeDecomposition exact_cover_decomposition(const Graph& g);

/// The trivial decomposition of the complete graph K_n for n >= 3: stars
/// rooted at vertices 0..n−4 (star i holds edges (i, j) for j > i) plus the
/// triangle on the last three vertices — N−2 groups total (Fig. 3(a)).
/// For n <= 2 returns the at-most-one-star decomposition.
EdgeDecomposition trivial_complete_decomposition(const Graph& g);

/// The decomposition the library uses by default: the trivial N−2
/// decomposition on complete graphs (Theorem 5's N−2 term), otherwise the
/// smaller of the Fig. 7 greedy result and the matching-cover stars (which
/// realize Section 3.3's one-star-per-server claim on client–server
/// topologies).
EdgeDecomposition default_decomposition(const Graph& g);

/// As default_decomposition, but also publishes what the selection saw
/// into `registry` (ignored when null): gauges `decomp_greedy_groups` and
/// `decomp_cover_groups` (the two candidates; equal to `decomp_groups` on
/// complete graphs where the trivial N−2 construction wins outright),
/// `decomp_groups` (the chosen size d — the timestamp width),
/// `decomp_lower_bound` (the maximal-matching lower bound on α(G)), and
/// `decomp_gap` (chosen − lower bound: how far the heuristics might be
/// from optimal).
EdgeDecomposition default_decomposition(const Graph& g,
                                        obs::MetricsRegistry* registry);

}  // namespace syncts
