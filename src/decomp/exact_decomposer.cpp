#include "decomp/exact_decomposer.hpp"

#include <algorithm>
#include <variant>
#include <vector>

#include "decomp/greedy_decomposer.hpp"
#include "graph/triangles.hpp"
#include "graph/vertex_cover.hpp"

namespace syncts {

std::size_t decomposition_lower_bound(const Graph& g) {
    std::vector<char> used(g.num_vertices(), 0);
    std::size_t matched = 0;
    for (const Edge& e : g.edges()) {
        if (!used[e.u] && !used[e.v]) {
            used[e.u] = used[e.v] = 1;
            ++matched;
        }
    }
    return matched;
}

namespace {

/// One chosen covering object: a star root or a triangle.
using Choice = std::variant<ProcessId, Triangle>;

class DecompositionSearch {
public:
    DecompositionSearch(const Graph& g, std::size_t node_budget)
        : graph_(g), covered_(g.num_edges(), 0), node_budget_(node_budget) {}

    /// Returns the optimal choice list, or nullopt on budget exhaustion.
    std::optional<std::vector<Choice>> run(std::size_t initial_upper_bound) {
        best_size_ = initial_upper_bound;
        std::vector<Choice> current;
        branch(current);
        if (exhausted_) return std::nullopt;
        return best_;
    }

private:
    std::size_t first_uncovered() const {
        for (std::size_t i = 0; i < covered_.size(); ++i) {
            if (!covered_[i]) return i;
        }
        return covered_.size();
    }

    /// Greedy matching over uncovered edges: each matched edge needs its
    /// own group, lower-bounding the remaining groups.
    std::size_t matching_lower_bound() const {
        std::vector<char> used(graph_.num_vertices(), 0);
        std::size_t matched = 0;
        for (std::size_t i = 0; i < covered_.size(); ++i) {
            if (covered_[i]) continue;
            const Edge& e = graph_.edge(i);
            if (!used[e.u] && !used[e.v]) {
                used[e.u] = used[e.v] = 1;
                ++matched;
            }
        }
        return matched;
    }

    /// Covers all uncovered edges the object owns; returns them for undo.
    std::vector<std::size_t> apply(const Choice& choice) {
        std::vector<std::size_t> newly;
        const auto cover_edge = [&](std::size_t index) {
            if (!covered_[index]) {
                covered_[index] = 1;
                newly.push_back(index);
            }
        };
        if (const auto* root = std::get_if<ProcessId>(&choice)) {
            for (const ProcessId w : graph_.neighbors(*root)) {
                cover_edge(*graph_.edge_index(*root, w));
            }
        } else {
            const auto& t = std::get<Triangle>(choice);
            const auto [x, y, z] = t.corners;
            cover_edge(*graph_.edge_index(x, y));
            cover_edge(*graph_.edge_index(y, z));
            cover_edge(*graph_.edge_index(x, z));
        }
        return newly;
    }

    void undo(const std::vector<std::size_t>& newly) {
        for (const std::size_t index : newly) covered_[index] = 0;
    }

    void try_choice(const Choice& choice, std::vector<Choice>& current) {
        const auto newly = apply(choice);
        if (!newly.empty()) {
            current.push_back(choice);
            branch(current);
            current.pop_back();
        }
        undo(newly);
    }

    void branch(std::vector<Choice>& current) {
        if (exhausted_) return;
        if (++nodes_ > node_budget_) {
            exhausted_ = true;
            return;
        }
        const std::size_t pivot = first_uncovered();
        if (pivot == covered_.size()) {
            if (current.size() < best_size_) {
                best_size_ = current.size();
                best_ = current;
            }
            return;
        }
        if (current.size() + std::max<std::size_t>(matching_lower_bound(), 1)
            >= best_size_) {
            return;
        }
        const Edge& e = graph_.edge(pivot);
        try_choice(Choice{e.u}, current);
        try_choice(Choice{e.v}, current);
        for (const Triangle& t : triangles_containing(graph_, e.u, e.v)) {
            try_choice(Choice{t}, current);
        }
    }

    const Graph& graph_;
    std::vector<char> covered_;
    std::size_t node_budget_;
    std::size_t nodes_ = 0;
    bool exhausted_ = false;
    std::size_t best_size_ = 0;
    std::vector<Choice> best_;
};

/// Replays the winning choice list, assigning every edge to the first
/// object that covers it, and materializes the groups. A triangle object
/// that ends up owning fewer than its three edges degenerates into a star
/// (any two triangle edges share a corner).
EdgeDecomposition materialize(const Graph& g,
                              const std::vector<Choice>& choices) {
    EdgeDecomposition decomposition(g);
    std::vector<char> covered(g.num_edges(), 0);
    for (const Choice& choice : choices) {
        std::vector<Edge> owned;
        const auto claim = [&](const Edge& e) {
            const std::size_t index = *g.edge_index(e.u, e.v);
            if (!covered[index]) {
                covered[index] = 1;
                owned.push_back(e);
            }
        };
        if (const auto* root = std::get_if<ProcessId>(&choice)) {
            for (const ProcessId w : g.neighbors(*root)) {
                claim(Edge::make(*root, w));
            }
            if (!owned.empty()) decomposition.add_star(*root, owned);
            continue;
        }
        const auto& t = std::get<Triangle>(choice);
        const auto [x, y, z] = t.corners;
        claim(Edge::make(x, y));
        claim(Edge::make(y, z));
        claim(Edge::make(x, z));
        if (owned.size() == 3) {
            // add_triangle would double-assign; rebuild via the dedicated
            // path: un-claim and assign as a true triangle group.
            decomposition.add_triangle(t);
        } else if (owned.size() == 2) {
            // Two triangle edges always share exactly one corner.
            const Edge& a = owned[0];
            const Edge& b = owned[1];
            const ProcessId shared = b.touches(a.u) ? a.u : a.v;
            decomposition.add_star(shared, owned);
        } else if (owned.size() == 1) {
            decomposition.add_star(owned[0].u, owned);
        }
    }
    SYNCTS_ENSURE(decomposition.complete(),
                  "exact decomposition left edges unassigned");
    return decomposition;
}

}  // namespace

std::optional<EdgeDecomposition> exact_edge_decomposition(
    const Graph& g, std::size_t node_budget) {
    if (g.num_edges() == 0) return EdgeDecomposition(g);
    // Seed the upper bound with the better of the greedy result and the
    // 2-approximate cover, so pruning starts tight.
    const std::size_t greedy_size = greedy_edge_decomposition(g).size();
    DecompositionSearch search(g, node_budget);
    const auto choices = search.run(greedy_size + 1);
    if (!choices.has_value()) return std::nullopt;
    return materialize(g, *choices);
}

}  // namespace syncts
