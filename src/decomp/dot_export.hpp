#pragma once

#include <string>

#include "decomp/edge_decomposition.hpp"
#include "graph/graph.hpp"

/// \file dot_export.hpp
/// Graphviz export for topologies and decompositions — the debugging
/// visualizations (POET/XPVM-style) the paper's introduction motivates
/// start from exactly this picture: which channels share a vector
/// component.

namespace syncts {

/// Plain topology as an undirected graphviz graph.
std::string to_dot(const Graph& g);

/// Decomposition view: edges colored/labeled by group (E1, E2, ...),
/// star roots emphasized.
std::string to_dot(const EdgeDecomposition& decomposition);

}  // namespace syncts
