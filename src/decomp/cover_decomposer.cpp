#include "decomp/cover_decomposer.hpp"

#include <algorithm>
#include <vector>

#include "decomp/exact_decomposer.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/vertex_cover.hpp"

namespace syncts {

EdgeDecomposition decomposition_from_cover(
    const Graph& g, const std::vector<ProcessId>& cover) {
    SYNCTS_REQUIRE(is_vertex_cover(g, cover),
                   "provided vertex set is not a vertex cover");
    std::vector<char> in_cover(g.num_vertices(), 0);
    for (const ProcessId v : cover) in_cover[v] = 1;

    std::vector<std::vector<Edge>> star_edges(g.num_vertices());
    for (const Edge& e : g.edges()) {
        // Lowest-numbered cover endpoint owns the edge.
        const ProcessId owner = in_cover[e.u] ? e.u : e.v;
        star_edges[owner].push_back(e);
    }

    EdgeDecomposition decomposition(g);
    for (ProcessId v = 0; v < g.num_vertices(); ++v) {
        if (!star_edges[v].empty()) decomposition.add_star(v, star_edges[v]);
    }
    SYNCTS_ENSURE(decomposition.complete(),
                  "cover decomposition left edges unassigned");
    return decomposition;
}

EdgeDecomposition approx_cover_decomposition(const Graph& g) {
    return decomposition_from_cover(g, approx_vertex_cover(g));
}

EdgeDecomposition exact_cover_decomposition(const Graph& g) {
    return decomposition_from_cover(g, exact_vertex_cover(g));
}

EdgeDecomposition trivial_complete_decomposition(const Graph& g) {
    const std::size_t n = g.num_vertices();
    const std::size_t expected_edges = n * (n - 1) / 2;
    SYNCTS_REQUIRE(g.num_edges() == expected_edges,
                   "graph is not a complete graph");

    EdgeDecomposition decomposition(g);
    if (n < 2) return decomposition;
    if (n == 2) {
        const Edge e = Edge::make(0, 1);
        decomposition.add_star(0, std::vector<Edge>{e});
        return decomposition;
    }
    // Stars at 0..n-4 peel off each vertex's edges to higher vertices; the
    // last three vertices form the single triangle of Fig. 3(a).
    for (ProcessId v = 0; v + 3 < n; ++v) {
        std::vector<Edge> edges;
        for (ProcessId w = v + 1; w < n; ++w) edges.push_back(Edge::make(v, w));
        decomposition.add_star(v, edges);
    }
    decomposition.add_triangle(Triangle::make(static_cast<ProcessId>(n - 3),
                                              static_cast<ProcessId>(n - 2),
                                              static_cast<ProcessId>(n - 1)));
    SYNCTS_ENSURE(decomposition.complete(),
                  "complete-graph decomposition left edges unassigned");
    return decomposition;
}

EdgeDecomposition default_decomposition(const Graph& g) {
    return default_decomposition(g, nullptr);
}

EdgeDecomposition default_decomposition(const Graph& g,
                                        obs::MetricsRegistry* registry) {
    const auto publish = [&](std::size_t greedy_groups,
                             std::size_t cover_groups, std::size_t chosen) {
        if (registry == nullptr) return;
        const std::size_t bound = decomposition_lower_bound(g);
        registry->gauge("decomp_greedy_groups")
            .set(static_cast<std::int64_t>(greedy_groups));
        registry->gauge("decomp_cover_groups")
            .set(static_cast<std::int64_t>(cover_groups));
        registry->gauge("decomp_groups")
            .set(static_cast<std::int64_t>(chosen));
        registry->gauge("decomp_lower_bound")
            .set(static_cast<std::int64_t>(bound));
        registry->gauge("decomp_gap")
            .set(static_cast<std::int64_t>(chosen) -
                 static_cast<std::int64_t>(bound));
    };

    const std::size_t n = g.num_vertices();
    if (n >= 3 && g.num_edges() == n * (n - 1) / 2) {
        // Complete graphs: N−2 groups, the best any method achieves here.
        EdgeDecomposition trivial = trivial_complete_decomposition(g);
        publish(trivial.size(), trivial.size(), trivial.size());
        return trivial;
    }
    EdgeDecomposition greedy = greedy_edge_decomposition(g);
    if (g.num_edges() == 0) {
        publish(greedy.size(), greedy.size(), greedy.size());
        return greedy;
    }
    // The matching-based cover often wins on hub-shaped topologies
    // (client–server: one star per server, per Section 3.3) because cover
    // vertices that own no edges drop out; greedy wins when triangles
    // matter. Keep whichever is smaller.
    EdgeDecomposition covered = approx_cover_decomposition(g);
    const bool cover_wins = covered.size() < greedy.size();
    publish(greedy.size(), covered.size(),
            cover_wins ? covered.size() : greedy.size());
    return cover_wins ? covered : greedy;
}

}  // namespace syncts
