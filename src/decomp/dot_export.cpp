#include "decomp/dot_export.hpp"

#include <array>
#include <sstream>

namespace syncts {

std::string to_dot(const Graph& g) {
    std::ostringstream os;
    os << "graph topology {\n  node [shape=circle];\n";
    for (ProcessId v = 0; v < g.num_vertices(); ++v) {
        os << "  P" << (v + 1) << ";\n";
    }
    for (const Edge& e : g.edges()) {
        os << "  P" << (e.u + 1) << " -- P" << (e.v + 1) << ";\n";
    }
    os << "}\n";
    return os.str();
}

std::string to_dot(const EdgeDecomposition& decomposition) {
    static constexpr std::array<const char*, 8> kPalette = {
        "crimson", "royalblue", "forestgreen", "darkorange",
        "purple",  "teal",      "goldenrod",   "deeppink"};
    const Graph& g = decomposition.graph();
    std::ostringstream os;
    os << "graph decomposition {\n  node [shape=circle];\n";
    // Star roots drawn bold.
    std::vector<char> is_root(g.num_vertices(), 0);
    for (const EdgeGroup& group : decomposition.groups()) {
        if (group.kind == GroupKind::star) is_root[group.root] = 1;
    }
    for (ProcessId v = 0; v < g.num_vertices(); ++v) {
        os << "  P" << (v + 1);
        if (is_root[v]) os << " [penwidth=2, style=bold]";
        os << ";\n";
    }
    for (std::size_t index = 0; index < g.num_edges(); ++index) {
        const Edge& e = g.edge(index);
        const GroupId group = decomposition.group_of_edge_index(index);
        os << "  P" << (e.u + 1) << " -- P" << (e.v + 1);
        if (group != kNoGroup) {
            os << " [label=\"E" << (group + 1) << "\", color="
               << kPalette[group % kPalette.size()] << ']';
        }
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace syncts
