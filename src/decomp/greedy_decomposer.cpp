#include "decomp/greedy_decomposer.hpp"

#include <algorithm>
#include <optional>

#include "graph/triangles.hpp"

namespace syncts {

const char* to_string(GreedyStep step) {
    switch (step) {
        case GreedyStep::pendant_star: return "step1/pendant-star";
        case GreedyStep::degree2_triangle: return "step2/triangle";
        case GreedyStep::heavy_edge_stars: return "step3/heavy-edge";
    }
    return "unknown";
}

namespace {

/// Mutable view of the not-yet-decomposed edge set F of Fig. 7.
class Worklist {
public:
    explicit Worklist(const Graph& g)
        : graph_(g), live_(g.num_edges(), 1), degree_(g.num_vertices(), 0) {
        for (const Edge& e : g.edges()) {
            ++degree_[e.u];
            ++degree_[e.v];
        }
        live_count_ = g.num_edges();
    }

    bool empty() const noexcept { return live_count_ == 0; }
    std::size_t degree(ProcessId v) const { return degree_[v]; }
    bool edge_live(std::size_t index) const { return live_[index] != 0; }

    bool has_live_edge(ProcessId a, ProcessId b) const {
        const auto index = graph_.edge_index(a, b);
        return index.has_value() && live_[*index];
    }

    /// Live edges incident to v, as Edge values.
    std::vector<Edge> live_incident(ProcessId v) const {
        std::vector<Edge> result;
        for (const ProcessId w : graph_.neighbors(v)) {
            if (has_live_edge(v, w)) result.push_back(Edge::make(v, w));
        }
        return result;
    }

    void remove(const Edge& e) {
        const auto index = graph_.edge_index(e.u, e.v);
        SYNCTS_ENSURE(index.has_value() && live_[*index],
                      "removing a dead edge from the worklist");
        live_[*index] = 0;
        --degree_[e.u];
        --degree_[e.v];
        --live_count_;
    }

    void remove_all_incident(ProcessId v) {
        for (const Edge& e : live_incident(v)) remove(e);
    }

    /// Smallest pendant vertex (live degree exactly 1); nullopt when none.
    std::optional<ProcessId> find_pendant() const {
        for (ProcessId v = 0; v < graph_.num_vertices(); ++v) {
            if (degree_[v] == 1) return v;
        }
        return std::nullopt;
    }

    /// Lexicographically smallest live triangle with two degree-2 corners.
    std::optional<Triangle> find_degree2_triangle() const {
        std::optional<Triangle> best;
        for (std::size_t i = 0; i < graph_.num_edges(); ++i) {
            if (!live_[i]) continue;
            const Edge& e = graph_.edge(i);
            // A qualifying triangle has two corners of degree exactly 2; at
            // least one triangle edge joins those two corners, so scanning
            // edges with min(deg) == 2 finds every candidate.
            if (degree_[e.u] != 2 && degree_[e.v] != 2) continue;
            const ProcessId probe = degree_[e.u] == 2 ? e.u : e.v;
            const ProcessId other = e.other(probe);
            for (const ProcessId w : graph_.neighbors(probe)) {
                if (w == other) continue;
                if (!has_live_edge(probe, w) || !has_live_edge(other, w)) {
                    continue;
                }
                // Corners of the candidate triangle: probe, other, w. Two of
                // them must have live degree exactly 2.
                int degree2_corners = 0;
                for (const ProcessId corner : {probe, other, w}) {
                    degree2_corners += degree_[corner] == 2 ? 1 : 0;
                }
                if (degree2_corners < 2) continue;
                const Triangle t = Triangle::make(probe, other, w);
                if (!best || t < *best) best = t;
            }
        }
        return best;
    }

    /// Step-3 pivot. most_adjacent: live edge with the largest number of
    /// adjacent live edges (ties toward the smallest dense edge index).
    /// first_live: the smallest-indexed live edge (the ablation variant).
    /// Requires a live edge.
    Edge find_heaviest_edge(HeavyEdgeRule rule) const {
        std::size_t best_index = graph_.num_edges();
        std::size_t best_adjacent = 0;
        for (std::size_t i = 0; i < graph_.num_edges(); ++i) {
            if (!live_[i]) continue;
            if (rule == HeavyEdgeRule::first_live) return graph_.edge(i);
            const Edge& e = graph_.edge(i);
            const std::size_t adjacent =
                (degree_[e.u] - 1) + (degree_[e.v] - 1);
            if (best_index == graph_.num_edges() || adjacent > best_adjacent) {
                best_index = i;
                best_adjacent = adjacent;
            }
        }
        SYNCTS_ENSURE(best_index < graph_.num_edges(),
                      "heaviest-edge search on empty worklist");
        return graph_.edge(best_index);
    }

private:
    const Graph& graph_;
    std::vector<char> live_;
    std::vector<std::size_t> degree_;
    std::size_t live_count_ = 0;
};

EdgeDecomposition run_greedy(const Graph& g,
                             std::vector<GreedyTraceEntry>* trace,
                             HeavyEdgeRule rule) {
    EdgeDecomposition decomposition(g);
    Worklist work(g);

    const auto record = [&](GreedyStep step, GroupId group, Edge witness) {
        if (trace != nullptr) trace->push_back({step, group, witness});
    };

    while (!work.empty()) {
        // First step: pendant vertices spawn stars at their neighbors.
        while (const auto pendant = work.find_pendant()) {
            const std::vector<Edge> lone = work.live_incident(*pendant);
            SYNCTS_ENSURE(lone.size() == 1, "pendant vertex degree mismatch");
            const ProcessId root = lone.front().other(*pendant);
            const std::vector<Edge> star_edges = work.live_incident(root);
            for (const Edge& e : star_edges) work.remove(e);
            const GroupId id = decomposition.add_star(root, star_edges);
            record(GreedyStep::pendant_star, id, lone.front());
        }

        // Second step: triangles whose two corners have degree exactly 2.
        while (const auto t = work.find_degree2_triangle()) {
            const auto [x, y, z] = t->corners;
            for (const Edge& e :
                 {Edge::make(x, y), Edge::make(y, z), Edge::make(x, z)}) {
                work.remove(e);
            }
            const GroupId id = decomposition.add_triangle(*t);
            record(GreedyStep::degree2_triangle, id, Edge::make(x, y));
        }

        if (work.empty()) break;

        // Third step: the edge with the most adjacent edges spawns two
        // stars. Per the paper, y's star takes all incident edges including
        // (x, y); x's star takes the rest of x's edges (skipped if empty).
        const Edge heavy = work.find_heaviest_edge(rule);
        const ProcessId x = heavy.u;
        const ProcessId y = heavy.v;
        const std::vector<Edge> y_star = work.live_incident(y);
        for (const Edge& e : y_star) work.remove(e);
        const GroupId y_id = decomposition.add_star(y, y_star);
        record(GreedyStep::heavy_edge_stars, y_id, heavy);
        const std::vector<Edge> x_star = work.live_incident(x);
        if (!x_star.empty()) {
            for (const Edge& e : x_star) work.remove(e);
            const GroupId x_id = decomposition.add_star(x, x_star);
            record(GreedyStep::heavy_edge_stars, x_id, heavy);
        }
    }

    SYNCTS_ENSURE(decomposition.complete(),
                  "greedy decomposition left edges unassigned");
    return decomposition;
}

}  // namespace

EdgeDecomposition greedy_edge_decomposition(const Graph& g,
                                            HeavyEdgeRule rule) {
    return run_greedy(g, nullptr, rule);
}

EdgeDecomposition greedy_edge_decomposition_traced(
    const Graph& g, std::vector<GreedyTraceEntry>& trace,
    HeavyEdgeRule rule) {
    return run_greedy(g, &trace, rule);
}

}  // namespace syncts
