#pragma once

#include <string>
#include <vector>

#include "decomp/edge_decomposition.hpp"
#include "graph/graph.hpp"

/// \file greedy_decomposer.hpp
/// The paper's approximation algorithm for edge decomposition (Fig. 7).
///
/// Repeatedly: (1) while a pendant vertex x exists, emit the star rooted at
/// its neighbor y with all of y's remaining edges; (2) while a triangle
/// (x,y,z) with degree(x) = degree(y) = 2 exists, emit it; (3) pick the edge
/// (x,y) with the largest number of adjacent remaining edges and emit two
/// stars, one rooted at y (all incident edges) and one rooted at x (the
/// rest). Theorem 6: the result is at most twice the optimal size.
/// Theorem 7: it is optimal on acyclic graphs. Runs in O(|V||E|).

namespace syncts {

/// Which of the three steps of Fig. 7 emitted a group — recorded so the
/// FIG8 benchmark can print the sample run exactly as the paper narrates it.
enum class GreedyStep { pendant_star, degree2_triangle, heavy_edge_stars };

/// Step-3 pivot choice. The paper picks the edge with the largest number
/// of adjacent edges but notes that "the correctness and the approximation
/// ratio is independent of that choice" — `first_live` is the ablation
/// (take the lowest-indexed remaining edge) used to measure how much the
/// heuristic actually buys.
enum class HeavyEdgeRule { most_adjacent, first_live };

struct GreedyTraceEntry {
    GreedyStep step;
    GroupId group;
    /// The witness for the step: the pendant edge (step 1), any triangle
    /// edge (step 2), or the chosen heaviest edge (step 3).
    Edge witness;
};

const char* to_string(GreedyStep step);

/// Runs Fig. 7 on `g`. Deterministic: step 1 picks the smallest pendant
/// vertex, step 2 the lexicographically smallest eligible triangle, and
/// step 3 breaks adjacency ties by smallest dense edge index.
EdgeDecomposition greedy_edge_decomposition(
    const Graph& g, HeavyEdgeRule rule = HeavyEdgeRule::most_adjacent);

/// Same, also appending one entry per emitted group to `trace`.
EdgeDecomposition greedy_edge_decomposition_traced(
    const Graph& g, std::vector<GreedyTraceEntry>& trace,
    HeavyEdgeRule rule = HeavyEdgeRule::most_adjacent);

}  // namespace syncts
