#include "decomp/edge_decomposition.hpp"

#include <sstream>
#include <utility>

namespace syncts {

EdgeDecomposition::EdgeDecomposition(Graph g)
    : graph_(std::move(g)), assignment_(graph_.num_edges(), kNoGroup) {}

GroupId EdgeDecomposition::assign(const Edge& e, GroupId group) {
    const auto index = graph_.edge_index(e.u, e.v);
    SYNCTS_REQUIRE(index.has_value(), "edge does not exist in the topology");
    SYNCTS_REQUIRE(assignment_[*index] == kNoGroup,
                   "edge already assigned to a group");
    assignment_[*index] = group;
    ++assigned_count_;
    return group;
}

GroupId EdgeDecomposition::add_star(ProcessId root,
                                    std::span<const Edge> edges) {
    SYNCTS_REQUIRE(!edges.empty(), "star group must contain at least one edge");
    SYNCTS_REQUIRE(root < graph_.num_vertices(), "star root out of range");
    const auto id = static_cast<GroupId>(groups_.size());
    EdgeGroup group;
    group.kind = GroupKind::star;
    group.root = root;
    group.edges.assign(edges.begin(), edges.end());
    for (const Edge& e : group.edges) {
        SYNCTS_REQUIRE(e.touches(root), "star edge not incident to root");
        assign(e, id);
    }
    groups_.push_back(std::move(group));
    ++star_count_;
    return id;
}

GroupId EdgeDecomposition::add_triangle(const Triangle& t) {
    const auto [x, y, z] = t.corners;
    const auto id = static_cast<GroupId>(groups_.size());
    EdgeGroup group;
    group.kind = GroupKind::triangle;
    group.triangle = t;
    group.edges = {Edge::make(x, y), Edge::make(y, z), Edge::make(x, z)};
    for (const Edge& e : group.edges) assign(e, id);
    groups_.push_back(std::move(group));
    return id;
}

ProcessId EdgeDecomposition::add_leaf_process(
    std::span<const GroupId> star_groups) {
    for (const GroupId id : star_groups) {
        SYNCTS_REQUIRE(id < groups_.size(), "group id out of range");
        SYNCTS_REQUIRE(groups_[id].kind == GroupKind::star,
                       "can only grow star groups");
    }
    for (std::size_t i = 0; i < star_groups.size(); ++i) {
        for (std::size_t j = i + 1; j < star_groups.size(); ++j) {
            SYNCTS_REQUIRE(star_groups[i] != star_groups[j],
                           "duplicate star group");
        }
    }
    const ProcessId newcomer = graph_.add_vertex();
    for (const GroupId id : star_groups) {
        EdgeGroup& group = groups_[id];
        const Edge e = Edge::make(group.root, newcomer);
        const std::size_t edge_index = graph_.add_edge(e.u, e.v);
        SYNCTS_ENSURE(edge_index == assignment_.size(),
                      "edge index drifted from assignment table");
        assignment_.push_back(id);
        ++assigned_count_;
        group.edges.push_back(e);
    }
    return newcomer;
}

GroupId EdgeDecomposition::group_of(ProcessId a, ProcessId b) const {
    const auto index = graph_.edge_index(a, b);
    SYNCTS_REQUIRE(index.has_value(),
                   "no channel between these processes in the topology");
    const GroupId g = assignment_[*index];
    SYNCTS_REQUIRE(g != kNoGroup, "channel not assigned to any edge group");
    return g;
}

GroupId EdgeDecomposition::group_of_edge_index(std::size_t edge_index) const {
    SYNCTS_REQUIRE(edge_index < assignment_.size(), "edge index out of range");
    return assignment_[edge_index];
}

const EdgeGroup& EdgeDecomposition::group(GroupId id) const {
    SYNCTS_REQUIRE(id < groups_.size(), "group id out of range");
    return groups_[id];
}

std::string EdgeDecomposition::to_string() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        if (i != 0) os << "; ";
        const EdgeGroup& g = groups_[i];
        os << 'E' << (i + 1) << " = ";
        if (g.kind == GroupKind::star) {
            os << "star@" << g.root;
        } else {
            os << "triangle(" << g.triangle.corners[0] << ','
               << g.triangle.corners[1] << ',' << g.triangle.corners[2] << ')';
        }
        os << " {";
        for (std::size_t k = 0; k < g.edges.size(); ++k) {
            if (k != 0) os << ',';
            os << '(' << g.edges[k].u << '-' << g.edges[k].v << ')';
        }
        os << '}';
    }
    return os.str();
}

}  // namespace syncts
