#include "decomp/decomp_io.hpp"

#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace syncts {

void write_decomposition(std::ostream& out,
                         const EdgeDecomposition& decomposition,
                         EpochId epoch) {
    const Graph& g = decomposition.graph();
    if (epoch == 0) {
        // Epoch 0 keeps the pre-epoch layout byte-identical, so old
        // readers stay compatible with the common case.
        out << "syncts-decomp 1\n";
    } else {
        out << "syncts-decomp 2\n";
        out << "epoch " << epoch << '\n';
    }
    out << "processes " << g.num_vertices() << '\n';
    out << "edges " << g.num_edges() << '\n';
    for (const Edge& e : g.edges()) out << "e " << e.u << ' ' << e.v << '\n';
    out << "groups " << decomposition.size() << '\n';
    for (const EdgeGroup& group : decomposition.groups()) {
        if (group.kind == GroupKind::star) {
            out << "s " << group.root << ' ' << group.edges.size();
            for (const Edge& e : group.edges) {
                out << ' ' << e.u << ' ' << e.v;
            }
            out << '\n';
        } else {
            out << "t " << group.triangle.corners[0] << ' '
                << group.triangle.corners[1] << ' '
                << group.triangle.corners[2] << '\n';
        }
    }
}

void write_decomposition(std::ostream& out,
                         const EdgeDecomposition& decomposition) {
    write_decomposition(out, decomposition, 0);
}

std::string serialize_decomposition(const EdgeDecomposition& decomposition,
                                    EpochId epoch) {
    std::ostringstream os;
    write_decomposition(os, decomposition, epoch);
    return os.str();
}

std::string serialize_decomposition(const EdgeDecomposition& decomposition) {
    return serialize_decomposition(decomposition, 0);
}

namespace {

using Kind = DecompIoError::Kind;

std::string next_token(std::istream& in, const char* what) {
    std::string token;
    if (!(in >> token)) {
        throw DecompIoError(
            Kind::truncated,
            std::string("decomposition input truncated, expected ") + what);
    }
    return token;
}

std::size_t next_number(std::istream& in, const char* what) {
    const std::string token = next_token(in, what);
    try {
        std::size_t consumed = 0;
        const unsigned long long value = std::stoull(token, &consumed);
        if (consumed != token.size()) {
            throw DecompIoError(Kind::bad_number,
                                std::string("trailing garbage in ") + what +
                                    ": '" + token + "'");
        }
        return static_cast<std::size_t>(value);
    } catch (const std::logic_error&) {
        throw DecompIoError(Kind::bad_number,
                            std::string("expected a number for ") + what +
                                ", got '" + token + "'");
    }
}

ProcessId next_process(std::istream& in, std::size_t n, const char* what) {
    const std::size_t value = next_number(in, what);
    if (value >= n) {
        throw DecompIoError(Kind::out_of_range,
                            std::string(what) + " out of range");
    }
    return static_cast<ProcessId>(value);
}

void expect_keyword(std::istream& in, const char* keyword) {
    if (next_token(in, keyword) != keyword) {
        throw DecompIoError(Kind::bad_record,
                            std::string("expected '") + keyword + "'");
    }
}

}  // namespace

TaggedDecomposition read_tagged_decomposition(std::istream& in) {
    if (next_token(in, "magic") != "syncts-decomp") {
        throw DecompIoError(Kind::bad_magic,
                            "not a syncts decomposition (bad magic)");
    }
    const std::size_t version = next_number(in, "version");
    if (version != 1 && version != 2) {
        throw DecompIoError(Kind::bad_version,
                            "unsupported decomposition version " +
                                std::to_string(version));
    }
    EpochId epoch = 0;
    if (version == 2) {
        expect_keyword(in, "epoch");
        const std::size_t value = next_number(in, "epoch id");
        // Epoch 0 is spelled as version 1; a v2 file claiming it is
        // either hand-mangled or from a writer this build doesn't know.
        if (value == 0 || value > std::numeric_limits<EpochId>::max()) {
            throw DecompIoError(Kind::out_of_range,
                                "version-2 epoch id out of range");
        }
        epoch = static_cast<EpochId>(value);
    }
    expect_keyword(in, "processes");
    const std::size_t n = next_number(in, "process count");
    expect_keyword(in, "edges");
    const std::size_t m = next_number(in, "edge count");

    Graph g(n);
    for (std::size_t i = 0; i < m; ++i) {
        if (next_token(in, "edge record") != "e") {
            throw DecompIoError(Kind::bad_record, "expected edge record 'e'");
        }
        const ProcessId u = next_process(in, n, "edge endpoint");
        const ProcessId v = next_process(in, n, "edge endpoint");
        g.add_edge(u, v);
    }

    expect_keyword(in, "groups");
    const std::size_t group_count = next_number(in, "group count");
    if (group_count == 0 && g.num_edges() > 0) {
        // Catch the gap at the declaration, not via the completeness
        // sweep after the fact: a groupless artifact for a non-empty
        // graph is a distinct (and historically confusing) failure.
        throw DecompIoError(
            Kind::empty_groups,
            "decomposition declares no groups but the graph has " +
                std::to_string(g.num_edges()) + " channel(s)");
    }
    EdgeDecomposition decomposition(std::move(g));
    for (std::size_t i = 0; i < group_count; ++i) {
        const std::string kind = next_token(in, "group record");
        if (kind == "s") {
            const ProcessId root = next_process(in, n, "star root");
            const std::size_t edge_count = next_number(in, "star edge count");
            std::vector<Edge> edges;
            edges.reserve(edge_count);
            for (std::size_t k = 0; k < edge_count; ++k) {
                const ProcessId u = next_process(in, n, "star edge endpoint");
                const ProcessId v = next_process(in, n, "star edge endpoint");
                edges.push_back(Edge::make(u, v));
            }
            decomposition.add_star(root, edges);
        } else if (kind == "t") {
            const ProcessId x = next_process(in, n, "triangle corner");
            const ProcessId y = next_process(in, n, "triangle corner");
            const ProcessId z = next_process(in, n, "triangle corner");
            decomposition.add_triangle(Triangle::make(x, y, z));
        } else {
            throw DecompIoError(Kind::bad_record,
                                "unknown group record '" + kind + "'");
        }
    }
    if (!decomposition.complete()) {
        throw DecompIoError(Kind::incomplete,
                            "decomposition does not cover every edge");
    }
    return TaggedDecomposition{.epoch = epoch,
                               .decomposition = std::move(decomposition)};
}

TaggedDecomposition parse_tagged_decomposition(const std::string& text) {
    std::istringstream in(text);
    return read_tagged_decomposition(in);
}

EdgeDecomposition read_decomposition(std::istream& in) {
    return read_tagged_decomposition(in).decomposition;
}

EdgeDecomposition parse_decomposition(const std::string& text) {
    std::istringstream in(text);
    return read_decomposition(in);
}

}  // namespace syncts
