#include "decomp/decomp_io.hpp"

#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace syncts {

void write_decomposition(std::ostream& out,
                         const EdgeDecomposition& decomposition) {
    const Graph& g = decomposition.graph();
    out << "syncts-decomp 1\n";
    out << "processes " << g.num_vertices() << '\n';
    out << "edges " << g.num_edges() << '\n';
    for (const Edge& e : g.edges()) out << "e " << e.u << ' ' << e.v << '\n';
    out << "groups " << decomposition.size() << '\n';
    for (const EdgeGroup& group : decomposition.groups()) {
        if (group.kind == GroupKind::star) {
            out << "s " << group.root << ' ' << group.edges.size();
            for (const Edge& e : group.edges) {
                out << ' ' << e.u << ' ' << e.v;
            }
            out << '\n';
        } else {
            out << "t " << group.triangle.corners[0] << ' '
                << group.triangle.corners[1] << ' '
                << group.triangle.corners[2] << '\n';
        }
    }
}

std::string serialize_decomposition(const EdgeDecomposition& decomposition) {
    std::ostringstream os;
    write_decomposition(os, decomposition);
    return os.str();
}

namespace {

std::string next_token(std::istream& in, const char* what) {
    std::string token;
    SYNCTS_REQUIRE(static_cast<bool>(in >> token),
                   std::string("decomposition input truncated, expected ") +
                       what);
    return token;
}

std::size_t next_number(std::istream& in, const char* what) {
    const std::string token = next_token(in, what);
    try {
        std::size_t consumed = 0;
        const unsigned long long value = std::stoull(token, &consumed);
        SYNCTS_REQUIRE(consumed == token.size(), "trailing garbage in number");
        return static_cast<std::size_t>(value);
    } catch (const std::logic_error&) {
        throw std::invalid_argument(std::string("expected a number for ") +
                                    what + ", got '" + token + "'");
    }
}

ProcessId next_process(std::istream& in, std::size_t n, const char* what) {
    const std::size_t value = next_number(in, what);
    SYNCTS_REQUIRE(value < n, std::string(what) + " out of range");
    return static_cast<ProcessId>(value);
}

}  // namespace

EdgeDecomposition read_decomposition(std::istream& in) {
    SYNCTS_REQUIRE(next_token(in, "magic") == "syncts-decomp",
                   "not a syncts decomposition (bad magic)");
    SYNCTS_REQUIRE(next_number(in, "version") == 1,
                   "unsupported decomposition version");
    SYNCTS_REQUIRE(next_token(in, "processes keyword") == "processes",
                   "expected 'processes'");
    const std::size_t n = next_number(in, "process count");
    SYNCTS_REQUIRE(next_token(in, "edges keyword") == "edges",
                   "expected 'edges'");
    const std::size_t m = next_number(in, "edge count");

    Graph g(n);
    for (std::size_t i = 0; i < m; ++i) {
        SYNCTS_REQUIRE(next_token(in, "edge record") == "e",
                       "expected edge record 'e'");
        const ProcessId u = next_process(in, n, "edge endpoint");
        const ProcessId v = next_process(in, n, "edge endpoint");
        g.add_edge(u, v);
    }

    SYNCTS_REQUIRE(next_token(in, "groups keyword") == "groups",
                   "expected 'groups'");
    const std::size_t group_count = next_number(in, "group count");
    EdgeDecomposition decomposition(std::move(g));
    for (std::size_t i = 0; i < group_count; ++i) {
        const std::string kind = next_token(in, "group record");
        if (kind == "s") {
            const ProcessId root = next_process(in, n, "star root");
            const std::size_t edge_count = next_number(in, "star edge count");
            std::vector<Edge> edges;
            edges.reserve(edge_count);
            for (std::size_t k = 0; k < edge_count; ++k) {
                const ProcessId u = next_process(in, n, "star edge endpoint");
                const ProcessId v = next_process(in, n, "star edge endpoint");
                edges.push_back(Edge::make(u, v));
            }
            decomposition.add_star(root, edges);
        } else if (kind == "t") {
            const ProcessId x = next_process(in, n, "triangle corner");
            const ProcessId y = next_process(in, n, "triangle corner");
            const ProcessId z = next_process(in, n, "triangle corner");
            decomposition.add_triangle(Triangle::make(x, y, z));
        } else {
            throw std::invalid_argument("unknown group record '" + kind +
                                        "'");
        }
    }
    SYNCTS_REQUIRE(decomposition.complete(),
                   "decomposition does not cover every edge");
    return decomposition;
}

EdgeDecomposition parse_decomposition(const std::string& text) {
    std::istringstream in(text);
    return read_decomposition(in);
}

}  // namespace syncts
