#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "decomp/edge_group.hpp"
#include "graph/graph.hpp"

/// \file edge_decomposition.hpp
/// A partition of the communication topology's edge set into stars and
/// triangles (Definition 2). The decomposition's size d is the length of
/// every vector timestamp produced by the online algorithm, and the map
/// edge → group index tells each process which component to increment.
///
/// The class owns a copy of the topology graph so a decomposition is a
/// self-contained value: it can be shipped to every process at startup
/// ("we assume that information about edge decomposition is known by all
/// processes", Section 3.2).

namespace syncts {

class EdgeDecomposition {
public:
    /// Starts an empty (no groups) decomposition of `g`'s edge set.
    explicit EdgeDecomposition(Graph g);

    /// Adds a star group rooted at `root` containing `edges`. Every edge
    /// must exist in the graph, be incident to `root`, and be unassigned.
    /// Empty stars are rejected. Returns the new group's index.
    GroupId add_star(ProcessId root, std::span<const Edge> edges);

    /// Adds a triangle group. All three triangle edges must exist and be
    /// unassigned. Returns the new group's index.
    GroupId add_triangle(const Triangle& t);

    /// Grows the system without changing the timestamp width d: adds a new
    /// process with one channel per listed star group, each new edge
    /// joining that group (its star root becomes the new process's peer).
    /// This is the paper's client-join operation (Section 3.3): "if the
    /// number of processes increases without changing the size of its edge
    /// decomposition, the size of our vector clocks is constant". Every
    /// listed group must be a star; duplicates are rejected. Returns the
    /// new process id.
    ProcessId add_leaf_process(std::span<const GroupId> star_groups);

    /// Number of groups d — the timestamp width.
    std::size_t size() const noexcept { return groups_.size(); }

    /// True when every edge of the graph is assigned to some group, i.e.
    /// the partition is complete per Definition 2.
    bool complete() const noexcept { return assigned_count_ == graph_.num_edges(); }

    /// Group index of the channel {a, b}. Throws when {a, b} is not an edge
    /// or is not yet assigned. This is the g in "v_i[g]++" of Fig. 5.
    GroupId group_of(ProcessId a, ProcessId b) const;

    /// Group index by dense edge index; kNoGroup when unassigned.
    GroupId group_of_edge_index(std::size_t edge_index) const;

    const EdgeGroup& group(GroupId id) const;
    std::span<const EdgeGroup> groups() const noexcept { return groups_; }

    const Graph& graph() const noexcept { return graph_; }

    std::size_t star_count() const noexcept { return star_count_; }
    std::size_t triangle_count() const noexcept {
        return groups_.size() - star_count_;
    }

    /// Human-readable listing, e.g. "E1 = star@2 {…}; E2 = triangle(0,1,4) {…}".
    std::string to_string() const;

private:
    GroupId assign(const Edge& e, GroupId group);

    Graph graph_;
    std::vector<EdgeGroup> groups_;
    std::vector<GroupId> assignment_;  // dense edge index -> group
    std::size_t assigned_count_ = 0;
    std::size_t star_count_ = 0;
};

}  // namespace syncts
