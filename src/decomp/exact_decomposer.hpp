#pragma once

#include <cstddef>
#include <optional>

#include "decomp/edge_decomposition.hpp"
#include "graph/graph.hpp"

/// \file exact_decomposer.hpp
/// Exact optimal edge decomposition α(G) by branch-and-bound.
///
/// Observation (used implicitly by the paper's Section 3.3 discussion): an
/// edge decomposition of size k exists iff k "objects" — vertices acting as
/// star roots, or triangles of G — cover every edge. Given a cover, assign
/// each edge to one covering object; an object holding 1–2 edges of its
/// triangle still forms a star (any two triangle edges share a corner), so
/// the partition property of Definition 2 is preserved. Conversely every
/// decomposition is such a cover. We therefore search over root/triangle
/// covers, branching on the first uncovered edge, with a matching lower
/// bound (pairwise-disjoint edges always need distinct groups).
///
/// Exponential in α(G); intended for the approximation-ratio experiments on
/// small graphs, not production topologies.

namespace syncts {

/// Computes an optimal (minimum-size) edge decomposition. `node_budget`
/// caps the number of search-tree nodes; returns nullopt if exceeded.
std::optional<EdgeDecomposition> exact_edge_decomposition(
    const Graph& g, std::size_t node_budget = 50'000'000);

/// Lower bound on α(G): size of a maximal matching (greedy). Edges of a
/// matching pairwise share no vertex, so no two fit in one star/triangle.
std::size_t decomposition_lower_bound(const Graph& g);

}  // namespace syncts
