// Orphan detection for optimistic recovery (Strom & Yemini; Damani &
// Garg) — the fault-tolerance application from the paper's introduction.
//
// Under optimistic logging a process may fail having executed messages it
// never logged. Every message causally after a lost one is an *orphan* and
// must be rolled back. With exact timestamps the orphan set is a pure
// timestamp query: orphan(m) ⟺ v(lost) < v(m) — no graph traversal, and
// no false rollbacks (an over-approximating clock would also roll back
// healthy work; see the plausible-clock comparison at the end).
//
// Build & run:  ./optimistic_recovery

#include <cstdio>
#include <vector>

#include "clocks/plausible_clock.hpp"
#include "common/rng.hpp"
#include "core/cuts.hpp"
#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "graph/generators.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

int main() {
    // A 3-server / 6-client system processing a batch of requests.
    const Graph g = topology::client_server(3, 6);
    const SyncSystem system{Graph(g)};
    Rng rng(4242);
    WorkloadOptions options;
    options.num_messages = 30;
    const SyncComputation computation = random_computation(g, options, rng);
    const TimestampedTrace trace = system.analyze(computation);
    std::printf("batch of %zu messages over %zu processes (d = %zu)\n",
                trace.num_messages(), system.num_processes(),
                system.width());

    // Server 1 crashes; its latest unlogged message is the last message it
    // participated in.
    constexpr ProcessId crashed = 1;
    const auto participations = computation.process_messages(crashed);
    if (participations.empty()) {
        std::printf("server P%u never communicated; nothing to recover\n",
                    crashed + 1);
        return 0;
    }
    const MessageId lost = participations.back();
    std::printf("server P%u crashes; unlogged message: m%u %s\n",
                crashed + 1, lost + 1,
                trace.timestamp(lost).to_string().c_str());

    // Orphans: everything causally after the lost message.
    std::vector<MessageId> orphans;
    for (MessageId m = 0; m < trace.num_messages(); ++m) {
        if (trace.precedes(lost, m)) orphans.push_back(m);
    }
    std::printf("orphans to roll back: %zu of %zu\n", orphans.size(),
                trace.num_messages());
    for (const MessageId m : orphans) {
        const SyncMessage& msg = computation.message(m);
        std::printf("  m%-3u P%u->P%-2u %s\n", m + 1, msg.sender + 1,
                    msg.receiver + 1, trace.timestamp(m).to_string().c_str());
    }

    // Processes that must roll back: participants of any orphan.
    std::vector<char> must_roll(computation.num_processes(), 0);
    for (const MessageId m : orphans) {
        must_roll[computation.message(m).sender] = 1;
        must_roll[computation.message(m).receiver] = 1;
    }
    std::printf("processes rolling back:");
    for (ProcessId p = 0; p < computation.num_processes(); ++p) {
        if (must_roll[p]) std::printf(" P%u", p + 1);
    }
    std::printf("\n");

    // The recovery line: the largest consistent cut excluding the lost
    // message — guaranteed consistent, so restarting from its frontier
    // can never resurrect an orphan.
    const auto line = recovery_line(trace, {lost});
    const auto frontier = cut_frontier(trace, line);
    std::printf("recovery line: %zu messages survive; frontier to "
                "checkpoint:",
                line.size());
    for (const MessageId m : frontier) std::printf(" m%u", m + 1);
    std::printf("\n");

    // What an inexact clock would have cost: a width-1 plausible clock
    // falsely orders concurrent messages, inflating the rollback set.
    PlausibleTimestamper plausible(computation.num_processes(), 1);
    const auto fuzzy = plausible.timestamp_computation(computation);
    std::size_t fuzzy_orphans = 0;
    for (MessageId m = 0; m < fuzzy.size(); ++m) {
        if (m != lost && fuzzy[lost].less(fuzzy[m])) ++fuzzy_orphans;
    }
    std::printf(
        "\nwith a width-1 plausible clock the rollback set would be %zu "
        "messages (%zu healthy messages rolled back unnecessarily)\n",
        fuzzy_orphans, fuzzy_orphans - orphans.size());
    return 0;
}
