// Global predicate detection — "possibly(φ1 ∧ φ2)" over a live run.
//
// The paper's introduction cites global property evaluation as a core
// application of order-capturing timestamps. Here two door sensors in a
// building-control system raise "door open" predicates; the safety rule is
// that both doors must never be open at once. Because physical clocks are
// useless for this, the detector asks the causal question instead: is
// there a consistent global state where both predicates hold — i.e., a
// pairwise-concurrent pair of "door open" events?
//
// Build & run:  ./predicate_detection

#include <cstdio>
#include <vector>

#include "core/predicate_detection.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "runtime/network.hpp"

using namespace syncts;

int main() {
    // P0 = controller; P1, P2 = door units; P3 = logger.
    const SyncSystem system(topology::star(4));
    std::printf("building control: %zu processes, d = %zu\n\n",
                system.num_processes(), system.width());

    TimestampedNetwork network = system.make_network();
    std::vector<ProcessProgram> programs(4);
    programs[1] = [](ProcessContext& context) {
        context.internal_event("door1-open");    // before any sync: risky
        context.send(0, "door1 opened");
        context.internal_event("door1-closed");
        context.send(0, "door1 closed");
    };
    programs[2] = [](ProcessContext& context) {
        context.receive_from(0);                 // wait for the all-clear
        context.internal_event("door2-open");
        context.send(0, "door2 opened");
    };
    programs[3] = [](ProcessContext& context) {
        context.receive_from(0);  // end-of-day log flush
    };
    programs[0] = [](ProcessContext& context) {
        context.receive_from(1);  // door1 opened
        context.receive_from(1);  // door1 closed
        context.send(2, "all clear");  // only now may door2 open
        context.receive_from(2);  // door2 opened
        context.send(3, "flush log");
    };

    const RunRecord record = network.run(programs);

    // Collect the "door open" interval starts per door.
    std::vector<std::vector<EventTimestamp>> candidates(2);
    for (std::size_t i = 0; i < record.internal_notes.size(); ++i) {
        if (record.internal_notes[i] == "door1-open") {
            candidates[0].push_back(record.internal_stamps[i]);
        }
        if (record.internal_notes[i] == "door2-open") {
            candidates[1].push_back(record.internal_stamps[i]);
        }
    }
    const auto verdict = detect_weak_conjunctive(candidates);
    std::printf("possibly(door1-open AND door2-open)? %s\n",
                verdict.detected ? "YES — safety violation possible"
                                 : "no — the protocol serializes the doors");

    // Break the protocol: door2 no longer waits for the all-clear.
    TimestampedNetwork broken = system.make_network();
    programs[2] = [](ProcessContext& context) {
        context.internal_event("door2-open");  // no receive first!
        context.send(0, "door2 opened");
        context.receive_from(0);               // all-clear arrives too late
    };
    programs[0] = [](ProcessContext& context) {
        context.receive_from(1);
        context.receive_from(1);
        context.receive_from(2);
        context.send(2, "all clear");
        context.send(3, "flush log");
    };
    const RunRecord broken_record = broken.run(programs);
    std::vector<std::vector<EventTimestamp>> broken_candidates(2);
    for (std::size_t i = 0; i < broken_record.internal_notes.size(); ++i) {
        if (broken_record.internal_notes[i] == "door1-open") {
            broken_candidates[0].push_back(broken_record.internal_stamps[i]);
        }
        if (broken_record.internal_notes[i] == "door2-open") {
            broken_candidates[1].push_back(broken_record.internal_stamps[i]);
        }
    }
    const auto broken_verdict = detect_weak_conjunctive(broken_candidates);
    std::printf("after removing the all-clear handshake:        %s\n",
                broken_verdict.detected
                    ? "YES — safety violation possible"
                    : "no");
    return 0;
}
