// Quickstart: timestamp a synchronous computation and ask causal
// questions.
//
//   1. Describe the communication topology.
//   2. Build a SyncSystem (it picks an edge decomposition; the vector
//      width d is typically far below the process count).
//   3. Record or run a computation, analyze it, and query precedence.
//
// Build & run:  ./quickstart

#include <cstdio>

#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "graph/generators.hpp"

using namespace syncts;

int main() {
    // A 6-process system: clients 2..5 talk to servers 0 and 1 over
    // synchronous RPC.
    const Graph topology = topology::client_server(/*servers=*/2,
                                                   /*clients=*/4);
    const SyncSystem system(topology);
    std::printf("processes: %zu, channels: %zu, timestamp width d = %zu\n",
                system.num_processes(), system.topology().num_edges(),
                system.width());
    std::printf("decomposition: %s\n\n",
                system.decomposition().to_string().c_str());

    // Record a computation: each message is one rendezvous instant.
    SyncComputation computation(system.topology());
    computation.add_message(2, 0);  // m1: client 2 calls server 0
    computation.add_message(3, 1);  // m2: client 3 calls server 1 (parallel)
    computation.add_message(0, 2);  // m3: server 0 replies to client 2
    computation.add_message(2, 1);  // m4: client 2 calls server 1
    computation.add_message(1, 3);  // m5: server 1 replies to client 3

    // Timestamp it (Fig. 5 online algorithm) and query.
    const TimestampedTrace trace = system.analyze(computation);
    std::printf("timestamps:\n%s\n", trace.to_string().c_str());

    std::printf("m1 happens-before m3?  %s\n",
                trace.precedes(0, 2) ? "yes" : "no");
    std::printf("m1 concurrent with m2? %s\n",
                trace.concurrent(0, 1) ? "yes" : "no");
    std::printf("m2 happens-before m4?  %s\n",
                trace.precedes(1, 3) ? "yes" : "no");

    std::printf("\nfrontier (latest operations): ");
    for (const MessageId m : trace.maximal_messages()) {
        std::printf("m%u ", m + 1);
    }
    std::printf("\nconcurrent pairs: %zu\n", trace.concurrent_pair_count());
    std::printf("ground-truth mismatches: %zu (0 = exact encoding)\n",
                trace.verify_against_ground_truth());
    return 0;
}
