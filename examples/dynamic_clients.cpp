// Dynamic client growth — the scalability story of Section 3.3.
//
// "Consider a client-server based system where clients can only
//  communicate with servers ... it is sufficient to use vector clocks of
//  size equal to the number of servers." — and, crucially, that stays
// true as clients join: with_leaf_process() adds a client to every server
// star without changing d, so timestamps issued before and after the
// growth remain directly comparable. FM clocks would need to re-size every
// vector in the system.
//
// Build & run:  ./dynamic_clients

#include <cstdio>
#include <vector>

#include "core/monitor.hpp"
#include "core/sync_system.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"

using namespace syncts;

int main() {
    constexpr std::size_t kServers = 3;
    // Theorem 5 construction, rooted deliberately at the servers: the
    // servers form a vertex cover, so one star per server covers every
    // channel — and group i is exactly server i's star, which is what the
    // join operation below grows.
    const Graph start_topology = topology::client_server(kServers, 2);
    SyncSystem system(decomposition_from_cover(
        start_topology, std::vector<ProcessId>{0, 1, 2}));
    std::printf("start: %zu processes, d = %zu\n", system.num_processes(),
                system.width());

    CausalMonitor monitor;
    auto timestamper = system.make_timestamper();
    // Era 1: the two original clients issue requests.
    monitor.record("c3->s1", timestamper.timestamp_message(3, 0));
    monitor.record("c4->s2", timestamper.timestamp_message(4, 1));

    // Growth: three new clients join, one at a time. Each joins all three
    // server stars; d never changes.
    const std::vector<GroupId> all_servers{0, 1, 2};
    for (int joiner = 0; joiner < 3; ++joiner) {
        auto [grown, newcomer] = system.with_leaf_process(all_servers);
        system = std::move(grown);
        std::printf("client P%u joined: %zu processes, d = %zu\n",
                    newcomer + 1, system.num_processes(), system.width());
    }

    // Era 2: a fresh timestamper over the grown system replays era-1
    // history (same channels, same groups) and continues with new clients.
    auto grown_timestamper = system.make_timestamper();
    grown_timestamper.timestamp_message(3, 0);
    grown_timestamper.timestamp_message(4, 1);
    const ProcessId new_client = 7;
    monitor.record("c8->s1",
                   grown_timestamper.timestamp_message(new_client, 0));
    monitor.record("c8->s3",
                   grown_timestamper.timestamp_message(new_client, 2));

    std::printf("\ncross-era causality (old stamps vs new stamps, same "
                "width %zu):\n",
                system.width());
    for (std::size_t a = 0; a < monitor.size(); ++a) {
        for (std::size_t b = a + 1; b < monitor.size(); ++b) {
            std::printf("  %-8s vs %-8s : %s\n",
                        monitor.operation(a).label.c_str(),
                        monitor.operation(b).label.c_str(),
                        to_string(monitor.order(a, b)));
        }
    }
    return 0;
}
