// Post-mortem analysis with the offline algorithm (Fig. 9 / Section 4).
//
// A monitoring pipeline often records a computation first and analyzes it
// later; the offline algorithm then compresses timestamps to the poset's
// true width — at most floor(N/2) (Theorem 8), and usually much less. This
// example records a workload on a 10-process complete graph (online width
// d = 8), rebuilds the message poset, re-stamps it offline, and compares
// widths and query results.
//
// Build & run:  ./offline_analysis

#include <cstdio>

#include "clocks/offline_timestamper.hpp"
#include "common/rng.hpp"
#include "core/causality.hpp"
#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "graph/generators.hpp"
#include "poset/dilworth.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

int main() {
    const Graph g = topology::complete(10);
    const SyncSystem system{Graph(g)};

    Rng rng(20020);
    WorkloadOptions options;
    options.num_messages = 40;
    const SyncComputation computation = random_computation(g, options, rng);

    // Online view (what was piggybacked while the system ran).
    const TimestampedTrace online = system.analyze(computation);
    std::printf("online: width d = %zu on K10 (worst-case topology)\n",
                system.width());

    // Offline view (what the analyzer stores after the fact).
    const OfflineResult offline = offline_timestamps(computation);
    std::printf(
        "offline: poset width = %zu, Theorem 8 bound floor(N/2) = %zu\n",
        offline.width, offline.theorem8_bound);
    std::printf("realizer: %zu linear extensions, intersection = poset: %s\n",
                offline.realizer.size(),
                realizes(message_poset(computation), offline.realizer)
                    ? "yes"
                    : "NO");

    // Both answer every query identically.
    const Poset truth = message_poset(computation);
    std::size_t checked = 0;
    std::size_t agree = 0;
    for (MessageId a = 0; a < computation.num_messages(); ++a) {
        for (MessageId b = 0; b < computation.num_messages(); ++b) {
            if (a == b) continue;
            ++checked;
            const bool via_online = online.precedes(a, b);
            const bool via_offline =
                offline.timestamps[a].less(offline.timestamps[b]);
            if (via_online == via_offline && via_online == truth.less(a, b)) {
                ++agree;
            }
        }
    }
    std::printf("query agreement (online vs offline vs ground truth): "
                "%zu/%zu\n\n",
                agree, checked);

    // Show a maximum antichain — the widest "wave" of concurrent messages,
    // which is what forces the offline width.
    const auto antichain = maximum_antichain(truth);
    std::printf("one maximum antichain (%zu mutually concurrent messages):",
                antichain.size());
    for (const std::size_t m : antichain) std::printf(" m%zu", m + 1);
    std::printf("\n\nper-message stamps (online width %zu | offline width "
                "%zu):\n",
                system.width(), offline.width);
    for (MessageId m = 0; m < computation.num_messages() && m < 10; ++m) {
        const SyncMessage& msg = computation.message(m);
        std::printf("  m%-2u P%u->P%-2u  %-24s %s\n", m + 1, msg.sender + 1,
                    msg.receiver + 1, online.timestamp(m).to_string().c_str(),
                    offline.timestamps[m].to_string().c_str());
    }
    std::printf("  ... (%zu total)\n", computation.num_messages());
    return 0;
}
