// A CSP-style pipeline over rendezvous channels — the language setting
// the paper targets (CSP, Ada rendezvous; Section 1).
//
// stage0 -> stage1 -> stage2 -> stage3: items flow through blocking
// sends, each stage transforms and forwards. The topology is a path, so
// the decomposition is ceil(edges/2) stars — here 2 components for 4
// processes, and crucially the width stays 2 for a pipeline of any depth
// shape with the same hub structure. Internal events mark per-stage
// processing; their Section 5 tuples order exactly the pairs that are
// truly causally related.
//
// Build & run:  ./csp_pipeline

#include <cstdio>
#include <string>
#include <vector>

#include "clocks/event_timestamp.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "runtime/network.hpp"

using namespace syncts;

namespace {
constexpr int kItems = 5;
constexpr std::size_t kStages = 4;
}  // namespace

int main() {
    const SyncSystem system(topology::path(kStages));
    std::printf("pipeline of %zu stages, timestamp width d = %zu\n\n",
                kStages, system.width());

    TimestampedNetwork network = system.make_network();
    std::vector<ProcessProgram> programs(kStages);

    programs[0] = [](ProcessContext& context) {
        for (int item = 0; item < kItems; ++item) {
            context.internal_event("produce item" + std::to_string(item));
            context.send(1, "item" + std::to_string(item));
        }
    };
    for (ProcessId stage = 1; stage + 1 < kStages; ++stage) {
        programs[stage] = [stage](ProcessContext& context) {
            for (int i = 0; i < kItems; ++i) {
                const ReceivedMessage item =
                    context.receive_from(static_cast<ProcessId>(stage - 1));
                context.internal_event("stage" + std::to_string(stage) +
                                       " transform " + item.payload);
                context.send(static_cast<ProcessId>(stage + 1), item.payload + "'");
            }
        };
    }
    programs[kStages - 1] = [](ProcessContext& context) {
        for (int i = 0; i < kItems; ++i) {
            const ReceivedMessage item =
                context.receive_from(static_cast<ProcessId>(kStages - 2));
            context.internal_event("consume " + item.payload);
        }
    };

    const RunRecord record = network.run(programs);
    std::printf("messages:\n");
    for (const MessageRecord& m : record.messages) {
        std::printf("  P%u -> P%u  %-8s %s\n", m.sender + 1, m.receiver + 1,
                    m.payload.c_str(), m.timestamp.to_string().c_str());
    }

    // Causality facts a pipeline guarantees: producing item0 precedes
    // consuming item0''; producing item2 is concurrent with consuming
    // item0'' only if they truly overlap (rendezvous forces produce(k) to
    // follow consume(k-2) here because the pipeline has depth 3).
    const auto find_event = [&](const std::string& note) {
        for (std::size_t i = 0; i < record.internal_notes.size(); ++i) {
            if (record.internal_notes[i] == note) return i;
        }
        return record.internal_notes.size();
    };
    const std::size_t produce0 = find_event("produce item0");
    const std::size_t consume0 = find_event("consume item0''");
    const std::size_t produce4 = find_event("produce item4");
    std::printf("\nproduce item0 -> consume item0''? %s\n",
                happened_before(record.internal_stamps[produce0],
                                record.internal_stamps[consume0])
                    ? "yes"
                    : "no");
    std::printf("consume item0'' -> produce item4? %s\n",
                happened_before(record.internal_stamps[consume0],
                                record.internal_stamps[produce4])
                    ? "yes"
                    : "no");
    std::printf("produce item4 -> consume item0''? %s (pipeline overlap)\n",
                happened_before(record.internal_stamps[produce4],
                                record.internal_stamps[consume0])
                    ? "yes"
                    : "no");
    return 0;
}
