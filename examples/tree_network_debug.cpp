// Debugging a tree-shaped sensor network — the paper's tree scenario
// (Fig. 4): 20 processes, 3 hub routers, constant timestamp width 3.
//
// Leaf sensors report alarms up to their hub; hubs escalate to hub 1 (the
// root). A debugger then replays the record and answers the question every
// distributed trace viewer needs: "did alarm A causally influence
// escalation E, or did they merely interleave?" — the visualization
// primitive of POET/XPVM cited in the paper's introduction.
//
// Build & run:  ./tree_network_debug

#include <cstdio>
#include <string>
#include <vector>

#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "runtime/network.hpp"

using namespace syncts;

int main() {
    const Graph tree = topology::paper_fig4_tree();
    const SyncSystem system(tree);
    std::printf(
        "sensor tree: %zu processes, d = %zu (three hub stars, constant in "
        "the number of sensors)\n",
        system.num_processes(), system.width());
    std::printf("decomposition: %s\n\n",
                system.decomposition().to_string().c_str());

    // Hubs: 0, 1, 2 (1 is the root). Sensors 3..8 -> hub 0, 9..13 -> hub 1,
    // 14..19 -> hub 2 (the Fig. 4 layout).
    TimestampedNetwork network = system.make_network();
    std::vector<ProcessProgram> programs(tree.num_vertices());

    programs[0] = [](ProcessContext& context) {
        for (int i = 0; i < 6; ++i) {
            const ReceivedMessage alarm = context.receive();
            context.internal_event("hub0 aggregating " + alarm.payload);
            context.send(1, "escalate:" + alarm.payload);
        }
    };
    programs[2] = [](ProcessContext& context) {
        for (int i = 0; i < 6; ++i) {
            const ReceivedMessage alarm = context.receive();
            context.send(1, "escalate:" + alarm.payload);
        }
    };
    programs[1] = [](ProcessContext& context) {
        // Root: 5 local sensors + 12 escalations from the side hubs.
        for (int i = 0; i < 17; ++i) {
            const ReceivedMessage m = context.receive();
            if (m.payload.rfind("escalate:", 0) == 0) {
                context.internal_event("root handled " + m.payload);
            }
        }
    };
    for (ProcessId sensor = 3; sensor <= 19; ++sensor) {
        const ProcessId hub = sensor <= 8 ? 0 : sensor <= 13 ? 1 : 2;
        programs[sensor] = [sensor, hub](ProcessContext& context) {
            context.send(hub, "alarm@s" + std::to_string(sensor));
        };
    }

    const RunRecord record = network.run(programs);
    std::printf("recorded %zu messages, %zu internal events\n\n",
                record.messages.size(),
                record.computation.num_internal_events());

    // Debugger queries: pick one alarm from sensor 3 and check which
    // escalations causally depend on it.
    MessageId alarm_s3 = 0;
    for (const MessageRecord& m : record.messages) {
        if (m.payload == "alarm@s3") {
            alarm_s3 = static_cast<MessageId>(&m - record.messages.data());
        }
    }
    const VectorTimestamp& alarm_stamp =
        record.message_stamps[alarm_s3];
    std::printf("alarm@s3 stamped %s\n", alarm_stamp.to_string().c_str());
    std::size_t dependent = 0;
    std::size_t concurrent_count = 0;
    for (std::size_t i = 0; i < record.messages.size(); ++i) {
        const MessageRecord& m = record.messages[i];
        if (m.payload.rfind("escalate:", 0) != 0) continue;
        if (alarm_stamp.less(m.timestamp)) {
            ++dependent;
            if (m.payload == "escalate:alarm@s3") {
                std::printf("  its own escalation %s is causally after: ok\n",
                            m.timestamp.to_string().c_str());
            }
        } else {
            ++concurrent_count;
        }
    }
    std::printf(
        "escalations causally after alarm@s3: %zu; unrelated "
        "(concurrent): %zu\n",
        dependent, concurrent_count);

    // Internal-event view (Section 5): root handlings are totally ordered
    // on the root process; hub0 aggregations happen-before the matching
    // root handling.
    std::printf("\ninternal events (Section 5 tuples):\n");
    for (std::size_t i = 0; i < record.internal_notes.size() && i < 4; ++i) {
        std::printf("  %-36s %s\n", record.internal_notes[i].c_str(),
                    record.internal_stamps[i].to_string().c_str());
    }
    std::printf("  ... (%zu total)\n", record.internal_notes.size());
    return 0;
}
