// Client–server conflict monitoring — the paper's motivating application
// (Section 1: distributed monitoring; Section 3.3: client-server systems
// need only one vector component per server).
//
// Four clients issue synchronous writes/reads against two servers over
// real threads. Every operation's timestamp is shipped to a central
// CausalMonitor which flags conflicting (concurrent) writes to the same
// key — with exact precision, because the paper's timestamps characterize
// the order relation completely.
//
// Build & run:  ./client_server_monitor

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "runtime/network.hpp"

using namespace syncts;

namespace {

constexpr std::size_t kServers = 2;
constexpr std::size_t kClients = 4;
constexpr int kOpsPerClient = 6;

}  // namespace

int main() {
    const SyncSystem system(topology::client_server(kServers, kClients));
    std::printf(
        "client-server system: %zu processes, timestamp width d = %zu "
        "(one component per server)\n\n",
        system.num_processes(), system.width());

    TimestampedNetwork network = system.make_network();
    std::vector<ProcessProgram> programs(kServers + kClients);

    // Servers: answer every request.
    for (std::size_t s = 0; s < kServers; ++s) {
        programs[s] = [](ProcessContext& context) {
            const int expected = kClients * kOpsPerClient / kServers;
            for (int i = 0; i < expected; ++i) {
                const ReceivedMessage request = context.receive();
                context.send(request.sender, "ack:" + request.payload);
            }
        };
    }
    // Clients: alternate writes and reads on keys x and y, spreading
    // requests across servers.
    for (std::size_t c = 0; c < kClients; ++c) {
        const auto client = static_cast<ProcessId>(kServers + c);
        programs[client] = [c, client](ProcessContext& context) {
            for (int i = 0; i < kOpsPerClient; ++i) {
                // Writes pin to the client's home server, so clients with
                // different home servers can write key x concurrently —
                // exactly the races a monitor must catch. Reads spread
                // round-robin (keeping server load uniform: 12 requests
                // each).
                const bool is_write = i % 3 == 0;
                const auto server = static_cast<ProcessId>(
                    is_write ? c % kServers
                             : static_cast<std::size_t>(i) % kServers);
                const std::string key =
                    is_write ? "x" : ((c + i) % 2 == 0 ? "x" : "y");
                const std::string op = is_write ? "write" : "read";
                context.send(server,
                             op + ":" + key + "@c" + std::to_string(client));
                context.receive_from(server);
            }
        };
    }

    const RunRecord record = network.run(programs);
    std::printf("ran %zu rendezvous over %zu threads\n\n",
                record.messages.size(), system.num_processes());

    // Feed request operations (not acks) to the monitor.
    CausalMonitor monitor;
    std::map<std::size_t, std::string> keys;
    for (const MessageRecord& m : record.messages) {
        if (m.payload.rfind("ack:", 0) == 0) continue;
        const std::size_t id = monitor.record(m.payload, m.timestamp);
        keys[id] = m.payload.substr(m.payload.find(':') + 1, 1);
    }

    // Conflicts: concurrent writes to the same key.
    std::printf("conflicting writes (concurrent, same key):\n");
    std::size_t conflicts = 0;
    for (std::size_t a = 0; a < monitor.size(); ++a) {
        if (monitor.operation(a).label.rfind("write", 0) != 0) continue;
        for (const std::size_t b : monitor.conflicts_of(a)) {
            if (b <= a) continue;  // report each pair once
            if (monitor.operation(b).label.rfind("write", 0) != 0) continue;
            if (keys[a] != keys[b]) continue;
            ++conflicts;
            std::printf("  %-16s  ||  %-16s   (%s vs %s)\n",
                        monitor.operation(a).label.c_str(),
                        monitor.operation(b).label.c_str(),
                        monitor.operation(a).timestamp.to_string().c_str(),
                        monitor.operation(b).timestamp.to_string().c_str());
        }
    }
    std::printf("total: %zu conflicting write pairs\n\n", conflicts);

    std::printf("causal frontier (operations nothing depends on yet):\n");
    for (const std::size_t id : monitor.frontier()) {
        std::printf("  %s %s\n", monitor.operation(id).label.c_str(),
                    monitor.operation(id).timestamp.to_string().c_str());
    }
    return 0;
}
