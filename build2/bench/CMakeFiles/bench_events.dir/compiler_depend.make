# Empty compiler generated dependencies file for bench_events.
# This may be replaced when dependencies are built.
