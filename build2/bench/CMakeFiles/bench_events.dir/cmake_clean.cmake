file(REMOVE_RECURSE
  "CMakeFiles/bench_events.dir/bench_events.cpp.o"
  "CMakeFiles/bench_events.dir/bench_events.cpp.o.d"
  "bench_events"
  "bench_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
