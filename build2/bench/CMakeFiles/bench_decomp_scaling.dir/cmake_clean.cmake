file(REMOVE_RECURSE
  "CMakeFiles/bench_decomp_scaling.dir/bench_decomp_scaling.cpp.o"
  "CMakeFiles/bench_decomp_scaling.dir/bench_decomp_scaling.cpp.o.d"
  "bench_decomp_scaling"
  "bench_decomp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decomp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
