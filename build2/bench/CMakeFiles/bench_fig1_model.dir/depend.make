# Empty dependencies file for bench_fig1_model.
# This may be replaced when dependencies are built.
