file(REMOVE_RECURSE
  "CMakeFiles/bench_precedence.dir/bench_precedence.cpp.o"
  "CMakeFiles/bench_precedence.dir/bench_precedence.cpp.o.d"
  "bench_precedence"
  "bench_precedence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_precedence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
