# Empty compiler generated dependencies file for bench_precedence.
# This may be replaced when dependencies are built.
