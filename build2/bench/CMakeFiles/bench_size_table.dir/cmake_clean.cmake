file(REMOVE_RECURSE
  "CMakeFiles/bench_size_table.dir/bench_size_table.cpp.o"
  "CMakeFiles/bench_size_table.dir/bench_size_table.cpp.o.d"
  "bench_size_table"
  "bench_size_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_size_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
