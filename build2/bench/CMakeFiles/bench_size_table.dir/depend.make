# Empty dependencies file for bench_size_table.
# This may be replaced when dependencies are built.
