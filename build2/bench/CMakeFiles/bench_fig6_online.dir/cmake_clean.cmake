file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_online.dir/bench_fig6_online.cpp.o"
  "CMakeFiles/bench_fig6_online.dir/bench_fig6_online.cpp.o.d"
  "bench_fig6_online"
  "bench_fig6_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
