# Empty dependencies file for bench_wire.
# This may be replaced when dependencies are built.
