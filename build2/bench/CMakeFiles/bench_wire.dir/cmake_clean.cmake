file(REMOVE_RECURSE
  "CMakeFiles/bench_wire.dir/bench_wire.cpp.o"
  "CMakeFiles/bench_wire.dir/bench_wire.cpp.o.d"
  "bench_wire"
  "bench_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
