file(REMOVE_RECURSE
  "CMakeFiles/bench_related.dir/bench_related.cpp.o"
  "CMakeFiles/bench_related.dir/bench_related.cpp.o.d"
  "bench_related"
  "bench_related.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
