file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_greedy.dir/bench_fig8_greedy.cpp.o"
  "CMakeFiles/bench_fig8_greedy.dir/bench_fig8_greedy.cpp.o.d"
  "bench_fig8_greedy"
  "bench_fig8_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
