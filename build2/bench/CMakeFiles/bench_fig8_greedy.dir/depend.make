# Empty dependencies file for bench_fig8_greedy.
# This may be replaced when dependencies are built.
