file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_tree.dir/bench_fig4_tree.cpp.o"
  "CMakeFiles/bench_fig4_tree.dir/bench_fig4_tree.cpp.o.d"
  "bench_fig4_tree"
  "bench_fig4_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
