# Empty compiler generated dependencies file for bench_fig4_tree.
# This may be replaced when dependencies are built.
