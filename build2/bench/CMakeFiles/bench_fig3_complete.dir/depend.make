# Empty dependencies file for bench_fig3_complete.
# This may be replaced when dependencies are built.
