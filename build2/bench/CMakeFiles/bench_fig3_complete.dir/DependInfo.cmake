
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_complete.cpp" "bench/CMakeFiles/bench_fig3_complete.dir/bench_fig3_complete.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_complete.dir/bench_fig3_complete.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/syncts_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/runtime/CMakeFiles/syncts_runtime.dir/DependInfo.cmake"
  "/root/repo/build2/src/clocks/CMakeFiles/syncts_clocks.dir/DependInfo.cmake"
  "/root/repo/build2/src/decomp/CMakeFiles/syncts_decomp.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/syncts_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/poset/CMakeFiles/syncts_poset.dir/DependInfo.cmake"
  "/root/repo/build2/src/graph/CMakeFiles/syncts_graph.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/syncts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
