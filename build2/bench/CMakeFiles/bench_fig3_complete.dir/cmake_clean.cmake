file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_complete.dir/bench_fig3_complete.cpp.o"
  "CMakeFiles/bench_fig3_complete.dir/bench_fig3_complete.cpp.o.d"
  "bench_fig3_complete"
  "bench_fig3_complete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_complete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
