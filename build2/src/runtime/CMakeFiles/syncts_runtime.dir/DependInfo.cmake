
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/async_sim.cpp" "src/runtime/CMakeFiles/syncts_runtime.dir/async_sim.cpp.o" "gcc" "src/runtime/CMakeFiles/syncts_runtime.dir/async_sim.cpp.o.d"
  "/root/repo/src/runtime/fault_plan.cpp" "src/runtime/CMakeFiles/syncts_runtime.dir/fault_plan.cpp.o" "gcc" "src/runtime/CMakeFiles/syncts_runtime.dir/fault_plan.cpp.o.d"
  "/root/repo/src/runtime/mailbox.cpp" "src/runtime/CMakeFiles/syncts_runtime.dir/mailbox.cpp.o" "gcc" "src/runtime/CMakeFiles/syncts_runtime.dir/mailbox.cpp.o.d"
  "/root/repo/src/runtime/network.cpp" "src/runtime/CMakeFiles/syncts_runtime.dir/network.cpp.o" "gcc" "src/runtime/CMakeFiles/syncts_runtime.dir/network.cpp.o.d"
  "/root/repo/src/runtime/process.cpp" "src/runtime/CMakeFiles/syncts_runtime.dir/process.cpp.o" "gcc" "src/runtime/CMakeFiles/syncts_runtime.dir/process.cpp.o.d"
  "/root/repo/src/runtime/synchronizer.cpp" "src/runtime/CMakeFiles/syncts_runtime.dir/synchronizer.cpp.o" "gcc" "src/runtime/CMakeFiles/syncts_runtime.dir/synchronizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/clocks/CMakeFiles/syncts_clocks.dir/DependInfo.cmake"
  "/root/repo/build2/src/decomp/CMakeFiles/syncts_decomp.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/syncts_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/poset/CMakeFiles/syncts_poset.dir/DependInfo.cmake"
  "/root/repo/build2/src/graph/CMakeFiles/syncts_graph.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/syncts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
