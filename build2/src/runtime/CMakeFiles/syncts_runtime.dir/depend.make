# Empty dependencies file for syncts_runtime.
# This may be replaced when dependencies are built.
