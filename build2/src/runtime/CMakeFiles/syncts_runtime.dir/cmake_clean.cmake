file(REMOVE_RECURSE
  "CMakeFiles/syncts_runtime.dir/async_sim.cpp.o"
  "CMakeFiles/syncts_runtime.dir/async_sim.cpp.o.d"
  "CMakeFiles/syncts_runtime.dir/fault_plan.cpp.o"
  "CMakeFiles/syncts_runtime.dir/fault_plan.cpp.o.d"
  "CMakeFiles/syncts_runtime.dir/mailbox.cpp.o"
  "CMakeFiles/syncts_runtime.dir/mailbox.cpp.o.d"
  "CMakeFiles/syncts_runtime.dir/network.cpp.o"
  "CMakeFiles/syncts_runtime.dir/network.cpp.o.d"
  "CMakeFiles/syncts_runtime.dir/process.cpp.o"
  "CMakeFiles/syncts_runtime.dir/process.cpp.o.d"
  "CMakeFiles/syncts_runtime.dir/synchronizer.cpp.o"
  "CMakeFiles/syncts_runtime.dir/synchronizer.cpp.o.d"
  "libsyncts_runtime.a"
  "libsyncts_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
