file(REMOVE_RECURSE
  "libsyncts_runtime.a"
)
