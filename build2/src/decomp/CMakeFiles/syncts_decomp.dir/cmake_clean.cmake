file(REMOVE_RECURSE
  "CMakeFiles/syncts_decomp.dir/cover_decomposer.cpp.o"
  "CMakeFiles/syncts_decomp.dir/cover_decomposer.cpp.o.d"
  "CMakeFiles/syncts_decomp.dir/decomp_io.cpp.o"
  "CMakeFiles/syncts_decomp.dir/decomp_io.cpp.o.d"
  "CMakeFiles/syncts_decomp.dir/dot_export.cpp.o"
  "CMakeFiles/syncts_decomp.dir/dot_export.cpp.o.d"
  "CMakeFiles/syncts_decomp.dir/edge_decomposition.cpp.o"
  "CMakeFiles/syncts_decomp.dir/edge_decomposition.cpp.o.d"
  "CMakeFiles/syncts_decomp.dir/exact_decomposer.cpp.o"
  "CMakeFiles/syncts_decomp.dir/exact_decomposer.cpp.o.d"
  "CMakeFiles/syncts_decomp.dir/greedy_decomposer.cpp.o"
  "CMakeFiles/syncts_decomp.dir/greedy_decomposer.cpp.o.d"
  "libsyncts_decomp.a"
  "libsyncts_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
