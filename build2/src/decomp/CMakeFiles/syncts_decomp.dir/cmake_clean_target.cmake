file(REMOVE_RECURSE
  "libsyncts_decomp.a"
)
