
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/cover_decomposer.cpp" "src/decomp/CMakeFiles/syncts_decomp.dir/cover_decomposer.cpp.o" "gcc" "src/decomp/CMakeFiles/syncts_decomp.dir/cover_decomposer.cpp.o.d"
  "/root/repo/src/decomp/decomp_io.cpp" "src/decomp/CMakeFiles/syncts_decomp.dir/decomp_io.cpp.o" "gcc" "src/decomp/CMakeFiles/syncts_decomp.dir/decomp_io.cpp.o.d"
  "/root/repo/src/decomp/dot_export.cpp" "src/decomp/CMakeFiles/syncts_decomp.dir/dot_export.cpp.o" "gcc" "src/decomp/CMakeFiles/syncts_decomp.dir/dot_export.cpp.o.d"
  "/root/repo/src/decomp/edge_decomposition.cpp" "src/decomp/CMakeFiles/syncts_decomp.dir/edge_decomposition.cpp.o" "gcc" "src/decomp/CMakeFiles/syncts_decomp.dir/edge_decomposition.cpp.o.d"
  "/root/repo/src/decomp/exact_decomposer.cpp" "src/decomp/CMakeFiles/syncts_decomp.dir/exact_decomposer.cpp.o" "gcc" "src/decomp/CMakeFiles/syncts_decomp.dir/exact_decomposer.cpp.o.d"
  "/root/repo/src/decomp/greedy_decomposer.cpp" "src/decomp/CMakeFiles/syncts_decomp.dir/greedy_decomposer.cpp.o" "gcc" "src/decomp/CMakeFiles/syncts_decomp.dir/greedy_decomposer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/graph/CMakeFiles/syncts_graph.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/syncts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
