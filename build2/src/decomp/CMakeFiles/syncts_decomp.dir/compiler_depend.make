# Empty compiler generated dependencies file for syncts_decomp.
# This may be replaced when dependencies are built.
