# Empty dependencies file for syncts_trace.
# This may be replaced when dependencies are built.
