file(REMOVE_RECURSE
  "CMakeFiles/syncts_trace.dir/async_computation.cpp.o"
  "CMakeFiles/syncts_trace.dir/async_computation.cpp.o.d"
  "CMakeFiles/syncts_trace.dir/computation.cpp.o"
  "CMakeFiles/syncts_trace.dir/computation.cpp.o.d"
  "CMakeFiles/syncts_trace.dir/diagram.cpp.o"
  "CMakeFiles/syncts_trace.dir/diagram.cpp.o.d"
  "CMakeFiles/syncts_trace.dir/generator.cpp.o"
  "CMakeFiles/syncts_trace.dir/generator.cpp.o.d"
  "CMakeFiles/syncts_trace.dir/ground_truth.cpp.o"
  "CMakeFiles/syncts_trace.dir/ground_truth.cpp.o.d"
  "CMakeFiles/syncts_trace.dir/ordering_classes.cpp.o"
  "CMakeFiles/syncts_trace.dir/ordering_classes.cpp.o.d"
  "CMakeFiles/syncts_trace.dir/trace_io.cpp.o"
  "CMakeFiles/syncts_trace.dir/trace_io.cpp.o.d"
  "libsyncts_trace.a"
  "libsyncts_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
