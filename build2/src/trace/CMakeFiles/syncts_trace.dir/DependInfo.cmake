
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/async_computation.cpp" "src/trace/CMakeFiles/syncts_trace.dir/async_computation.cpp.o" "gcc" "src/trace/CMakeFiles/syncts_trace.dir/async_computation.cpp.o.d"
  "/root/repo/src/trace/computation.cpp" "src/trace/CMakeFiles/syncts_trace.dir/computation.cpp.o" "gcc" "src/trace/CMakeFiles/syncts_trace.dir/computation.cpp.o.d"
  "/root/repo/src/trace/diagram.cpp" "src/trace/CMakeFiles/syncts_trace.dir/diagram.cpp.o" "gcc" "src/trace/CMakeFiles/syncts_trace.dir/diagram.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/syncts_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/syncts_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/ground_truth.cpp" "src/trace/CMakeFiles/syncts_trace.dir/ground_truth.cpp.o" "gcc" "src/trace/CMakeFiles/syncts_trace.dir/ground_truth.cpp.o.d"
  "/root/repo/src/trace/ordering_classes.cpp" "src/trace/CMakeFiles/syncts_trace.dir/ordering_classes.cpp.o" "gcc" "src/trace/CMakeFiles/syncts_trace.dir/ordering_classes.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/syncts_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/syncts_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/graph/CMakeFiles/syncts_graph.dir/DependInfo.cmake"
  "/root/repo/build2/src/poset/CMakeFiles/syncts_poset.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/syncts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
