file(REMOVE_RECURSE
  "libsyncts_trace.a"
)
