file(REMOVE_RECURSE
  "CMakeFiles/syncts_common.dir/check.cpp.o"
  "CMakeFiles/syncts_common.dir/check.cpp.o.d"
  "CMakeFiles/syncts_common.dir/dyn_bitset.cpp.o"
  "CMakeFiles/syncts_common.dir/dyn_bitset.cpp.o.d"
  "CMakeFiles/syncts_common.dir/rng.cpp.o"
  "CMakeFiles/syncts_common.dir/rng.cpp.o.d"
  "libsyncts_common.a"
  "libsyncts_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
