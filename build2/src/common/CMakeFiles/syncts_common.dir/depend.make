# Empty dependencies file for syncts_common.
# This may be replaced when dependencies are built.
