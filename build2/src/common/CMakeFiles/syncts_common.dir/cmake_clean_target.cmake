file(REMOVE_RECURSE
  "libsyncts_common.a"
)
