# Empty dependencies file for syncts_core.
# This may be replaced when dependencies are built.
