file(REMOVE_RECURSE
  "libsyncts_core.a"
)
