file(REMOVE_RECURSE
  "CMakeFiles/syncts_core.dir/causality.cpp.o"
  "CMakeFiles/syncts_core.dir/causality.cpp.o.d"
  "CMakeFiles/syncts_core.dir/cuts.cpp.o"
  "CMakeFiles/syncts_core.dir/cuts.cpp.o.d"
  "CMakeFiles/syncts_core.dir/monitor.cpp.o"
  "CMakeFiles/syncts_core.dir/monitor.cpp.o.d"
  "CMakeFiles/syncts_core.dir/predicate_detection.cpp.o"
  "CMakeFiles/syncts_core.dir/predicate_detection.cpp.o.d"
  "CMakeFiles/syncts_core.dir/sync_system.cpp.o"
  "CMakeFiles/syncts_core.dir/sync_system.cpp.o.d"
  "CMakeFiles/syncts_core.dir/timestamped_trace.cpp.o"
  "CMakeFiles/syncts_core.dir/timestamped_trace.cpp.o.d"
  "libsyncts_core.a"
  "libsyncts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
