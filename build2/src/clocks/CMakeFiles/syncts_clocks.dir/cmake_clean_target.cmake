file(REMOVE_RECURSE
  "libsyncts_clocks.a"
)
