# Empty compiler generated dependencies file for syncts_clocks.
# This may be replaced when dependencies are built.
