
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocks/direct_dependency.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/direct_dependency.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/direct_dependency.cpp.o.d"
  "/root/repo/src/clocks/event_timestamp.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/event_timestamp.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/event_timestamp.cpp.o.d"
  "/root/repo/src/clocks/fm_differential.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/fm_differential.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/fm_differential.cpp.o.d"
  "/root/repo/src/clocks/fm_event_clock.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/fm_event_clock.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/fm_event_clock.cpp.o.d"
  "/root/repo/src/clocks/fm_sync_clock.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/fm_sync_clock.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/fm_sync_clock.cpp.o.d"
  "/root/repo/src/clocks/lamport_clock.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/lamport_clock.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/lamport_clock.cpp.o.d"
  "/root/repo/src/clocks/offline_timestamper.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/offline_timestamper.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/offline_timestamper.cpp.o.d"
  "/root/repo/src/clocks/online_clock.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/online_clock.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/online_clock.cpp.o.d"
  "/root/repo/src/clocks/plausible_clock.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/plausible_clock.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/plausible_clock.cpp.o.d"
  "/root/repo/src/clocks/vector_timestamp.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/vector_timestamp.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/vector_timestamp.cpp.o.d"
  "/root/repo/src/clocks/wire.cpp" "src/clocks/CMakeFiles/syncts_clocks.dir/wire.cpp.o" "gcc" "src/clocks/CMakeFiles/syncts_clocks.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/decomp/CMakeFiles/syncts_decomp.dir/DependInfo.cmake"
  "/root/repo/build2/src/poset/CMakeFiles/syncts_poset.dir/DependInfo.cmake"
  "/root/repo/build2/src/trace/CMakeFiles/syncts_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/graph/CMakeFiles/syncts_graph.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/syncts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
