file(REMOVE_RECURSE
  "CMakeFiles/syncts_clocks.dir/direct_dependency.cpp.o"
  "CMakeFiles/syncts_clocks.dir/direct_dependency.cpp.o.d"
  "CMakeFiles/syncts_clocks.dir/event_timestamp.cpp.o"
  "CMakeFiles/syncts_clocks.dir/event_timestamp.cpp.o.d"
  "CMakeFiles/syncts_clocks.dir/fm_differential.cpp.o"
  "CMakeFiles/syncts_clocks.dir/fm_differential.cpp.o.d"
  "CMakeFiles/syncts_clocks.dir/fm_event_clock.cpp.o"
  "CMakeFiles/syncts_clocks.dir/fm_event_clock.cpp.o.d"
  "CMakeFiles/syncts_clocks.dir/fm_sync_clock.cpp.o"
  "CMakeFiles/syncts_clocks.dir/fm_sync_clock.cpp.o.d"
  "CMakeFiles/syncts_clocks.dir/lamport_clock.cpp.o"
  "CMakeFiles/syncts_clocks.dir/lamport_clock.cpp.o.d"
  "CMakeFiles/syncts_clocks.dir/offline_timestamper.cpp.o"
  "CMakeFiles/syncts_clocks.dir/offline_timestamper.cpp.o.d"
  "CMakeFiles/syncts_clocks.dir/online_clock.cpp.o"
  "CMakeFiles/syncts_clocks.dir/online_clock.cpp.o.d"
  "CMakeFiles/syncts_clocks.dir/plausible_clock.cpp.o"
  "CMakeFiles/syncts_clocks.dir/plausible_clock.cpp.o.d"
  "CMakeFiles/syncts_clocks.dir/vector_timestamp.cpp.o"
  "CMakeFiles/syncts_clocks.dir/vector_timestamp.cpp.o.d"
  "CMakeFiles/syncts_clocks.dir/wire.cpp.o"
  "CMakeFiles/syncts_clocks.dir/wire.cpp.o.d"
  "libsyncts_clocks.a"
  "libsyncts_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
