# Empty compiler generated dependencies file for syncts_poset.
# This may be replaced when dependencies are built.
