file(REMOVE_RECURSE
  "libsyncts_poset.a"
)
