file(REMOVE_RECURSE
  "CMakeFiles/syncts_poset.dir/dilworth.cpp.o"
  "CMakeFiles/syncts_poset.dir/dilworth.cpp.o.d"
  "CMakeFiles/syncts_poset.dir/hopcroft_karp.cpp.o"
  "CMakeFiles/syncts_poset.dir/hopcroft_karp.cpp.o.d"
  "CMakeFiles/syncts_poset.dir/linear_extension.cpp.o"
  "CMakeFiles/syncts_poset.dir/linear_extension.cpp.o.d"
  "CMakeFiles/syncts_poset.dir/poset.cpp.o"
  "CMakeFiles/syncts_poset.dir/poset.cpp.o.d"
  "CMakeFiles/syncts_poset.dir/realizer.cpp.o"
  "CMakeFiles/syncts_poset.dir/realizer.cpp.o.d"
  "libsyncts_poset.a"
  "libsyncts_poset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_poset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
