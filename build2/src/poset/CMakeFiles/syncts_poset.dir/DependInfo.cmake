
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poset/dilworth.cpp" "src/poset/CMakeFiles/syncts_poset.dir/dilworth.cpp.o" "gcc" "src/poset/CMakeFiles/syncts_poset.dir/dilworth.cpp.o.d"
  "/root/repo/src/poset/hopcroft_karp.cpp" "src/poset/CMakeFiles/syncts_poset.dir/hopcroft_karp.cpp.o" "gcc" "src/poset/CMakeFiles/syncts_poset.dir/hopcroft_karp.cpp.o.d"
  "/root/repo/src/poset/linear_extension.cpp" "src/poset/CMakeFiles/syncts_poset.dir/linear_extension.cpp.o" "gcc" "src/poset/CMakeFiles/syncts_poset.dir/linear_extension.cpp.o.d"
  "/root/repo/src/poset/poset.cpp" "src/poset/CMakeFiles/syncts_poset.dir/poset.cpp.o" "gcc" "src/poset/CMakeFiles/syncts_poset.dir/poset.cpp.o.d"
  "/root/repo/src/poset/realizer.cpp" "src/poset/CMakeFiles/syncts_poset.dir/realizer.cpp.o" "gcc" "src/poset/CMakeFiles/syncts_poset.dir/realizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/syncts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
