file(REMOVE_RECURSE
  "CMakeFiles/syncts_graph.dir/generators.cpp.o"
  "CMakeFiles/syncts_graph.dir/generators.cpp.o.d"
  "CMakeFiles/syncts_graph.dir/graph.cpp.o"
  "CMakeFiles/syncts_graph.dir/graph.cpp.o.d"
  "CMakeFiles/syncts_graph.dir/triangles.cpp.o"
  "CMakeFiles/syncts_graph.dir/triangles.cpp.o.d"
  "CMakeFiles/syncts_graph.dir/vertex_cover.cpp.o"
  "CMakeFiles/syncts_graph.dir/vertex_cover.cpp.o.d"
  "libsyncts_graph.a"
  "libsyncts_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
