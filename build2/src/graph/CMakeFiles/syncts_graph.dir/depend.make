# Empty dependencies file for syncts_graph.
# This may be replaced when dependencies are built.
