file(REMOVE_RECURSE
  "libsyncts_graph.a"
)
