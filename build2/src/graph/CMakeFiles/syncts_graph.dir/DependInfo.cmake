
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/syncts_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/syncts_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/syncts_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/syncts_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/triangles.cpp" "src/graph/CMakeFiles/syncts_graph.dir/triangles.cpp.o" "gcc" "src/graph/CMakeFiles/syncts_graph.dir/triangles.cpp.o.d"
  "/root/repo/src/graph/vertex_cover.cpp" "src/graph/CMakeFiles/syncts_graph.dir/vertex_cover.cpp.o" "gcc" "src/graph/CMakeFiles/syncts_graph.dir/vertex_cover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/syncts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
