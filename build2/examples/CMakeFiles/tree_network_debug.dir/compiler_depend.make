# Empty compiler generated dependencies file for tree_network_debug.
# This may be replaced when dependencies are built.
