file(REMOVE_RECURSE
  "CMakeFiles/tree_network_debug.dir/tree_network_debug.cpp.o"
  "CMakeFiles/tree_network_debug.dir/tree_network_debug.cpp.o.d"
  "tree_network_debug"
  "tree_network_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_network_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
