file(REMOVE_RECURSE
  "CMakeFiles/predicate_detection.dir/predicate_detection.cpp.o"
  "CMakeFiles/predicate_detection.dir/predicate_detection.cpp.o.d"
  "predicate_detection"
  "predicate_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
