# Empty compiler generated dependencies file for predicate_detection.
# This may be replaced when dependencies are built.
