file(REMOVE_RECURSE
  "CMakeFiles/optimistic_recovery.dir/optimistic_recovery.cpp.o"
  "CMakeFiles/optimistic_recovery.dir/optimistic_recovery.cpp.o.d"
  "optimistic_recovery"
  "optimistic_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimistic_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
