# Empty compiler generated dependencies file for optimistic_recovery.
# This may be replaced when dependencies are built.
