# Empty dependencies file for client_server_monitor.
# This may be replaced when dependencies are built.
