file(REMOVE_RECURSE
  "CMakeFiles/client_server_monitor.dir/client_server_monitor.cpp.o"
  "CMakeFiles/client_server_monitor.dir/client_server_monitor.cpp.o.d"
  "client_server_monitor"
  "client_server_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_server_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
