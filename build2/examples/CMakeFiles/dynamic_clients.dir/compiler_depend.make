# Empty compiler generated dependencies file for dynamic_clients.
# This may be replaced when dependencies are built.
