file(REMOVE_RECURSE
  "CMakeFiles/dynamic_clients.dir/dynamic_clients.cpp.o"
  "CMakeFiles/dynamic_clients.dir/dynamic_clients.cpp.o.d"
  "dynamic_clients"
  "dynamic_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
