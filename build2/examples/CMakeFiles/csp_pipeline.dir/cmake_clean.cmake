file(REMOVE_RECURSE
  "CMakeFiles/csp_pipeline.dir/csp_pipeline.cpp.o"
  "CMakeFiles/csp_pipeline.dir/csp_pipeline.cpp.o.d"
  "csp_pipeline"
  "csp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
