# Empty compiler generated dependencies file for csp_pipeline.
# This may be replaced when dependencies are built.
