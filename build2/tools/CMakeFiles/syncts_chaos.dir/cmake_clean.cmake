file(REMOVE_RECURSE
  "CMakeFiles/syncts_chaos.dir/syncts_chaos.cpp.o"
  "CMakeFiles/syncts_chaos.dir/syncts_chaos.cpp.o.d"
  "syncts_chaos"
  "syncts_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
