# Empty dependencies file for syncts_chaos.
# This may be replaced when dependencies are built.
