# Empty compiler generated dependencies file for syncts_topo.
# This may be replaced when dependencies are built.
