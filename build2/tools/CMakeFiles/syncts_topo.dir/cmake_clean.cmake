file(REMOVE_RECURSE
  "CMakeFiles/syncts_topo.dir/syncts_topo.cpp.o"
  "CMakeFiles/syncts_topo.dir/syncts_topo.cpp.o.d"
  "syncts_topo"
  "syncts_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
