# Empty dependencies file for syncts_trace_tool.
# This may be replaced when dependencies are built.
