file(REMOVE_RECURSE
  "CMakeFiles/syncts_trace_tool.dir/syncts_trace.cpp.o"
  "CMakeFiles/syncts_trace_tool.dir/syncts_trace.cpp.o.d"
  "syncts_trace"
  "syncts_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncts_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
