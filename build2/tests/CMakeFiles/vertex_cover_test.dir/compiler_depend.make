# Empty compiler generated dependencies file for vertex_cover_test.
# This may be replaced when dependencies are built.
