# Empty compiler generated dependencies file for plausible_test.
# This may be replaced when dependencies are built.
