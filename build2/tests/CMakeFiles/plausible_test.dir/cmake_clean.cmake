file(REMOVE_RECURSE
  "CMakeFiles/plausible_test.dir/plausible_test.cpp.o"
  "CMakeFiles/plausible_test.dir/plausible_test.cpp.o.d"
  "plausible_test"
  "plausible_test.pdb"
  "plausible_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plausible_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
