file(REMOVE_RECURSE
  "CMakeFiles/predicate_detection_test.dir/predicate_detection_test.cpp.o"
  "CMakeFiles/predicate_detection_test.dir/predicate_detection_test.cpp.o.d"
  "predicate_detection_test"
  "predicate_detection_test.pdb"
  "predicate_detection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
