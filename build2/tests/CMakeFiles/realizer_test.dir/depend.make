# Empty dependencies file for realizer_test.
# This may be replaced when dependencies are built.
