file(REMOVE_RECURSE
  "CMakeFiles/realizer_test.dir/realizer_test.cpp.o"
  "CMakeFiles/realizer_test.dir/realizer_test.cpp.o.d"
  "realizer_test"
  "realizer_test.pdb"
  "realizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
