# Empty dependencies file for decomp_io_test.
# This may be replaced when dependencies are built.
