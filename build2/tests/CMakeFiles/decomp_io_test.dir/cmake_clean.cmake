file(REMOVE_RECURSE
  "CMakeFiles/decomp_io_test.dir/decomp_io_test.cpp.o"
  "CMakeFiles/decomp_io_test.dir/decomp_io_test.cpp.o.d"
  "decomp_io_test"
  "decomp_io_test.pdb"
  "decomp_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomp_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
