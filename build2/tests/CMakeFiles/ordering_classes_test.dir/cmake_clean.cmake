file(REMOVE_RECURSE
  "CMakeFiles/ordering_classes_test.dir/ordering_classes_test.cpp.o"
  "CMakeFiles/ordering_classes_test.dir/ordering_classes_test.cpp.o.d"
  "ordering_classes_test"
  "ordering_classes_test.pdb"
  "ordering_classes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_classes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
