# Empty dependencies file for synchronizer_test.
# This may be replaced when dependencies are built.
