file(REMOVE_RECURSE
  "CMakeFiles/synchronizer_test.dir/synchronizer_test.cpp.o"
  "CMakeFiles/synchronizer_test.dir/synchronizer_test.cpp.o.d"
  "synchronizer_test"
  "synchronizer_test.pdb"
  "synchronizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchronizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
