file(REMOVE_RECURSE
  "CMakeFiles/event_timestamp_test.dir/event_timestamp_test.cpp.o"
  "CMakeFiles/event_timestamp_test.dir/event_timestamp_test.cpp.o.d"
  "event_timestamp_test"
  "event_timestamp_test.pdb"
  "event_timestamp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_timestamp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
