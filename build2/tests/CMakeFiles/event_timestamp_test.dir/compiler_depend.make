# Empty compiler generated dependencies file for event_timestamp_test.
# This may be replaced when dependencies are built.
