# Empty dependencies file for poset_test.
# This may be replaced when dependencies are built.
