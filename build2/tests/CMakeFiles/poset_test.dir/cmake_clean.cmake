file(REMOVE_RECURSE
  "CMakeFiles/poset_test.dir/poset_test.cpp.o"
  "CMakeFiles/poset_test.dir/poset_test.cpp.o.d"
  "poset_test"
  "poset_test.pdb"
  "poset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
