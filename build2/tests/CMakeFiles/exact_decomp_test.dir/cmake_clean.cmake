file(REMOVE_RECURSE
  "CMakeFiles/exact_decomp_test.dir/exact_decomp_test.cpp.o"
  "CMakeFiles/exact_decomp_test.dir/exact_decomp_test.cpp.o.d"
  "exact_decomp_test"
  "exact_decomp_test.pdb"
  "exact_decomp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_decomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
