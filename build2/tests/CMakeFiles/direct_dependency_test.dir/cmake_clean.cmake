file(REMOVE_RECURSE
  "CMakeFiles/direct_dependency_test.dir/direct_dependency_test.cpp.o"
  "CMakeFiles/direct_dependency_test.dir/direct_dependency_test.cpp.o.d"
  "direct_dependency_test"
  "direct_dependency_test.pdb"
  "direct_dependency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_dependency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
