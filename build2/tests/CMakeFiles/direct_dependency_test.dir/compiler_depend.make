# Empty compiler generated dependencies file for direct_dependency_test.
# This may be replaced when dependencies are built.
