# Empty compiler generated dependencies file for triangles_test.
# This may be replaced when dependencies are built.
