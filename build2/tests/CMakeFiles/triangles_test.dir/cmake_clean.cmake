file(REMOVE_RECURSE
  "CMakeFiles/triangles_test.dir/triangles_test.cpp.o"
  "CMakeFiles/triangles_test.dir/triangles_test.cpp.o.d"
  "triangles_test"
  "triangles_test.pdb"
  "triangles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
