file(REMOVE_RECURSE
  "CMakeFiles/fm_differential_test.dir/fm_differential_test.cpp.o"
  "CMakeFiles/fm_differential_test.dir/fm_differential_test.cpp.o.d"
  "fm_differential_test"
  "fm_differential_test.pdb"
  "fm_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
