# Empty compiler generated dependencies file for fm_differential_test.
# This may be replaced when dependencies are built.
