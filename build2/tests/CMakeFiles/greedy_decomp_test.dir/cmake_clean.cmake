file(REMOVE_RECURSE
  "CMakeFiles/greedy_decomp_test.dir/greedy_decomp_test.cpp.o"
  "CMakeFiles/greedy_decomp_test.dir/greedy_decomp_test.cpp.o.d"
  "greedy_decomp_test"
  "greedy_decomp_test.pdb"
  "greedy_decomp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_decomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
