# Empty dependencies file for greedy_decomp_test.
# This may be replaced when dependencies are built.
