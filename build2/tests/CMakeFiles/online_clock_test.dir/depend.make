# Empty dependencies file for online_clock_test.
# This may be replaced when dependencies are built.
