file(REMOVE_RECURSE
  "CMakeFiles/online_clock_test.dir/online_clock_test.cpp.o"
  "CMakeFiles/online_clock_test.dir/online_clock_test.cpp.o.d"
  "online_clock_test"
  "online_clock_test.pdb"
  "online_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
