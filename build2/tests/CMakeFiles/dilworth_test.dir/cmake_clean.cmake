file(REMOVE_RECURSE
  "CMakeFiles/dilworth_test.dir/dilworth_test.cpp.o"
  "CMakeFiles/dilworth_test.dir/dilworth_test.cpp.o.d"
  "dilworth_test"
  "dilworth_test.pdb"
  "dilworth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilworth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
