# Empty compiler generated dependencies file for dilworth_test.
# This may be replaced when dependencies are built.
