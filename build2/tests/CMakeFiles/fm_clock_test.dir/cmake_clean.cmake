file(REMOVE_RECURSE
  "CMakeFiles/fm_clock_test.dir/fm_clock_test.cpp.o"
  "CMakeFiles/fm_clock_test.dir/fm_clock_test.cpp.o.d"
  "fm_clock_test"
  "fm_clock_test.pdb"
  "fm_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
