# Empty dependencies file for fm_clock_test.
# This may be replaced when dependencies are built.
