// Experiment TAB-OVH — O(d) vs O(N) timestamping overhead (Section 3.2).
//
// google-benchmark microbenchmarks: cost of one rendezvous timestamp
// update for the paper's online clock (vector width d) against the FM
// synchronous baseline (width N) and Lamport scalars, across topology
// families and system sizes. The paper's claim is structural — the online
// algorithm touches d components per message, FM touches N — so the
// speedup should track N/d.

#include <benchmark/benchmark.h>

#include <memory>

#include "clocks/fm_sync_clock.hpp"
#include "clocks/lamport_clock.hpp"
#include "clocks/online_clock.hpp"
#include "common/rng.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "trace/generator.hpp"

using namespace syncts;

namespace {

Graph make_topology(int family, std::size_t n) {
    Rng rng(42);
    switch (family) {
        case 0: return topology::star(n);
        case 1: return topology::client_server(4, n - 4);
        case 2: return topology::kary_tree(n, 4);
        default: return topology::complete(n);
    }
}

const char* family_name(int family) {
    switch (family) {
        case 0: return "star";
        case 1: return "client_server4";
        case 2: return "kary_tree4";
        default: return "complete";
    }
}

SyncComputation workload(const Graph& g, std::size_t messages) {
    Rng rng(7);
    WorkloadOptions options;
    options.num_messages = messages;
    return random_computation(g, options, rng);
}

void BM_OnlineClock(benchmark::State& state) {
    const int family = static_cast<int>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    const Graph g = make_topology(family, n);
    const SyncSystem system{Graph(g)};
    const SyncComputation c = workload(g, 2048);
    for (auto _ : state) {
        OnlineTimestamper timestamper(system.decomposition_ptr());
        for (const SyncMessage& m : c.messages()) {
            benchmark::DoNotOptimize(
                timestamper.timestamp_message(m.sender, m.receiver));
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * c.num_messages()));
    state.SetLabel(std::string(family_name(family)) +
                   " d=" + std::to_string(system.width()));
}

void BM_FmSyncClock(benchmark::State& state) {
    const int family = static_cast<int>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    const Graph g = make_topology(family, n);
    const SyncComputation c = workload(g, 2048);
    for (auto _ : state) {
        FmSyncTimestamper timestamper(g.num_vertices());
        for (const SyncMessage& m : c.messages()) {
            benchmark::DoNotOptimize(
                timestamper.timestamp_message(m.sender, m.receiver));
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * c.num_messages()));
    state.SetLabel(std::string(family_name(family)) +
                   " N=" + std::to_string(g.num_vertices()));
}

void BM_LamportClock(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Graph g = topology::client_server(4, n - 4);
    const SyncComputation c = workload(g, 2048);
    for (auto _ : state) {
        benchmark::DoNotOptimize(lamport_timestamps(c));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * c.num_messages()));
}

void OverheadArgs(benchmark::internal::Benchmark* bench) {
    for (int family = 0; family < 4; ++family) {
        for (const std::int64_t n : {16, 64, 256}) {
            if (family == 3 && n > 64) continue;  // complete: O(N^2) edges
            bench->Args({family, n});
        }
    }
}

BENCHMARK(BM_OnlineClock)->Apply(OverheadArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FmSyncClock)->Apply(OverheadArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LamportClock)->Arg(16)->Arg(64)->Arg(256)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
