// Experiment TAB-OFF — the offline algorithm (Fig. 9) and Theorem 8.
//
// For random workloads across topologies: the message poset's width never
// exceeds floor(N/2); the offline vectors use exactly `width` components;
// the realizer's intersection is the poset (spot-verified); and offline
// width is often far below both the bound and the online width d because
// it reflects the parallelism actually present in the trace.

#include <cstdio>

#include "bench_json.hpp"
#include "clocks/offline_timestamper.hpp"
#include "common/rng.hpp"
#include "core/causality.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

namespace {

void study(const char* family, const Graph& g, std::size_t messages,
           std::uint64_t seed, bool verify) {
    Rng rng(seed);
    WorkloadOptions options;
    options.num_messages = messages;
    const SyncComputation c = random_computation(g, options, rng);
    const Poset truth = message_poset(c);
    const OfflineResult offline = offline_timestamps(c);
    const OfflineResult minimized =
        offline_timestamps(c, /*minimize_dimension=*/true);
    const SyncSystem system{Graph(g)};

    const std::size_t n = g.num_vertices();
    const bool bound_ok = offline.width <= n / 2;
    std::size_t mismatches = 0;
    if (verify) {
        mismatches = encoding_mismatches(truth, offline.timestamps) +
                     encoding_mismatches(truth, minimized.timestamps);
    }
    std::printf("%-18s %6zu %6zu %9zu %9zu %9zu %9zu %8s %9s\n", family, n,
                messages, offline.width, minimized.width, n / 2,
                system.width(), bound_ok ? "ok" : "FAIL",
                verify ? (mismatches == 0 ? "exact" : "FAIL") : "-");
}

}  // namespace

int main() {
    std::printf("== TAB-OFF: offline algorithm (Fig. 9 / Theorem 8) ==\n\n");
    std::printf("%-18s %6s %6s %9s %9s %9s %9s %8s %9s\n", "family", "N",
                "msgs", "width", "min-dim", "N/2", "online d", "Thm8",
                "encoding");

    Rng seeds(4004);
    study("complete", topology::complete(8), 200, seeds(), true);
    study("complete", topology::complete(16), 300, seeds(), true);
    study("complete", topology::complete(32), 400, seeds(), false);
    study("ring", topology::ring(8), 200, seeds(), true);
    study("ring", topology::ring(16), 300, seeds(), true);
    study("ring", topology::ring(32), 400, seeds(), false);
    study("star", topology::star(16), 300, seeds(), true);
    study("client-server k=3", topology::client_server(3, 13), 300, seeds(),
          true);
    study("client-server k=3", topology::client_server(3, 29), 400, seeds(),
          false);
    Rng rng(5005);
    study("random-tree", topology::random_tree(16, rng), 300, seeds(), true);
    study("random-tree", topology::random_tree(32, rng), 400, seeds(), false);
    study("grid 4x4", topology::grid(4, 4), 300, seeds(), true);

    // Serialized-chain corner: offline width collapses to 1 even on a
    // complete graph where the online algorithm needs N-2 components.
    SyncComputation chain(topology::complete(12));
    for (ProcessId i = 0; i + 1 < 12; ++i) chain.add_message(i, i + 1);
    const OfflineResult offline = offline_timestamps(chain);
    std::printf("%-18s %6u %6zu %9zu %9zu %9u %9zu %8s %9s\n",
                "K12 serial chain", 12u, chain.num_messages(), offline.width,
                offline.width, 6u,
                SyncSystem(topology::complete(12)).width(),
                offline.width <= 6 ? "ok" : "FAIL",
                encoding_mismatches(message_poset(chain),
                                    offline.timestamps) == 0
                    ? "exact"
                    : "FAIL");

    std::printf(
        "\nshape check: width <= N/2 always (Theorem 8); width 1 on star "
        "topologies and serialized traffic; offline <= online d on every "
        "row where both are reported; the min-dim post-pass (an extension "
        "beyond Fig. 9) never widens and sometimes shaves a component.\n");

    // Machine-readable summary for tools/bench_to_json.sh.
    Rng json_rng(4114);
    WorkloadOptions options;
    options.num_messages = 300;
    const SyncComputation c =
        random_computation(topology::ring(16), options, json_rng);
    bench::measure_and_emit("offline", c.num_messages(), [&] {
        (void)offline_timestamps(c);
    });
    return 0;
}
