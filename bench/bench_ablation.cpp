// Experiment TAB-ABL — ablations of design choices the paper calls out.
//
// 1. Step-3 pivot rule (Fig. 7): the paper picks the edge with the most
//    adjacent edges and remarks that correctness and the ratio bound do
//    not depend on it, "however ... one would expect to have a smaller
//    edge decomposition." Measured here: most-adjacent vs first-live.
// 2. Stars-only vs stars+triangles: the β ≤ 2α bound and its tight
//    family (disjoint triangles), plus typical-case gaps.

#include <cstdio>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "decomp/cover_decomposer.hpp"
#include "decomp/exact_decomposer.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_cover.hpp"

using namespace syncts;

int main() {
    std::printf("== TAB-ABL: design-choice ablations ==\n\n");

    std::printf("step-3 pivot rule (mean d over 60 instances):\n");
    std::printf("%-18s %14s %12s %12s %12s\n", "family", "most-adjacent",
                "first-live", "worse cases", "exact");
    Rng rng(9009);
    struct Family {
        const char* name;
        std::size_t n;
        double p;
    };
    for (const Family family :
         {Family{"gnp(12,0.25)", 12, 0.25}, Family{"gnp(12,0.45)", 12, 0.45},
          Family{"gnp(16,0.20)", 16, 0.20},
          Family{"gnp(16,0.40)", 16, 0.40}}) {
        constexpr int kTrials = 60;
        std::size_t sum_heavy = 0;
        std::size_t sum_first = 0;
        std::size_t sum_exact = 0;
        int first_worse = 0;
        for (int t = 0; t < kTrials; ++t) {
            const Graph g = topology::random_gnp(family.n, family.p, rng);
            const std::size_t heavy =
                greedy_edge_decomposition(g, HeavyEdgeRule::most_adjacent)
                    .size();
            const std::size_t first =
                greedy_edge_decomposition(g, HeavyEdgeRule::first_live)
                    .size();
            sum_heavy += heavy;
            sum_first += first;
            first_worse += first > heavy ? 1 : 0;
            if (family.n <= 12) {
                if (const auto exact = exact_edge_decomposition(g)) {
                    sum_exact += exact->size();
                }
            }
        }
        std::printf("%-18s %14.2f %12.2f %11d%% ", family.name,
                    static_cast<double>(sum_heavy) / kTrials,
                    static_cast<double>(sum_first) / kTrials,
                    100 * first_worse / kTrials);
        if (family.n <= 12) {
            std::printf("%12.2f\n", static_cast<double>(sum_exact) / kTrials);
        } else {
            std::printf("%12s\n", "-");
        }
    }

    std::printf("\nstars-only (vertex cover) vs stars+triangles:\n");
    std::printf("%-22s %8s %8s %10s\n", "family", "alpha", "beta",
                "beta/alpha");
    const auto compare = [](const char* name, const Graph& g) {
        const auto alpha = exact_edge_decomposition(g);
        const std::size_t beta = exact_vertex_cover(g).size();
        if (!alpha || alpha->size() == 0) return;
        std::printf("%-22s %8zu %8zu %10.2f\n", name, alpha->size(), beta,
                    static_cast<double>(beta) /
                        static_cast<double>(alpha->size()));
    };
    compare("triangles x3 (tight)", topology::disjoint_triangles(3));
    compare("triangles x5 (tight)", topology::disjoint_triangles(5));
    compare("K5", topology::complete(5));
    compare("K7", topology::complete(7));
    compare("ring 9", topology::ring(9));
    compare("fig2b", topology::paper_fig2b());
    compare("grid 3x3", topology::grid(3, 3));
    Rng rng2(9119);
    compare("gnp(12,0.4)", topology::random_gnp(12, 0.4, rng2));

    std::printf(
        "\nshape check: the heaviest-edge heuristic never hurts and often "
        "saves a group; beta/alpha peaks at 2.0 exactly on the disjoint-"
        "triangle family (the paper's tight example).\n");

    // Machine-readable summary for tools/bench_to_json.sh.
    Rng json_rng(9339);
    std::vector<Graph> instances;
    for (int t = 0; t < 60; ++t) {
        instances.push_back(topology::random_gnp(16, 0.3, json_rng));
    }
    bench::measure_and_emit("ablation", instances.size(), [&] {
        for (const Graph& g : instances) {
            (void)greedy_edge_decomposition(g);
        }
    });
    return 0;
}
