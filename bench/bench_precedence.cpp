// Experiment TAB-PREC — precedence-test cost (Sections 2 and 6).
//
// The precedence test m1 |-> m2 ⟺ v(m1) < v(m2) is a straight
// component-wise comparison: O(d) for the paper's timestamps, O(N) for
// FM. We benchmark comparisons over stamp sets produced by both clocks on
// the same workloads, so the measured gap tracks N/d.

#include <benchmark/benchmark.h>

#include <vector>

#include "clocks/direct_dependency.hpp"
#include "clocks/fm_sync_clock.hpp"
#include "clocks/online_clock.hpp"
#include "common/rng.hpp"
#include "core/causality.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "trace/generator.hpp"

using namespace syncts;

namespace {

SyncComputation workload(const Graph& g) {
    Rng rng(9);
    WorkloadOptions options;
    options.num_messages = 512;
    return random_computation(g, options, rng);
}

void BM_PrecedencePaper(benchmark::State& state) {
    const auto clients = static_cast<std::size_t>(state.range(0));
    const Graph g = topology::client_server(4, clients);
    const SyncSystem system{Graph(g)};
    const SyncComputation c = workload(g);
    auto timestamper = system.make_timestamper();
    const std::vector<VectorTimestamp> stamps =
        timestamper.timestamp_computation(c);
    std::size_t a = 0;
    std::size_t b = stamps.size() / 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stamps[a].less(stamps[b]));
        a = (a + 1) % stamps.size();
        b = (b + 7) % stamps.size();
    }
    state.SetLabel("d=" + std::to_string(system.width()));
}

void BM_PrecedenceFm(benchmark::State& state) {
    const auto clients = static_cast<std::size_t>(state.range(0));
    const Graph g = topology::client_server(4, clients);
    const SyncComputation c = workload(g);
    const std::vector<VectorTimestamp> stamps = fm_sync_timestamps(c);
    std::size_t a = 0;
    std::size_t b = stamps.size() / 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stamps[a].less(stamps[b]));
        a = (a + 1) % stamps.size();
        b = (b + 7) % stamps.size();
    }
    state.SetLabel("N=" + std::to_string(g.num_vertices()));
}

void BM_PrecedenceDirectDeps(benchmark::State& state) {
    // Fowler–Zwaenepoel trade-off (Section 6): O(1) piggyback, but each
    // precedence test chases direct dependencies recursively.
    const auto clients = static_cast<std::size_t>(state.range(0));
    const Graph g = topology::client_server(4, clients);
    const SyncComputation c = workload(g);
    const auto records = DirectDependencyTracker::record_computation(c);
    std::vector<char> scratch;
    std::size_t a = 0;
    std::size_t b = records.size() / 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(direct_precedes(
            static_cast<MessageId>(a), static_cast<MessageId>(b), records,
            scratch));
        a = (a + 1) % records.size();
        b = (b + 7) % records.size();
    }
    state.SetLabel("N=" + std::to_string(g.num_vertices()));
}

void BM_ConcurrencySweepPaper(benchmark::State& state) {
    // Bulk query: count all concurrent pairs among 512 operations — the
    // monitor's conflict-detection workload.
    const auto clients = static_cast<std::size_t>(state.range(0));
    const Graph g = topology::client_server(4, clients);
    const SyncSystem system{Graph(g)};
    const SyncComputation c = workload(g);
    auto timestamper = system.make_timestamper();
    const std::vector<VectorTimestamp> stamps =
        timestamper.timestamp_computation(c);
    for (auto _ : state) {
        benchmark::DoNotOptimize(count_concurrent_pairs(stamps));
    }
}

void BM_ConcurrencySweepFm(benchmark::State& state) {
    const auto clients = static_cast<std::size_t>(state.range(0));
    const Graph g = topology::client_server(4, clients);
    const SyncComputation c = workload(g);
    const std::vector<VectorTimestamp> stamps = fm_sync_timestamps(c);
    for (auto _ : state) {
        benchmark::DoNotOptimize(count_concurrent_pairs(stamps));
    }
}

BENCHMARK(BM_PrecedencePaper)->Arg(12)->Arg(60)->Arg(252)->Arg(1020);
BENCHMARK(BM_PrecedenceFm)->Arg(12)->Arg(60)->Arg(252)->Arg(1020);
BENCHMARK(BM_PrecedenceDirectDeps)->Arg(12)->Arg(60)->Arg(252)->Arg(1020);
BENCHMARK(BM_ConcurrencySweepPaper)
    ->Arg(60)
    ->Arg(252)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConcurrencySweepFm)
    ->Arg(60)
    ->Arg(252)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
