// Experiment TAB-ARENA — the zero-allocation timestamp core.
//
// Same Fig. 5 online rendezvous, two storage disciplines:
//   legacy — every hook returns owning VectorTimestamp values (one heap
//            vector per piggyback, acknowledgement and stamp)
//   arena  — the ClockEngine span hooks write into TimestampArena rows and
//            engine-owned scratch; zero heap traffic per message once the
//            arena has capacity
// Reports ns/message and heap allocations for both over identical message
// sequences, plus the speedup. The arena path must be allocation-free in
// steady state and at least 1.5x the legacy throughput on the d << N
// families the online algorithm targets.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "clocks/online_clock.hpp"
#include "clocks/vector_timestamp.hpp"
#include "common/rng.hpp"
#include "common/timestamp_arena.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"

using namespace syncts;

namespace {

struct Workload {
    std::shared_ptr<const EdgeDecomposition> decomposition;
    std::vector<std::pair<ProcessId, ProcessId>> sends;
};

Workload make_workload(const Graph& g, std::size_t messages,
                       std::uint64_t seed) {
    Rng rng(seed);
    Workload w{std::make_shared<const EdgeDecomposition>(
                   default_decomposition(g)),
               {}};
    const auto& edges = g.edges();
    w.sends.reserve(messages);
    for (std::size_t i = 0; i < messages; ++i) {
        const Edge e = edges[rng.below(edges.size())];
        if (rng.chance(1, 2)) {
            w.sends.emplace_back(e.u, e.v);
        } else {
            w.sends.emplace_back(e.v, e.u);
        }
    }
    return w;
}

struct Result {
    double ns_per_msg;
    std::size_t allocs;
};

Result run_legacy(const Workload& w, std::size_t rounds) {
    OnlineTimestamper engine(w.decomposition);
    // Sink so the optimizer cannot drop the stamps.
    std::uint64_t checksum = 0;
    const double ns = syncts::bench::measure_and_emit(
        "arena_legacy_path", rounds * w.sends.size(), [&] {
            for (std::size_t r = 0; r < rounds; ++r) {
                for (const auto& [from, to] : w.sends) {
                    const VectorTimestamp ts =
                        engine.timestamp_message(from, to);
                    checksum += ts.components().back();
                }
            }
        });
    const std::size_t allocs = syncts::bench::allocations();
    if (checksum == 0) std::printf("(unreachable checksum)\n");
    return {ns, allocs};
}

Result run_arena(const Workload& w, std::size_t rounds) {
    OnlineTimestamper engine(w.decomposition);
    TimestampArena arena(engine.width(), w.sends.size());
    // Warm-up sizes the engine scratch and the arena slab so the measured
    // region is pure steady state.
    for (const auto& [from, to] : w.sends) {
        engine.timestamp_message(from, to, arena);
    }
    engine.reset();
    arena.clear();

    std::uint64_t checksum = 0;
    const std::size_t allocs_before = syncts::bench::allocations();
    const double ns = syncts::bench::measure_and_emit(
        "arena_span_path", rounds * w.sends.size(), [&] {
            for (std::size_t r = 0; r < rounds; ++r) {
                arena.clear();
                for (const auto& [from, to] : w.sends) {
                    const TsHandle h =
                        engine.timestamp_message(from, to, arena);
                    checksum += arena.span(h).back();
                }
            }
        });
    const std::size_t allocs = syncts::bench::allocations() - allocs_before;
    if (checksum == 0) std::printf("(unreachable checksum)\n");
    return {ns, allocs};
}

/// The arena path with live metrics attached (counter per slot, slab
/// gauge, per-family stamp counter): measures what the instrumentation
/// costs when enabled. Must stay allocation-free in steady state —
/// registration allocates up front, increments never do.
Result run_arena_instrumented(const Workload& w, std::size_t rounds) {
    OnlineTimestamper engine(w.decomposition);
    TimestampArena arena(engine.width(), w.sends.size());
    obs::MetricsRegistry registry;
    arena.attach_metrics(registry, "arena");
    engine.attach_metrics(registry);
    for (const auto& [from, to] : w.sends) {
        engine.timestamp_message(from, to, arena);
    }
    engine.reset();
    arena.clear();

    std::uint64_t checksum = 0;
    const std::size_t allocs_before = syncts::bench::allocations();
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        arena.clear();
        for (const auto& [from, to] : w.sends) {
            const TsHandle h = engine.timestamp_message(from, to, arena);
            checksum += arena.span(h).back();
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    const std::size_t allocs = syncts::bench::allocations() - allocs_before;
    const std::size_t n = rounds * w.sends.size();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(n == 0 ? 1 : n);
    syncts::bench::emit_json_with_metrics("arena_span_path_metrics", n, ns,
                                          allocs, registry);
    if (checksum == 0) std::printf("(unreachable checksum)\n");
    return {ns, allocs};
}

/// Throughput regression guard for the widened comparison kernels: stamps
/// the workload once, then streams the whole slab through leq_many (the
/// 4-way unrolled word loop in ts_kernels) for `rounds` rotating probes.
/// Reports ns per compared stamp — a kernel-unroll regression shows up
/// here before it shows up in closure or verification wall time.
Result run_leq_scan(const Workload& w, std::size_t rounds) {
    OnlineTimestamper engine(w.decomposition);
    TimestampArena arena(engine.width(), w.sends.size());
    for (const auto& [from, to] : w.sends) {
        engine.timestamp_message(from, to, arena);
    }
    std::vector<std::uint8_t> out(arena.size());
    std::uint64_t checksum = 0;
    const std::size_t allocs_before = syncts::bench::allocations();
    const double ns = syncts::bench::measure_and_emit(
        "arena_leq_many", rounds * arena.size(), [&] {
            for (std::size_t r = 0; r < rounds; ++r) {
                const TsHandle probe =
                    static_cast<TsHandle>(r % arena.size());
                leq_many(arena, arena.span(probe), out);
                checksum += out[probe];
            }
        });
    const std::size_t allocs = syncts::bench::allocations() - allocs_before;
    if (checksum == 0) std::printf("(impossible: probe <= probe)\n");
    return {ns, allocs};
}

void study(const char* family, const Graph& g, std::size_t messages,
           std::size_t rounds, std::uint64_t seed) {
    const Workload w = make_workload(g, messages, seed);
    const Result legacy = run_legacy(w, rounds);
    const Result arena = run_arena(w, rounds);
    const Result instrumented = run_arena_instrumented(w, rounds);
    const Result leq = run_leq_scan(w, rounds);
    std::printf(
        "%-20s %5zu %5zu %10.1f %10.1f %8.2fx %12zu %9.1f%% %6zu %8.2f\n",
        family, g.num_vertices(), w.decomposition->size(), legacy.ns_per_msg,
        arena.ns_per_msg, legacy.ns_per_msg / arena.ns_per_msg, arena.allocs,
        (instrumented.ns_per_msg / arena.ns_per_msg - 1.0) * 100.0,
        instrumented.allocs, leq.ns_per_msg);
}

}  // namespace

int main() {
    std::printf("== TAB-ARENA: arena span hooks vs owning vectors ==\n\n");
    std::printf("%-20s %5s %5s %10s %10s %8s %12s %10s %6s %8s\n", "family",
                "N", "d", "legacy ns", "arena ns", "speedup", "arena allocs",
                "metric ovh", "allocs", "leq ns");
    Rng seeds(11011);
    study("star", topology::star(32), 4096, 64, seeds());
    study("star", topology::star(128), 4096, 64, seeds());
    study("client-server k=3", topology::client_server(3, 61), 4096, 64,
          seeds());
    study("kary-tree k=4", topology::kary_tree(64, 4), 4096, 64, seeds());
    study("ring", topology::ring(32), 4096, 64, seeds());
    study("complete (worst)", topology::complete(16), 4096, 64, seeds());
    std::printf(
        "\nshape check: identical stamps on both paths (same engine, same\n"
        "sends); the arena column must show 0 steady-state allocations, and\n"
        "the speedup must clear 1.5x on the d << N families the online\n"
        "algorithm targets (star, client-server, trees). The complete-graph\n"
        "worst case (d = N-2) is merge-bound — both paths spend their time\n"
        "joining wide vectors — so the allocation savings amortize less.\n"
        "The metric-ovh column is the arena path re-run with the metrics\n"
        "registry attached (slot counter + slab gauge + per-family stamp\n"
        "counter live): it must stay within a few percent and at 0\n"
        "steady-state allocations — instrumentation must not cost the\n"
        "zero-allocation guarantee it is there to watch.\n"
        "The leq-ns column streams the slab through the 4-way unrolled\n"
        "leq_many kernel (ns per compared stamp) — a regression guard for\n"
        "the widened word loops in ts_kernels.\n");
    return 0;
}
