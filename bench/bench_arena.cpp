// Experiment TAB-ARENA — the zero-allocation timestamp core.
//
// Same Fig. 5 online rendezvous, two storage disciplines:
//   legacy — every hook returns owning VectorTimestamp values (one heap
//            vector per piggyback, acknowledgement and stamp)
//   arena  — the ClockEngine span hooks write into TimestampArena rows and
//            engine-owned scratch; zero heap traffic per message once the
//            arena has capacity
// Reports ns/message and heap allocations for both over identical message
// sequences, plus the speedup. The arena path must be allocation-free in
// steady state and at least 1.5x the legacy throughput on the d << N
// families the online algorithm targets.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "clocks/online_clock.hpp"
#include "clocks/vector_timestamp.hpp"
#include "common/region.hpp"
#include "common/rng.hpp"
#include "common/timestamp_arena.hpp"
#include "common/ts_simd.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"

using namespace syncts;

namespace {

struct Workload {
    std::shared_ptr<const EdgeDecomposition> decomposition;
    std::vector<std::pair<ProcessId, ProcessId>> sends;
};

Workload make_workload(const Graph& g, std::size_t messages,
                       std::uint64_t seed) {
    Rng rng(seed);
    Workload w{std::make_shared<const EdgeDecomposition>(
                   default_decomposition(g)),
               {}};
    const auto& edges = g.edges();
    w.sends.reserve(messages);
    for (std::size_t i = 0; i < messages; ++i) {
        const Edge e = edges[rng.below(edges.size())];
        if (rng.chance(1, 2)) {
            w.sends.emplace_back(e.u, e.v);
        } else {
            w.sends.emplace_back(e.v, e.u);
        }
    }
    return w;
}

struct Result {
    double ns_per_msg;
    std::size_t allocs;
};

Result run_legacy(const Workload& w, std::size_t rounds) {
    OnlineTimestamper engine(w.decomposition);
    // Sink so the optimizer cannot drop the stamps.
    std::uint64_t checksum = 0;
    const double ns = syncts::bench::measure_and_emit(
        "arena_legacy_path", rounds * w.sends.size(), [&] {
            for (std::size_t r = 0; r < rounds; ++r) {
                for (const auto& [from, to] : w.sends) {
                    const VectorTimestamp ts =
                        engine.timestamp_message(from, to);
                    checksum += ts.components().back();
                }
            }
        });
    const std::size_t allocs = syncts::bench::allocations();
    if (checksum == 0) std::printf("(unreachable checksum)\n");
    return {ns, allocs};
}

Result run_arena(const Workload& w, std::size_t rounds) {
    OnlineTimestamper engine(w.decomposition);
    TimestampArena arena(engine.width(), w.sends.size());
    // Warm-up sizes the engine scratch and the arena slab so the measured
    // region is pure steady state.
    for (const auto& [from, to] : w.sends) {
        engine.timestamp_message(from, to, arena);
    }
    engine.reset();
    arena.clear();

    std::uint64_t checksum = 0;
    const std::size_t allocs_before = syncts::bench::allocations();
    const double ns = syncts::bench::measure_and_emit(
        "arena_span_path", rounds * w.sends.size(), [&] {
            for (std::size_t r = 0; r < rounds; ++r) {
                arena.clear();
                for (const auto& [from, to] : w.sends) {
                    const TsHandle h =
                        engine.timestamp_message(from, to, arena);
                    checksum += arena.span(h).back();
                }
            }
        });
    const std::size_t allocs = syncts::bench::allocations() - allocs_before;
    if (checksum == 0) std::printf("(unreachable checksum)\n");
    return {ns, allocs};
}

/// The arena path with live metrics attached (counter per slot, slab
/// gauge, per-family stamp counter): measures what the instrumentation
/// costs when enabled. Must stay allocation-free in steady state —
/// registration allocates up front, increments never do.
Result run_arena_instrumented(const Workload& w, std::size_t rounds) {
    OnlineTimestamper engine(w.decomposition);
    TimestampArena arena(engine.width(), w.sends.size());
    obs::MetricsRegistry registry;
    arena.attach_metrics(registry, "arena");
    engine.attach_metrics(registry);
    for (const auto& [from, to] : w.sends) {
        engine.timestamp_message(from, to, arena);
    }
    engine.reset();
    arena.clear();

    std::uint64_t checksum = 0;
    const std::size_t allocs_before = syncts::bench::allocations();
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        arena.clear();
        for (const auto& [from, to] : w.sends) {
            const TsHandle h = engine.timestamp_message(from, to, arena);
            checksum += arena.span(h).back();
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    const std::size_t allocs = syncts::bench::allocations() - allocs_before;
    const std::size_t n = rounds * w.sends.size();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(n == 0 ? 1 : n);
    syncts::bench::emit_json_with_metrics("arena_span_path_metrics", n, ns,
                                          allocs, registry);
    if (checksum == 0) std::printf("(unreachable checksum)\n");
    return {ns, allocs};
}

/// Throughput regression guard for the widened comparison kernels: stamps
/// the workload once, then streams the whole slab through leq_many (the
/// 4-way unrolled word loop in ts_kernels) for `rounds` rotating probes.
/// Reports ns per compared stamp — a kernel-unroll regression shows up
/// here before it shows up in closure or verification wall time.
Result run_leq_scan(const Workload& w, std::size_t rounds) {
    OnlineTimestamper engine(w.decomposition);
    TimestampArena arena(engine.width(), w.sends.size());
    for (const auto& [from, to] : w.sends) {
        engine.timestamp_message(from, to, arena);
    }
    std::vector<std::uint8_t> out(arena.size());
    std::uint64_t checksum = 0;
    const std::size_t allocs_before = syncts::bench::allocations();
    const double ns = syncts::bench::measure_and_emit(
        "arena_leq_many", rounds * arena.size(), [&] {
            for (std::size_t r = 0; r < rounds; ++r) {
                const TsHandle probe =
                    static_cast<TsHandle>(r % arena.size());
                leq_many(arena, arena.span(probe), out);
                checksum += out[probe];
            }
        });
    const std::size_t allocs = syncts::bench::allocations() - allocs_before;
    if (checksum == 0) std::printf("(impossible: probe <= probe)\n");
    return {ns, allocs};
}

void study(const char* family, const Graph& g, std::size_t messages,
           std::size_t rounds, std::uint64_t seed) {
    const Workload w = make_workload(g, messages, seed);
    const Result legacy = run_legacy(w, rounds);
    const Result arena = run_arena(w, rounds);
    const Result instrumented = run_arena_instrumented(w, rounds);
    const Result leq = run_leq_scan(w, rounds);
    std::printf(
        "%-20s %5zu %5zu %10.1f %10.1f %8.2fx %12zu %9.1f%% %6zu %8.2f\n",
        family, g.num_vertices(), w.decomposition->size(), legacy.ns_per_msg,
        arena.ns_per_msg, legacy.ns_per_msg / arena.ns_per_msg, arena.allocs,
        (instrumented.ns_per_msg / arena.ns_per_msg - 1.0) * 100.0,
        instrumented.allocs, leq.ns_per_msg);
}

// ---- Epoch-churn study (TAB-MEMORY, docs/MEMORY.md) --------------------
//
// Region lifecycle at server scale: one pool-backed region per epoch,
// opened, filled, and retired at a fixed stability lag. The
// peak_region_bytes column is SlabPool::peak_bytes() — the footprint
// high-water mark — and the memory-soak CI gate fails if it grows with
// the epoch count: 10x the epochs must not move the peak, because the
// live working set is O(lag * width), not O(epochs).
void churn_study(std::size_t epochs) {
    constexpr std::size_t kWidth = 8;
    constexpr std::size_t kSlots = 512;
    constexpr EpochId kLag = 2;
    SlabPool pool;
    RegionStore store(pool);
    std::uint64_t checksum = 0;
    const std::size_t allocs_before = bench::allocations();
    const auto start = std::chrono::steady_clock::now();
    for (EpochId e = 0; e < epochs; ++e) {
        TimestampArena& arena =
            store.open(e, kWidth, kSlots);
        for (std::size_t i = 0; i < kSlots; ++i) {
            const TsHandle h = arena.allocate();
            arena.span(h)[0] = e + i;
        }
        checksum += arena.span(0)[0];
        if (e >= kLag) store.close(e - kLag);
    }
    for (EpochId e = static_cast<EpochId>(epochs) - kLag;
         e < epochs; ++e) {
        store.close(e);
    }
    const auto stop = std::chrono::steady_clock::now();
    const std::size_t allocs = bench::allocations() - allocs_before;
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(epochs);
    if (checksum == 0) std::printf("(unreachable checksum)\n");
    std::printf("%8zu %12.1f %10zu %18zu %10llu %10llu\n", epochs, ns,
                allocs, pool.peak_bytes(),
                static_cast<unsigned long long>(pool.acquires()),
                static_cast<unsigned long long>(pool.reuses()));
    // Canonical line plus the peak_region_bytes column the soak gate
    // reads (tools/bench_to_json.sh back-fills it to 0 for other rows).
    std::printf("{\"bench\":\"arena_epoch_churn\",\"n\":%zu,"
                "\"ns_per_msg\":%.1f,\"allocs\":%zu,\"threads\":1,"
                "\"epochs\":%zu,\"peak_region_bytes\":%zu}\n",
                epochs, ns, allocs, epochs, pool.peak_bytes());
}

// ---- SIMD study (TAB-SIMD, docs/MEMORY.md) -----------------------------
//
// leq_many scalar vs AVX2 over a random slab, per width. The acceptance
// gate: >= 1.5x at width >= 16 on AVX2 hosts (the simd_speedup column;
// hosts without AVX2 report speedup 1.0 and the gate is skipped).
void simd_study(std::size_t width) {
    constexpr std::size_t kRows = 4096;
    constexpr std::size_t kRounds = 256;
    Rng rng(0x51D0ULL + width);
    // The closure/dominators regime the batch kernels exist for: the
    // probe is an early timestamp, every row is causally after it, and
    // the comparison scans the full width. (Fail-fast workloads — rows
    // concurrent with the probe — resolve at the first violating word,
    // where the scalar short-circuit is already optimal and SIMD has
    // nothing to vectorize; the gate measures the scan regime.)
    std::vector<std::uint64_t> probe(width);
    for (auto& v : probe) v = rng.below(3);
    std::vector<std::uint64_t> slab(kRows * width);
    for (std::size_t i = 0; i < kRows; ++i) {
        for (std::size_t k = 0; k < width; ++k) {
            slab[i * width + k] = probe[k] + rng.below(4);
        }
    }
    std::vector<std::uint8_t> out(kRows);

    const auto time_backend = [&](auto&& kernel) {
        std::uint64_t checksum = 0;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < kRounds; ++r) {
            kernel(slab.data(), kRows, width, probe.data(), out.data());
            checksum += out[r % kRows];
        }
        const auto stop = std::chrono::steady_clock::now();
        if (checksum == 0xFFFFFFFFu) std::printf("(sink)\n");
        return static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       stop - start)
                       .count()) /
               static_cast<double>(kRounds * kRows);
    };
    const double scalar_ns = time_backend(simd::leq_many_scalar);
    const double avx2_ns = time_backend(simd::leq_many_avx2);
    const double speedup = scalar_ns / avx2_ns;
    std::printf("%8zu %12.2f %12.2f %9.2fx %6s\n", width, scalar_ns,
                avx2_ns, speedup, simd::avx2_available() ? "yes" : "no");
    std::printf("{\"bench\":\"arena_simd_leq_w%zu\",\"n\":%zu,"
                "\"ns_per_msg\":%.2f,\"allocs\":0,\"threads\":1,"
                "\"epochs\":1,\"simd_scalar_ns\":%.2f,"
                "\"simd_speedup\":%.2f,\"avx2\":%d}\n",
                width, kRounds * kRows, avx2_ns, scalar_ns, speedup,
                simd::avx2_available() ? 1 : 0);
}

}  // namespace

int main() {
    std::printf("== TAB-ARENA: arena span hooks vs owning vectors ==\n\n");
    std::printf("%-20s %5s %5s %10s %10s %8s %12s %10s %6s %8s\n", "family",
                "N", "d", "legacy ns", "arena ns", "speedup", "arena allocs",
                "metric ovh", "allocs", "leq ns");
    Rng seeds(11011);
    study("star", topology::star(32), 4096, 64, seeds());
    study("star", topology::star(128), 4096, 64, seeds());
    study("client-server k=3", topology::client_server(3, 61), 4096, 64,
          seeds());
    study("kary-tree k=4", topology::kary_tree(64, 4), 4096, 64, seeds());
    study("ring", topology::ring(32), 4096, 64, seeds());
    study("complete (worst)", topology::complete(16), 4096, 64, seeds());
    std::printf(
        "\nshape check: identical stamps on both paths (same engine, same\n"
        "sends); the arena column must show 0 steady-state allocations, and\n"
        "the speedup must clear 1.5x on the d << N families the online\n"
        "algorithm targets (star, client-server, trees). The complete-graph\n"
        "worst case (d = N-2) is merge-bound — both paths spend their time\n"
        "joining wide vectors — so the allocation savings amortize less.\n"
        "The metric-ovh column is the arena path re-run with the metrics\n"
        "registry attached (slot counter + slab gauge + per-family stamp\n"
        "counter live): it must stay within a few percent and at 0\n"
        "steady-state allocations — instrumentation must not cost the\n"
        "zero-allocation guarantee it is there to watch.\n"
        "The leq-ns column streams the slab through the 4-way unrolled\n"
        "leq_many kernel (ns per compared stamp) — a regression guard for\n"
        "the widened word loops in ts_kernels.\n");

    std::printf("\n== TAB-MEMORY: epoch-region churn (docs/MEMORY.md) ==\n\n");
    std::printf("%8s %12s %10s %18s %10s %10s\n", "epochs", "ns/epoch",
                "allocs", "peak_region_bytes", "acquires", "reuses");
    churn_study(100);
    churn_study(1000);
    std::printf(
        "\n(peak_region_bytes is the SlabPool high-water mark across the\n"
        " whole churn; the CI memory-soak gate requires the 1000-epoch row\n"
        " to match the 100-epoch row — the live set is O(lag*width), so a\n"
        " peak that scales with epochs is a retirement bug.)\n");

    std::printf("\n== TAB-SIMD: leq_many scalar vs AVX2 ==\n\n");
    std::printf("%8s %12s %12s %10s %6s\n", "width", "scalar ns",
                "avx2 ns", "speedup", "avx2?");
    for (const std::size_t width : {4u, 8u, 16u, 32u, 64u}) {
        simd_study(width);
    }
    std::printf(
        "\n(acceptance gate: speedup >= 1.5x at width >= 16 on AVX2 hosts;\n"
        " hosts without AVX2 run the scalar body under both names and the\n"
        " gate is skipped.)\n");
    return 0;
}
