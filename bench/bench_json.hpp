#pragma once

// Machine-readable bench output: every bench binary ends each study (or
// its run) with one JSON line of the canonical shape
//
//     {"bench":"...","n":...,"ns_per_msg":...,"allocs":...,"threads":...,
//      "epochs":...}
//
// so tools/bench_to_json.sh can collect results across binaries without
// parsing the human tables. "threads" is the analysis-pool width the
// study ran at (1 for every serial bench), so perf trajectories like
// BENCH_parallel.json can chart scaling across thread counts. "epochs"
// is the number of topology epochs the measured run crossed (1 for every
// static-topology bench; >1 only for the reconfiguration studies, see
// bench_reconfig). Include this header from the bench's main
// translation unit ONLY — it defines the replacement global operator
// new/delete that back the "allocs" column, and two definitions in one
// binary would violate the one-definition rule.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "obs/metrics.hpp"

namespace syncts::bench {

inline std::size_t g_allocation_count = 0;

/// Heap allocations observed so far in this process.
inline std::size_t allocations() noexcept { return g_allocation_count; }

}  // namespace syncts::bench

// GCC pairs the replacement operator new (delegating to malloc) with the
// free() in the replacement delete and reports a mismatched pair;
// replacing the global operators this way is well-defined.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
    ++syncts::bench::g_allocation_count;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    ++syncts::bench::g_allocation_count;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace syncts::bench {

/// Emits the canonical JSON line on its own stdout row. `threads` is the
/// analysis-pool width the measurement ran at (1 = serial); `epochs` the
/// number of topology epochs the run crossed (1 = static topology).
inline void emit_json(const char* bench, std::size_t n, double ns_per_msg,
                      std::size_t allocs, std::size_t threads = 1,
                      std::size_t epochs = 1) {
    std::printf("{\"bench\":\"%s\",\"n\":%zu,\"ns_per_msg\":%.1f,"
                "\"allocs\":%zu,\"threads\":%zu,\"epochs\":%zu}\n",
                bench, n, ns_per_msg, allocs, threads, epochs);
}

/// As emit_json, but appends a full registry snapshot under "metrics" —
/// for benches that run instrumented (bench_arena, bench_faults), so one
/// result line carries both the timing and what the counters saw.
inline void emit_json_with_metrics(const char* bench, std::size_t n,
                                   double ns_per_msg, std::size_t allocs,
                                   const obs::MetricsRegistry& registry,
                                   std::size_t threads = 1,
                                   std::size_t epochs = 1) {
    std::string out;
    out += "{\"bench\":\"";
    out += bench;
    out += "\",\"n\":" + std::to_string(n);
    char ns_text[32];
    std::snprintf(ns_text, sizeof(ns_text), "%.1f", ns_per_msg);
    out += ",\"ns_per_msg\":";
    out += ns_text;
    out += ",\"allocs\":" + std::to_string(allocs);
    out += ",\"threads\":" + std::to_string(threads);
    out += ",\"epochs\":" + std::to_string(epochs);
    out += ",\"metrics\":";
    registry.write_json(out);
    out += "}\n";
    std::fwrite(out.data(), 1, out.size(), stdout);
}

/// Times `fn` once over `n` items, counts the heap allocations it makes,
/// and emits the canonical JSON line. Returns ns per item for callers
/// that also want the number in their human-readable table.
template <typename Fn>
double measure_and_emit(const char* bench, std::size_t n, Fn&& fn,
                        std::size_t threads = 1) {
    const std::size_t allocs_before = allocations();
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const std::size_t allocs = allocations() - allocs_before;
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(n == 0 ? 1 : n);
    emit_json(bench, n, ns, allocs, threads);
    return ns;
}

}  // namespace syncts::bench
