// bench_reconfig — what does crossing an epoch boundary cost?
//
// Three measurements per topology size, all against random feasible
// reconfiguration schedules (topo/reconfig.hpp):
//
//   transition  TopologyManager::add_channel / remove_channel /
//               add_process — incremental re-decomposition (greedy patch
//               + quality guard) plus the component remap, per op
//   on_epoch    migrating a live online ClockEngine across one boundary
//               (high-water fold + floor remap + clock rebuild)
//   protocol    full reconfigurable rendezvous run, per message — the
//               end-to-end number the static-topology bench_runtime rows
//               compare against
//
// JSON rows carry the epochs column (> 1 here, unlike every static
// bench), so bench_to_json.sh output can separate reconfiguration
// trajectories from static ones.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "clocks/clock_engine.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "runtime/reconfig_runtime.hpp"
#include "topo/reconfig.hpp"
#include "topo/topology_manager.hpp"
#include "trace/generator.hpp"

using namespace syncts;
using Clock = std::chrono::steady_clock;

namespace {

double ns_per(const Clock::time_point start, const Clock::time_point stop,
              std::size_t items) {
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                    start)
                   .count()) /
           static_cast<double>(items == 0 ? 1 : items);
}

}  // namespace

int main() {
    std::printf("bench_reconfig: epoch transition costs "
                "(random feasible schedules, 64 ops each)\n");
    std::printf("%8s %10s %16s %16s %16s\n", "N", "d0", "transition(ns)",
                "on_epoch(ns)", "protocol(ns/msg)");

    for (const std::size_t n : {16, 32, 64, 128}) {
        Rng rng(7 * n + 1);
        const Graph g = topology::random_connected(n, n, rng);
        const std::vector<ReconfigOp> schedule =
            random_reconfig_schedule(g, 64, 1234 + n);

        // Transition cost: decomposition patch + remap, per op.
        TopologyManager manager{Graph(g)};
        const std::size_t allocs0 = bench::allocations();
        const auto t0 = Clock::now();
        for (const ReconfigOp& op : schedule) apply(manager, op);
        const auto t1 = Clock::now();
        const double transition_ns = ns_per(t0, t1, schedule.size());
        const std::string label = "reconfig/transition/n=" + std::to_string(n);
        bench::emit_json(label.c_str(), schedule.size(), transition_ns,
                         bench::allocations() - allocs0, 1,
                         manager.num_epochs());

        // Clock migration cost: one live online engine walking the whole
        // transition chain.
        auto engine =
            make_clock_engine(ClockFamily::online, manager.decomposition(0));
        const auto t2 = Clock::now();
        for (EpochId e = 1; e < manager.num_epochs(); ++e) {
            engine->on_epoch(manager.transition_into(e));
        }
        const auto t3 = Clock::now();
        const double migrate_ns = ns_per(t2, t3, manager.num_epochs() - 1);
        const std::string mlabel = "reconfig/on_epoch/n=" + std::to_string(n);
        bench::emit_json(mlabel.c_str(), manager.num_epochs() - 1, migrate_ns,
                         0, 1, manager.num_epochs());

        // End-to-end: the protocol over a short 9-epoch prefix, so the
        // run is dominated by rendezvous traffic, not setup.
        TopologyManager live{Graph(g)};
        for (std::size_t i = 0; i < 8; ++i) apply(live, schedule[i]);
        std::vector<SyncComputation> scripts;
        std::size_t messages = 0;
        Rng workload_rng(99 * n);
        for (EpochId e = 0; e < live.num_epochs(); ++e) {
            WorkloadOptions workload;
            workload.num_messages = 256;
            scripts.push_back(random_computation(live.epoch(e).graph(),
                                                 workload, workload_rng));
            messages += scripts.back().num_messages();
        }
        const std::size_t allocs1 = bench::allocations();
        const auto t4 = Clock::now();
        const ReconfigurableRunResult run =
            run_reconfigurable_protocol(live, scripts);
        const auto t5 = Clock::now();
        const double protocol_ns = ns_per(t4, t5, messages);
        const std::string plabel = "reconfig/protocol/n=" + std::to_string(n);
        bench::emit_json(plabel.c_str(), messages, protocol_ns,
                         bench::allocations() - allocs1, 1,
                         live.num_epochs());
        (void)run;

        std::printf("%8zu %10zu %16.1f %16.1f %16.1f\n", n,
                    manager.epoch(0).width(), transition_ns, migrate_ns,
                    protocol_ns);
    }
    return 0;
}
