// Experiment TAB-RECOVER — the price of crash tolerance.
//
// Three studies (docs/RECOVERY.md):
//   1. Durability tax: the same crash-free workload with the recovery
//      layer off vs. armed at WAL flush intervals 1/4/16 — what the
//      snapshot + WAL bookkeeping costs when nothing ever fails.
//   2. Crash/rejoin cost: 0..4 crashes per run under the same workload —
//      throughput, WAL replay volume, recommits and rejoin traffic, with
//      every realized timestamp still checked against the crash-free
//      Fig. 5 oracle.
//   3. Codec microbench: encode/decode round-trip cost of one WAL record
//      and one mid-size snapshot — the per-step serialization the
//      durable path pays.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "clocks/online_clock.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "recover/snapshot.hpp"
#include "recover/wal.hpp"
#include "runtime/synchronizer.hpp"
#include "trace/generator.hpp"

using namespace syncts;

namespace {

struct Setup {
    SyncComputation script;
    std::shared_ptr<const EdgeDecomposition> decomposition;
    std::vector<VectorTimestamp> expected;
};

Setup make_setup() {
    const Graph topology = topology::client_server(3, 9);
    Rng rng(20260808);
    WorkloadOptions workload;
    workload.num_messages = 400;
    Setup setup{.script = random_computation(topology, workload, rng),
                .decomposition = std::make_shared<const EdgeDecomposition>(
                    default_decomposition(topology)),
                .expected = {}};
    OnlineTimestamper direct(setup.decomposition);
    setup.expected = direct.timestamp_computation(setup.script);
    return setup;
}

struct Run {
    double msgs_per_sec = 0;
    bool exact = true;
};

Run run_protocol(const Setup& setup, SynchronizerOptions options,
                 int repeats, obs::MetricsRegistry* metrics) {
    Run run;
    std::uint64_t messages = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int repeat = 1; repeat <= repeats; ++repeat) {
        options.seed = static_cast<std::uint64_t>(repeat);
        options.faults.seed = static_cast<std::uint64_t>(repeat) * 7919;
        options.metrics = metrics;
        const SynchronizerResult result =
            run_rendezvous_protocol(setup.decomposition, setup.script,
                                    options);
        messages += result.message_stamps.size();
        for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
            run.exact = run.exact &&
                        result.message_stamps[i] ==
                            setup.expected[result.script_message[i]];
        }
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    run.msgs_per_sec = static_cast<double>(messages) / elapsed;
    return run;
}

}  // namespace

int main() {
    const Setup setup = make_setup();
    const int repeats = 25;

    // ---- Study 1: durability tax on a crash-free run ------------------
    std::printf(
        "TAB-RECOVER: crash-recovery layer cost "
        "(cs:3:9, d=%zu, %zu msgs x %d runs)\n\n",
        setup.decomposition->size(), setup.script.num_messages(), repeats);
    std::printf("durability tax (no crashes):\n");
    std::printf("%16s %12s %12s %10s %10s\n", "config", "msgs/s",
                "wal_appends", "flushes", "snapshots");
    SynchronizerOptions off;
    off.latency_lo = 1;
    off.latency_hi = 8;
    const Run baseline = run_protocol(setup, off, repeats, nullptr);
    std::printf("%16s %12.0f %12s %10s %10s\n", "off",
                baseline.msgs_per_sec, "-", "-", "-");
    for (const std::uint64_t flush : {1ull, 4ull, 16ull}) {
        obs::MetricsRegistry metrics;
        SynchronizerOptions on = off;
        on.recovery.enabled = true;
        on.recovery.wal_flush_interval = flush;
        on.recovery.window = 8 + flush;
        const Run run = run_protocol(setup, on, repeats, &metrics);
        std::printf("%13s=%2llu %12.0f %12llu %10llu %10llu %s\n",
                    "wal-flush", static_cast<unsigned long long>(flush),
                    run.msgs_per_sec,
                    static_cast<unsigned long long>(
                        metrics.counter("recover_wal_appends").value()),
                    static_cast<unsigned long long>(
                        metrics.counter("recover_wal_flushes").value()),
                    static_cast<unsigned long long>(
                        metrics.counter("recover_snapshots").value()),
                    run.exact ? "" : "INEXACT");
    }

    // ---- Study 2: crash/rejoin cost -----------------------------------
    std::printf("\ncrash/rejoin cost (wal-flush=2, snap-every=8):\n");
    std::printf("%10s %12s %10s %10s %10s %10s %8s\n", "crashes", "msgs/s",
                "restarts", "replayed", "recommits", "hellos", "exact");
    for (const std::size_t crashes :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        obs::MetricsRegistry metrics;
        SynchronizerOptions options = off;
        options.recovery.enabled = true;
        options.recovery.wal_flush_interval = 2;
        options.recovery.snapshot_interval = 8;
        options.recovery.window = 8;
        for (std::size_t c = 0; c < crashes; ++c) {
            // Deterministic spread over the processes and the busy range.
            options.faults.crashes.push_back(
                CrashRule{static_cast<ProcessId>(c % 4), 3 + 5 * c, 40});
        }
        const Run run = run_protocol(setup, options, repeats, &metrics);
        std::printf("%10zu %12.0f %10llu %10llu %10llu %10llu %8s\n",
                    crashes, run.msgs_per_sec,
                    static_cast<unsigned long long>(
                        metrics.counter("recover_restarts").value()),
                    static_cast<unsigned long long>(
                        metrics.counter("recover_replayed_records").value()),
                    static_cast<unsigned long long>(
                        metrics.counter("recover_recommits").value()),
                    static_cast<unsigned long long>(
                        metrics.counter("recover_hellos").value()),
                    run.exact ? "yes" : "NO");
    }

    // ---- Study 3: codec microbench ------------------------------------
    WalRecord record;
    record.type = WalRecordType::commit;
    record.lsn = 1;
    record.peer = 2;
    record.sequence = 7;
    record.message = 19;
    record.epoch = 1;
    record.frame.assign(40, 0x5A);
    record.aux.assign(40, 0xA5);
    Snapshot snapshot;
    snapshot.state.self = 1;
    snapshot.state.epoch = 1;
    snapshot.state.clock.assign(12, 31);
    for (ProcessId peer = 0; peer < 6; ++peer) {
        snapshot.state.out.push_back({peer, 9, FrameWindow(8)});
        snapshot.state.in.push_back({peer, 9, FrameWindow(8)});
    }
    snapshot.wal_lsn = 64;

    constexpr std::size_t kCodecIters = 200'000;
    std::vector<std::uint8_t> bytes;
    const auto time_codec = [&](auto&& body) {
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < kCodecIters; ++i) body();
        return static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count()) /
               static_cast<double>(kCodecIters);
    };
    const double wal_ns = time_codec([&] {
        bytes.clear();  // the record writer appends (log semantics)
        encode_wal_record_into(record, bytes);
        record.sequence = decode_wal_record(bytes).sequence;
    });
    const double snap_ns = time_codec([&] {
        bytes.clear();
        encode_snapshot_into(snapshot, bytes);
        snapshot.wal_lsn = decode_snapshot(bytes).wal_lsn;
    });
    std::printf(
        "\ncodec round-trips (%zu iters): wal record %.0f ns, "
        "snapshot %.0f ns\n",
        kCodecIters, wal_ns, snap_ns);

    // Machine-readable summary: one crash-laden instrumented run whose
    // result line carries the recover_* counter snapshot.
    obs::MetricsRegistry registry;
    SynchronizerOptions json_options = off;
    json_options.seed = 1;
    json_options.faults.seed = 7919;
    json_options.recovery.wal_flush_interval = 2;
    json_options.recovery.snapshot_interval = 8;
    json_options.faults.crashes.push_back(CrashRule{1, 4, 40});
    json_options.faults.crashes.push_back(CrashRule{2, 9, 40});
    json_options.metrics = &registry;
    const std::size_t allocs_before = bench::allocations();
    const auto start = std::chrono::steady_clock::now();
    (void)run_rendezvous_protocol(setup.decomposition, setup.script,
                                  json_options);
    const auto stop = std::chrono::steady_clock::now();
    bench::emit_json_with_metrics(
        "recover", setup.script.num_messages(),
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
            static_cast<double>(setup.script.num_messages()),
        bench::allocations() - allocs_before, registry);
    return 0;
}
