// Experiment TAB-RT — the threaded rendezvous runtime (the CSP /
// synchronous-RPC system the paper targets).
//
// Client-server workload over real threads with Fig. 5 piggybacking:
// messages per second, per-message piggyback bytes for the paper's clock
// (d components) vs what an FM piggyback would cost (N components), while
// the client count grows and d stays fixed at the server count.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "clocks/wire.hpp"
#include "core/causality.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "runtime/network.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

namespace {

struct Result {
    double msgs_per_sec;
    std::size_t messages;
    std::size_t width;
    double mean_piggyback_bytes;  // actual varint wire size of the stamps
    bool exact;
};

Result run_client_server(std::size_t servers, std::size_t clients,
                         int rounds, bool verify) {
    const SyncSystem system(topology::client_server(servers, clients));
    TimestampedNetwork network = system.make_network();
    std::vector<ProcessProgram> programs(servers + clients);
    const int per_server =
        static_cast<int>(clients) * rounds / static_cast<int>(servers);
    for (std::size_t s = 0; s < servers; ++s) {
        programs[s] = [per_server](ProcessContext& context) {
            for (int i = 0; i < per_server; ++i) {
                const ReceivedMessage request = context.receive();
                context.send(request.sender, "ok");
            }
        };
    }
    for (std::size_t c = 0; c < clients; ++c) {
        const auto client = static_cast<ProcessId>(servers + c);
        programs[client] = [rounds, servers](ProcessContext& context) {
            for (int i = 0; i < rounds; ++i) {
                const auto server = static_cast<ProcessId>(
                    static_cast<std::size_t>(i) % servers);
                context.send(server, "req");
                context.receive_from(server);
            }
        };
    }
    const auto start = std::chrono::steady_clock::now();
    const RunRecord record = network.run(programs);
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    bool exact = true;
    if (verify) {
        exact = encoding_mismatches(message_poset(record.computation),
                                    record.message_stamps) == 0;
    }
    std::size_t wire_bytes = 0;
    for (const VectorTimestamp& stamp : record.message_stamps) {
        wire_bytes += encoded_size(stamp);
    }
    return {static_cast<double>(record.messages.size()) / elapsed,
            record.messages.size(), system.width(),
            static_cast<double>(wire_bytes) /
                static_cast<double>(record.messages.size()),
            exact};
}

}  // namespace

int main() {
    std::printf("== TAB-RT: threaded rendezvous runtime ==\n\n");
    std::printf("%8s %8s %9s %8s %12s %12s %12s %8s\n", "servers", "clients",
                "messages", "d", "msgs/sec", "wire B/msg", "FM words",
                "encoding");
    struct Config {
        std::size_t servers;
        std::size_t clients;
        int rounds;
        bool verify;
    };
    for (const Config config :
         {Config{2, 4, 60, true}, Config{2, 16, 60, true},
          Config{4, 16, 60, true}, Config{4, 64, 40, false},
          Config{4, 256, 16, false}, Config{8, 256, 16, false}}) {
        // rounds must be divisible by servers for the uniform server loop.
        const int rounds =
            config.rounds - config.rounds % static_cast<int>(config.servers);
        const Result result = run_client_server(config.servers,
                                                config.clients, rounds,
                                                config.verify);
        const std::size_t n = config.servers + config.clients;
        std::printf("%8zu %8zu %9zu %8zu %12.0f %12.1f %12zu %8s\n",
                    config.servers, config.clients, result.messages,
                    result.width, result.msgs_per_sec,
                    result.mean_piggyback_bytes, n,
                    result.exact ? "exact" : "FAIL");
    }
    std::printf(
        "\nshape check: d == server count at every scale, so the paper's "
        "piggyback stays constant while the FM piggyback grows with N; "
        "throughput is bounded by rendezvous synchronization, not by "
        "timestamp width.\n");

    // Machine-readable summary for tools/bench_to_json.sh. Threaded runs
    // allocate per rendezvous by design (mailbox queues, payload strings);
    // the column records that honestly rather than claiming zero.
    const std::size_t allocs_before = bench::allocations();
    const auto start = std::chrono::steady_clock::now();
    const Result json_run = run_client_server(4, 16, 60, false);
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count()) /
        static_cast<double>(json_run.messages);
    bench::emit_json("runtime", json_run.messages, ns,
                     bench::allocations() - allocs_before);
    return 0;
}
