// Experiment TAB-PROFILE — what the causal profiler and the flight
// recorder cost, and what they find.
//
// Three studies (docs/PROFILING.md):
//   1. Observer tax: the same crash-free workload across instrumentation
//      configs. The acceptance gate is that enabling the profiler +
//      flight recorder on the standard observability baseline
//      (trace + metrics) costs under 5% throughput — the profiler
//      itself is offline, so the online increment is the recorder's
//      event mirror and per-step tick.
//   2. Extraction cost: build_profile() over the captured trace — the
//      offline analysis is not on the protocol's critical path, but its
//      cost per event bounds how often a dashboard can refresh.
//   3. Black-box dump: one crash-laden run with the recorder armed —
//      SYFR encode size and round-trip decode cost.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "obs/causal_profiler.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/synchronizer.hpp"
#include "trace/generator.hpp"

using namespace syncts;

namespace {

struct Setup {
    SyncComputation script;
    std::shared_ptr<const EdgeDecomposition> decomposition;
};

Setup make_setup() {
    const Graph topology = topology::client_server(3, 9);
    Rng rng(20260808);
    WorkloadOptions workload;
    workload.num_messages = 400;
    return Setup{.script = random_computation(topology, workload, rng),
                 .decomposition = std::make_shared<const EdgeDecomposition>(
                     default_decomposition(topology))};
}

double run_protocol(const Setup& setup, SynchronizerOptions options,
                    int repeats) {
    std::uint64_t messages = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int repeat = 1; repeat <= repeats; ++repeat) {
        options.seed = static_cast<std::uint64_t>(repeat);
        options.faults.seed = static_cast<std::uint64_t>(repeat) * 7919;
        const SynchronizerResult result =
            run_rendezvous_protocol(setup.decomposition, setup.script,
                                    options);
        messages += result.message_stamps.size();
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return static_cast<double>(messages) / elapsed;
}

}  // namespace

int main() {
    const Setup setup = make_setup();
    const int repeats = 20;
    const int rounds = 16;

    // ---- Study 1: observer tax ----------------------------------------
    std::printf(
        "TAB-PROFILE: causal profiler + flight recorder cost "
        "(cs:3:9, d=%zu, %zu msgs, median of %d x %d-run rounds)\n\n",
        setup.decomposition->size(), setup.script.num_messages(), rounds,
        repeats);
    SynchronizerOptions off;
    off.latency_lo = 1;
    off.latency_hi = 8;
    // One warm-up pass so the first measured config does not pay the
    // allocator's cold start.
    (void)run_protocol(setup, off, 2);

    // The host's available throughput drifts by double-digit percent
    // over a benchmark's lifetime, far above the effect measured here.
    // So: pair the configs inside short interleaved rounds, take each
    // round's overhead ratio (drift is near-constant within a round and
    // cancels in the ratio), and report the median across rounds.
    obs::TraceSink sink(1 << 16);
    obs::MetricsRegistry metrics;
    obs::FlightRecorder recorder(4096, 64);
    SynchronizerOptions with_metrics = off;
    with_metrics.metrics = &metrics;
    SynchronizerOptions traced = off;
    traced.trace = &sink;
    // The observability baseline every instrumented run already pays
    // (docs/OBSERVABILITY.md): metrics registry + trace capture. The
    // full config enables this PR's online machinery on top — the
    // flight recorder's event mirror and per-step tick. The profiler
    // itself is offline (study 2), so the recorder increment *is* the
    // profiler+recorder hot-path cost.
    SynchronizerOptions observed = off;
    observed.metrics = &metrics;
    observed.trace = &sink;
    SynchronizerOptions full = observed;
    full.recorder = &recorder;
    std::vector<std::array<double, 5>> rate(rounds);
    for (int round = 0; round < rounds; ++round) {
        rate[round][0] = run_protocol(setup, off, repeats);
        rate[round][1] = run_protocol(setup, with_metrics, repeats);
        rate[round][2] = run_protocol(setup, traced, repeats);
        rate[round][3] = run_protocol(setup, observed, repeats);
        sink.clear();
        rate[round][4] = run_protocol(setup, full, repeats);
    }
    const auto median_ratio = [&](int num, int den) {
        std::vector<double> r(rate.size());
        for (std::size_t i = 0; i < rate.size(); ++i) {
            r[i] = rate[i][num] / rate[i][den];
        }
        std::sort(r.begin(), r.end());
        return r[r.size() / 2];
    };
    const auto median_rate = [&](int config) {
        std::vector<double> r(rate.size());
        for (std::size_t i = 0; i < rate.size(); ++i) r[i] = rate[i][config];
        std::sort(r.begin(), r.end());
        return r[r.size() / 2];
    };
    const double baseline = median_rate(0);
    const double metrics_only = median_rate(1);
    const double with_trace = median_rate(2);
    const double observed_rate = median_rate(3);
    const double with_all = median_rate(4);
    // The gate is on what *this* layer adds: profiler + recorder on top
    // of an otherwise-identical observability-instrumented run.
    const double overhead_pct = (median_ratio(3, 4) - 1.0) * 100.0;

    std::printf("observer tax (no crashes):\n");
    std::printf("%22s %12s %10s\n", "config", "msgs/s", "vs off");
    std::printf("%22s %12.0f %9s%%\n", "off", baseline, "-");
    std::printf("%22s %12.0f %9.1f%%\n", "metrics", metrics_only,
                (median_ratio(0, 1) - 1.0) * 100.0);
    std::printf("%22s %12.0f %9.1f%%\n", "trace", with_trace,
                (median_ratio(0, 2) - 1.0) * 100.0);
    std::printf("%22s %12.0f %9.1f%%\n", "trace+metrics", observed_rate,
                (median_ratio(0, 3) - 1.0) * 100.0);
    std::printf("%22s %12.0f %9.1f%%\n", "trace+metrics+recorder", with_all,
                (median_ratio(0, 4) - 1.0) * 100.0);
    std::printf("profiler+recorder increment over trace+metrics: %.1f%%\n",
                overhead_pct);

    // ---- Study 2: extraction cost -------------------------------------
    const std::vector<obs::TraceEvent> events = sink.events();
    constexpr int kProfileIters = 50;
    obs::Profile profile;
    const auto profile_start = std::chrono::steady_clock::now();
    for (int i = 0; i < kProfileIters; ++i) {
        profile = obs::build_profile(
            events, setup.decomposition->graph().num_vertices());
    }
    const double profile_ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - profile_start)
                .count()) /
        static_cast<double>(kProfileIters) /
        static_cast<double>(events.empty() ? 1 : events.size());
    std::printf(
        "\nprofile extraction: %zu events, %.0f ns/event, "
        "critical path %zu msgs (span %llu of %llu, slack %llu)\n",
        events.size(), profile_ns, profile.critical_path.size(),
        static_cast<unsigned long long>(profile.critical_span),
        static_cast<unsigned long long>(profile.span),
        static_cast<unsigned long long>(profile.critical_slack));

    // ---- Study 3: black-box dump --------------------------------------
    obs::MetricsRegistry crash_metrics;
    obs::FlightRecorder black_box(4096, 64);
    SynchronizerOptions crashy = off;
    crashy.seed = 1;
    crashy.faults.seed = 7919;
    crashy.recovery.wal_flush_interval = 2;
    crashy.recovery.snapshot_interval = 8;
    crashy.faults.crashes.push_back(CrashRule{1, 4, 40});
    crashy.metrics = &crash_metrics;
    crashy.recorder = &black_box;
    (void)run_rendezvous_protocol(setup.decomposition, setup.script, crashy);
    const std::vector<std::uint8_t>& dump = black_box.last_dump();
    constexpr int kDecodeIters = 2000;
    const auto decode_start = std::chrono::steady_clock::now();
    std::uint64_t decoded_events = 0;
    for (int i = 0; i < kDecodeIters; ++i) {
        decoded_events = obs::decode_postmortem(dump).events.size();
    }
    const double decode_us =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - decode_start)
                .count()) /
        1e3 / static_cast<double>(kDecodeIters);
    std::printf(
        "flight dump: %zu bytes, %llu events, decode %.1f us "
        "(%llu dumps this run)\n",
        dump.size(), static_cast<unsigned long long>(decoded_events),
        decode_us, static_cast<unsigned long long>(black_box.dumps()));

    // Machine-readable summary: one instrumented run timed end to end,
    // with the observer tax carried as profiler_overhead_pct.
    obs::MetricsRegistry json_metrics;
    obs::FlightRecorder json_recorder(4096, 64);
    obs::TraceSink json_sink(1 << 16);
    SynchronizerOptions json_options = off;
    json_options.seed = 1;
    json_options.metrics = &json_metrics;
    json_options.trace = &json_sink;
    json_options.recorder = &json_recorder;
    const std::size_t allocs_before = bench::allocations();
    const auto start = std::chrono::steady_clock::now();
    (void)run_rendezvous_protocol(setup.decomposition, setup.script,
                                  json_options);
    const auto stop = std::chrono::steady_clock::now();
    const double ns_per_msg =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        static_cast<double>(setup.script.num_messages());
    std::string out;
    out += "{\"bench\":\"profile\",\"n\":" +
           std::to_string(setup.script.num_messages());
    char number[32];
    std::snprintf(number, sizeof(number), "%.1f", ns_per_msg);
    out += ",\"ns_per_msg\":";
    out += number;
    out += ",\"allocs\":" +
           std::to_string(bench::allocations() - allocs_before);
    out += ",\"threads\":1,\"epochs\":1";
    std::snprintf(number, sizeof(number), "%.2f", overhead_pct);
    out += ",\"profiler_overhead_pct\":";
    out += number;
    out += ",\"metrics\":";
    json_metrics.write_json(out);
    out += "}\n";
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
}
