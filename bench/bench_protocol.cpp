// Experiment TAB-PROTOCOL — what the batched wire path buys.
//
// The classic rendezvous profile is 2 packets per message, each carrying
// a full d-component vector. The batched path (docs/PROTOCOL.md) attacks
// both factors: ACK coalescing rides acknowledgements on the next
// outbound packet to the same peer (v4 batch containers), and delta
// encoding (v3) ships only the components that moved since the channel's
// last frame. This bench sweeps the option stacks over a wide
// decomposition with per-channel bursty traffic — the workload shape the
// extensions are built for — and reports bytes per message *including a
// nominal 28-byte per-packet transport overhead* (IPv4 20 + UDP 8: the
// cost a real deployment pays per packet, which batching amortizes),
// packets per message, the batch factor (frames per wire packet), and
// rendezvous throughput. Every run is verified bit-identical to the
// direct Fig. 5 simulator. A final row repeats the full stack on a lossy
// network: resyncs cost bytes but correctness and most of the savings
// survive.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "clocks/online_clock.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "runtime/synchronizer.hpp"

using namespace syncts;

namespace {

/// Nominal per-packet transport overhead: IPv4 (20) + UDP (8) headers.
constexpr double kPacketOverheadBytes = 28.0;

struct Row {
    const char* name;
    double bytes_per_msg;    // payload + 28B/packet overhead
    double payload_per_msg;  // frame/container bytes only
    double packets_per_msg;
    double batch_factor;  // frames per wire packet
    double msgs_per_sec;
    std::uint64_t acks_coalesced;
    std::uint64_t delta_frames;
    std::uint64_t delta_resyncs;
    bool exact;
};

/// Per-channel bursts in both directions: each edge exchanges `burst`
/// alternating messages, so a receiver's pending ACK can ride its own
/// next REQ back to the sender (the coalescing win) and consecutive
/// frames on a channel differ in only a few components (the delta win).
/// Uniform random traffic has neither property — deltas break even there
/// because most of a wide vector moves between two visits to a channel.
SyncComputation bursty_workload(const Graph& topology, std::size_t burst) {
    SyncComputation script(topology);
    for (const Edge& edge : topology.edges()) {
        for (std::size_t k = 0; k < burst; ++k) {
            if (k % 2 == 0) {
                script.add_message(edge.u, edge.v);
            } else {
                script.add_message(edge.v, edge.u);
            }
        }
    }
    return script;
}

Row run_stack(const char* name, const SyncComputation& script,
              const std::vector<VectorTimestamp>& expected,
              std::shared_ptr<const EdgeDecomposition> decomposition,
              const ProtocolOptions& protocol, double drop, int repeats) {
    Row row{.name = name,
            .bytes_per_msg = 0,
            .payload_per_msg = 0,
            .packets_per_msg = 0,
            .batch_factor = 0,
            .msgs_per_sec = 0,
            .acks_coalesced = 0,
            .delta_frames = 0,
            .delta_resyncs = 0,
            .exact = true};
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    std::uint64_t frames = 0;
    std::uint64_t messages = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int repeat = 1; repeat <= repeats; ++repeat) {
        SynchronizerOptions options;
        options.seed = static_cast<std::uint64_t>(repeat);
        options.latency_lo = 1;
        options.latency_hi = 4;
        options.protocol = protocol;
        options.faults.seed = static_cast<std::uint64_t>(repeat) * 6271;
        options.faults.drop_probability = drop;
        const SynchronizerResult result =
            run_rendezvous_protocol(decomposition, script, options);
        bytes += result.protocol.bytes_sent;
        packets += result.protocol.wire_packets;
        frames += result.protocol.delta_frames + result.protocol.full_frames;
        messages += result.message_stamps.size();
        row.acks_coalesced += result.protocol.acks_coalesced;
        row.delta_frames += result.protocol.delta_frames;
        row.delta_resyncs += result.protocol.delta_resyncs;
        for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
            row.exact = row.exact && result.message_stamps[i] ==
                                         expected[result.script_message[i]];
        }
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double m = static_cast<double>(messages);
    row.payload_per_msg = static_cast<double>(bytes) / m;
    row.packets_per_msg = static_cast<double>(packets) / m;
    row.bytes_per_msg =
        row.payload_per_msg + kPacketOverheadBytes * row.packets_per_msg;
    row.batch_factor =
        static_cast<double>(frames) / static_cast<double>(packets);
    row.msgs_per_sec = m / elapsed;
    return row;
}

void emit_protocol_json(const Row& row, std::size_t messages,
                        double baseline_ns_per_msg) {
    // Canonical bench_to_json.sh shape plus the two protocol columns;
    // ns_per_msg is derived from the row's own throughput so the merged
    // table stays comparable across stacks.
    (void)baseline_ns_per_msg;
    std::printf("{\"bench\":\"protocol_%s\",\"n\":%zu,\"ns_per_msg\":%.1f,"
                "\"allocs\":%zu,\"threads\":1,\"epochs\":1,"
                "\"bytes_per_msg\":%.1f,\"batch_factor\":%.2f}\n",
                row.name, messages, 1e9 / row.msgs_per_sec,
                static_cast<std::size_t>(0), row.bytes_per_msg,
                row.batch_factor);
}

}  // namespace

int main() {
    const Graph topology = topology::grid(16, 16);
    const SyncComputation script = bursty_workload(topology, 32);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);

    std::printf(
        "TAB-PROTOCOL: batched wire path vs the classic profile "
        "(grid 16x16, d=%zu, %zu msgs x 3 runs, +%g B/packet overhead)\n",
        decomposition->size(), script.num_messages(), kPacketOverheadBytes);

    ProtocolOptions baseline;  // all off: classic 2-packets-per-message
    ProtocolOptions batched;
    batched.batching = true;
    batched.coalesce_acks = true;
    ProtocolOptions delta_only;
    delta_only.delta = true;
    ProtocolOptions full;
    full.batching = true;
    full.coalesce_acks = true;
    full.delta = true;

    const int repeats = 3;
    std::vector<Row> rows;
    rows.push_back(run_stack("baseline", script, expected, decomposition,
                             baseline, 0.0, repeats));
    rows.push_back(run_stack("batch", script, expected, decomposition,
                             batched, 0.0, repeats));
    rows.push_back(run_stack("delta", script, expected, decomposition,
                             delta_only, 0.0, repeats));
    rows.push_back(run_stack("full", script, expected, decomposition, full,
                             0.0, repeats));
    rows.push_back(run_stack("full_lossy", script, expected, decomposition,
                             full, 0.05, repeats));

    std::printf("%12s %11s %13s %10s %12s %10s %10s %8s %8s\n", "stack",
                "bytes/msg", "payload/msg", "pkts/msg", "batchfactor",
                "msgs/s", "coalesced", "resyncs", "exact");
    for (const Row& row : rows) {
        std::printf("%12s %11.1f %13.1f %10.3f %11.2fx %10.0f %10llu %8llu "
                    "%8s\n",
                    row.name, row.bytes_per_msg, row.payload_per_msg,
                    row.packets_per_msg, row.batch_factor, row.msgs_per_sec,
                    static_cast<unsigned long long>(row.acks_coalesced),
                    static_cast<unsigned long long>(row.delta_resyncs),
                    row.exact ? "yes" : "NO");
    }
    const double reduction =
        rows[0].bytes_per_msg / rows[3].bytes_per_msg;
    std::printf(
        "\nfull stack: %.2fx fewer bytes/msg than the classic profile\n"
        "(every row verified bit-identical to the direct Fig. 5 simulator;\n"
        " the lossy row pays full-vector resyncs for every shadow break)\n",
        reduction);

    for (const Row& row : rows) {
        emit_protocol_json(row, script.num_messages(), 0.0);
    }
    bool ok = reduction >= 3.0;
    for (const Row& row : rows) ok = ok && row.exact;
    if (!ok) {
        std::printf("FAIL: reduction %.2fx below 3x or inexact stamps\n",
                    reduction);
        return 1;
    }
    return 0;
}
