// Experiment TAB-EVT — Section 5 internal-event timestamps vs the FM
// event-clock baseline.
//
// Storage: the paper's tuple costs 2d+2 words per internal event
// (prev + succ vectors of width d, counter, process id); FM event clocks
// cost N words. With d << N the tuple wins despite holding two vectors.
// Correctness: both characterize happened-before exactly (verified).

#include <cstdio>

#include "bench_json.hpp"
#include "clocks/event_timestamp.hpp"
#include "clocks/fm_event_clock.hpp"
#include "clocks/online_clock.hpp"
#include "common/rng.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

namespace {

void study(const char* family, const Graph& g, std::uint64_t seed,
           bool verify) {
    Rng rng(seed);
    WorkloadOptions options;
    options.num_messages = 120;
    options.internal_rate = 1.0;
    const SyncComputation c = random_computation(g, options, rng);

    const SyncSystem system{Graph(g)};
    auto timestamper = system.make_timestamper();
    const auto message_stamps = timestamper.timestamp_computation(c);
    const auto tuples =
        timestamp_internal_events(c, message_stamps, system.width());
    const FmEventTimestamps fm = fm_event_timestamps(c);

    const std::size_t n = g.num_vertices();
    const std::size_t d = system.width();
    const std::size_t tuple_words = 2 * d + 2;
    const std::size_t fm_words = n;

    std::size_t tuple_errors = 0;
    if (verify) {
        const Poset truth = event_poset(c);
        for (InternalId e = 0; e < c.num_internal_events(); ++e) {
            for (InternalId f = 0; f < c.num_internal_events(); ++f) {
                if (e == f) continue;
                const bool expected = truth.less(internal_element(c, e),
                                                 internal_element(c, f));
                if (happened_before(tuples[e], tuples[f]) != expected) {
                    ++tuple_errors;
                }
                if (fm.internal_stamps[e].less(fm.internal_stamps[f]) !=
                    expected) {
                    ++tuple_errors;
                }
            }
        }
    }
    std::printf("%-20s %6zu %6zu %7zu %11zu %10zu %7.2fx %9s\n", family, n, d,
                c.num_internal_events(), tuple_words, fm_words,
                static_cast<double>(fm_words) /
                    static_cast<double>(tuple_words),
                verify ? (tuple_errors == 0 ? "exact" : "FAIL") : "-");
}

}  // namespace

int main() {
    std::printf(
        "== TAB-EVT: Section 5 event tuples vs FM event clocks ==\n\n");
    std::printf("%-20s %6s %6s %7s %11s %10s %7s %9s\n", "family", "N", "d",
                "events", "tuple words", "FM words", "FM/tup", "encoding");

    Rng seeds(6006);
    study("star", topology::star(32), seeds(), true);
    study("star", topology::star(256), seeds(), false);
    study("client-server k=3", topology::client_server(3, 29), seeds(), true);
    study("client-server k=3", topology::client_server(3, 125), seeds(),
          false);
    study("kary-tree k=4", topology::kary_tree(64, 4), seeds(), true);
    study("ring", topology::ring(24), seeds(), true);
    study("complete (worst)", topology::complete(12), seeds(), true);

    std::printf(
        "\nshape check: both schemes are exact; the tuple's 2d+2 words "
        "beat FM's N whenever d < (N-2)/2 — all families above except the "
        "complete-graph worst case.\n");

    // Machine-readable summary for tools/bench_to_json.sh.
    Rng json_rng(6116);
    WorkloadOptions options;
    options.num_messages = 120;
    options.internal_rate = 1.0;
    const Graph g = topology::star(32);
    const SyncComputation c = random_computation(g, options, json_rng);
    const SyncSystem system{Graph(g)};
    auto timestamper = system.make_timestamper();
    const auto message_stamps = timestamper.timestamp_computation(c);
    bench::measure_and_emit("events", c.num_internal_events(), [&] {
        (void)timestamp_internal_events(c, message_stamps, system.width());
    });
    return 0;
}
