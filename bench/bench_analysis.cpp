// Experiment TAB-PAR — the parallel analysis engine.
//
// The offline analyses (ground-truth transitive closure, the O(M²)
// encoding verification, repeated precedence queries) are the only parts
// of the reproduction whose cost grows faster than the trace; this bench
// measures what the work-stealing pool buys them. Each study runs the
// same workload twice:
//   serial   — AnalysisOptions{} (the pre-pool code path)
//   parallel — the analyses sharded across a Pool at the machine's width
// and reports wall ms for both plus the speedup. Determinism contract:
// both legs must produce identical posets and identical mismatch counts
// (checked here), so the speedup column is the only difference.
//
// A third section hammers PrecedenceIndex with K queries drawn from a
// small pair pool, so repeats dominate: the memo turns the O(width)
// compare into a hash probe, and the hit-rate column shows the memo
// doing the work.
//
// A fourth section (TAB-STREAM, docs/STREAMING.md) covers the
// out-of-core refactor: it first proves the frontier-retiring
// StreamingClosure bit-identical to the batch closure at bench scale,
// then drives a procedurally generated trace (no materialized
// SyncComputation, so the only resident state is the streaming stack
// itself) through IncrementalPrecedenceIndex and gates on a flat RSS
// plateau — if memory grows past the warmed-up plateau the bench exits
// nonzero, which is the regression tripwire CI's streaming-soak job
// leans on. Its JSON row carries two extra columns, "resident_mb" and
// "stream_msgs_per_sec".
//
// Usage: bench_analysis [messages] [threads] [stream_msgs] [budget_mb]
//   messages     workload size per study (default 20000)
//   threads      pool width for the parallel leg (default: hardware)
//   stream_msgs  streamed-ingestion row size (default 2000000; the
//                10M-trace acceptance run passes 10000000)
//   budget_mb    absolute peak-RSS budget for the streamed row, on top
//                of the always-on plateau-flatness gate (0 = plateau
//                gate only, the default — sanitized builds inflate RSS)
//
// On a 1-core host the parallel leg still runs through the pool's
// chunked path with a single participant, so the speedup column reads
// ~1.0x — the point there is the determinism check, not the scaling.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_json.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "core/causality.hpp"
#include "core/precedence_index.hpp"
#include "core/streaming_index.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "poset/streaming_closure.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

namespace {

void study(const char* family, const Graph& g, std::size_t messages,
           std::uint64_t seed, Pool& pool) {
    Rng rng(seed);
    WorkloadOptions workload;
    workload.num_messages = messages;
    const SyncComputation c = random_computation(g, workload, rng);
    const SyncSystem system{Graph(g)};
    const TimestampedTrace trace = system.analyze(c);

    AnalysisOptions parallel;
    parallel.pool = &pool;
    parallel.threads = pool.threads();

    // Untimed warm-up closure: faulting in ~2·M²/8 bytes of bitset pages
    // dominates a cold first run, and the allocator hands the warmed
    // pages to both timed legs once this Poset dies.
    { const Poset warmup = message_poset(c); (void)warmup.size(); }

    // Closure: serial leg, then the level-synchronous blocked leg.
    std::size_t serial_relations = 0;
    const double closure_serial_ns = bench::measure_and_emit(
        "analysis_closure", messages,
        [&] { serial_relations = message_poset(c).relation_count(); }, 1);
    std::size_t parallel_relations = 0;
    Poset truth(0);
    const double closure_parallel_ns = bench::measure_and_emit(
        "analysis_closure", messages,
        [&] {
            truth = message_poset(c, parallel);
            parallel_relations = truth.relation_count();
        },
        pool.threads());

    // Verification: the O(M²) Theorem 4 sweep over the same closed poset.
    std::size_t serial_mismatches = 0;
    const double verify_serial_ns = bench::measure_and_emit(
        "analysis_verify", messages,
        [&] {
            serial_mismatches = encoding_mismatches(truth, trace.stamps());
        },
        1);
    std::size_t parallel_mismatches = 0;
    const double verify_parallel_ns = bench::measure_and_emit(
        "analysis_verify", messages,
        [&] {
            parallel_mismatches =
                encoding_mismatches(truth, trace.stamps(), parallel);
        },
        pool.threads());

    const bool identical = serial_relations == parallel_relations &&
                           serial_mismatches == parallel_mismatches;
    const double ms = static_cast<double>(messages) / 1e6;
    std::printf("%-18s %6zu %2zu %9.1f %9.1f %7.2fx %9.1f %9.1f %7.2fx %s\n",
                family, messages, pool.threads(), closure_serial_ns * ms,
                closure_parallel_ns * ms,
                closure_serial_ns / closure_parallel_ns, verify_serial_ns * ms,
                verify_parallel_ns * ms, verify_serial_ns / verify_parallel_ns,
                identical ? (serial_mismatches == 0 ? "exact" : "FAIL")
                          : "DIVERGED");
}

void query_study(const Graph& g, std::size_t messages, std::size_t queries,
                 std::uint64_t seed) {
    Rng rng(seed);
    WorkloadOptions workload;
    workload.num_messages = messages;
    const SyncComputation c = random_computation(g, workload, rng);
    const SyncSystem system{Graph(g)};
    const TimestampedTrace trace = system.analyze(c);
    const PrecedenceIndex index = system.make_precedence_index(trace);

    // A pool of queries/4 distinct pairs hit `queries` times: monitoring
    // workloads revisit hot pairs, so ~75% of lookups should memo-hit.
    const std::size_t distinct = queries / 4 == 0 ? 1 : queries / 4;
    std::vector<std::pair<MessageId, MessageId>> pairs;
    pairs.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) {
        pairs.emplace_back(static_cast<MessageId>(rng.below(messages)),
                           static_cast<MessageId>(rng.below(messages)));
    }
    std::size_t yes = 0;
    const double ns = bench::measure_and_emit("analysis_queries", queries,
                                              [&] {
                                                  for (std::size_t q = 0;
                                                       q < queries; ++q) {
                                                      const auto& [m1, m2] =
                                                          pairs[q % distinct];
                                                      yes += index.precedes(
                                                                 m1, m2)
                                                                 ? 1u
                                                                 : 0u;
                                                  }
                                              });
    const std::uint64_t lookups = index.memo_hits() + index.memo_misses();
    std::printf(
        "\nqueries: %zu lookups (%zu distinct pairs)  %0.1f ns/query  "
        "memo hit-rate %.1f%%  (%zu precede)\n",
        queries, distinct, ns,
        lookups == 0 ? 0.0
                     : 100.0 * static_cast<double>(index.memo_hits()) /
                           static_cast<double>(lookups),
        yes);
}

// Current resident set in MB, read from /proc/self/status (Linux).
// Returns 0.0 where the file is absent so the gate degrades to a no-op
// rather than a false failure on exotic hosts.
double read_rss_mb() {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return 0.0;
    char line[256];
    double mb = 0.0;
    while (std::fgets(line, sizeof line, f) != nullptr) {
        if (std::strncmp(line, "VmRSS:", 6) == 0) {
            mb = std::strtod(line + 6, nullptr) / 1024.0;
            break;
        }
    }
    std::fclose(f);
    return mb;
}

// Leg 1 of TAB-STREAM: the frontier-retiring closure must agree with
// the batch closure bit-for-bit — same relation count, same answer on a
// sample of precedence queries. chunk_rows is deliberately tiny so the
// equivalence run crosses many retired chunks.
bool streaming_equivalence(const Graph& g, std::size_t messages,
                           std::uint64_t seed) {
    Rng rng(seed);
    WorkloadOptions workload;
    workload.num_messages = messages;
    const SyncComputation c = random_computation(g, workload, rng);
    const Poset truth = message_poset(c);

    StreamingClosureOptions options;
    options.chunk_rows = 512;
    StreamingClosure closure(g.num_vertices(), messages, options);
    const double ns = bench::measure_and_emit(
        "analysis_stream_closure", messages, [&] {
            for (const SyncMessage& m : c.messages()) {
                closure.ingest(m.sender, m.receiver);
            }
            closure.finish();
        });

    bool identical = closure.relation_count() == truth.relation_count();
    Rng probes(seed ^ 0x57AE);
    for (std::size_t q = 0; q < 4096 && identical; ++q) {
        const auto a = static_cast<MessageId>(probes.below(messages));
        const auto b = static_cast<MessageId>(probes.below(messages));
        identical = closure.less(a, b) == truth.less(a, b);
    }
    std::printf("\nstreamed closure: %zu msgs  %0.1f ms  %llu relations  %s\n",
                messages, ns * static_cast<double>(messages) / 1e6,
                static_cast<unsigned long long>(closure.relation_count()),
                identical ? "exact" : "DIVERGED");
    return identical;
}

// Leg 2 of TAB-STREAM: the flat-RSS streamed-ingestion row. Events are
// generated procedurally — nothing O(stream_msgs) is ever materialized,
// so any RSS growth is the streaming stack leaking residency. The gate:
// after a warm-up tenth of the run the window is full and RSS must
// plateau; peak RSS past that point may exceed the plateau only by an
// allocator-jitter allowance (10% + 48MB — a leak at 10M messages is
// ~1.3GB, two orders of magnitude above it). A nonzero budget_mb adds
// an absolute ceiling on top.
bool streaming_row(const Graph& g, std::size_t stream_msgs,
                   std::size_t budget_mb) {
    const SyncSystem system{Graph(g)};
    StreamingIndexOptions options;
    const std::size_t width = g.num_vertices();
    if (budget_mb > 0) {
        // Spend at most half the budget on resident stamps.
        const std::size_t stamp_bytes = width * 8;
        const std::size_t slots = budget_mb * 1024 * 1024 / 2 / stamp_bytes;
        options.window = std::max<std::size_t>(1024, slots);
    }
    IncrementalPrecedenceIndex index(system, options);

    const std::size_t num_procs = g.num_vertices();
    Rng rng(0x5757EA11);
    const std::size_t warmup = stream_msgs / 10 + 1;
    const std::size_t sample_every = stream_msgs / 64 + 1;
    double plateau_mb = 0.0;
    double peak_mb = 0.0;
    std::uint64_t probe_hits = 0;

    const std::size_t allocs_before = bench::allocations();
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < stream_msgs; ++i) {
        const auto sender = static_cast<ProcessId>(rng.below(num_procs));
        const auto receiver = static_cast<ProcessId>(
            (sender + 1 + rng.below(num_procs - 1)) % num_procs);
        const MessageId id = index.ingest_message(sender, receiver);
        if ((i & 4095u) == 0 && i > 0) {
            // Keep the query path hot: probe two resident pairs.
            const std::uint64_t lo = index.resident_frontier();
            const auto a = static_cast<MessageId>(
                lo + rng.below(static_cast<std::uint64_t>(id) - lo + 1));
            probe_hits += index.precedes(a, id) ? 1u : 0u;
            probe_hits += index.precedes(id, a) ? 1u : 0u;
        }
        if (i == warmup) plateau_mb = read_rss_mb();
        if (i > warmup && i % sample_every == 0) {
            peak_mb = std::max(peak_mb, read_rss_mb());
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    const std::size_t allocs = bench::allocations() - allocs_before;
    peak_mb = std::max(peak_mb, read_rss_mb());

    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    const double ns_per_msg =
        seconds * 1e9 / static_cast<double>(stream_msgs);
    const double msgs_per_sec =
        static_cast<double>(stream_msgs) / (seconds > 0 ? seconds : 1e-9);

    const double allowance = plateau_mb * 0.10 + 48.0;
    const bool flat = plateau_mb == 0.0 || peak_mb <= plateau_mb + allowance;
    const bool under_budget =
        budget_mb == 0 || peak_mb <= static_cast<double>(budget_mb);

    std::printf("\n== TAB-STREAM: streamed ingestion (window %zu stamps) "
                "==\n\n",
                options.window);
    std::printf("streamed: %zu msgs  %0.1f ns/msg  %0.2f Mmsg/s  "
                "(%llu probes precede)\n",
                stream_msgs, ns_per_msg, msgs_per_sec / 1e6,
                static_cast<unsigned long long>(probe_hits));
    std::printf("rss: plateau %.1f MB  peak %.1f MB  %s%s\n", plateau_mb,
                peak_mb, flat ? "flat" : "GREW",
                budget_mb == 0 ? ""
                               : (under_budget ? " (under budget)"
                                               : " (OVER BUDGET)"));
    // The canonical JSON shape plus the two streaming columns
    // tools/bench_to_json.sh back-fills for the other benches.
    std::printf("{\"bench\":\"analysis_stream\",\"n\":%zu,"
                "\"ns_per_msg\":%.1f,\"allocs\":%zu,\"threads\":1,"
                "\"epochs\":1,\"resident_mb\":%.1f,"
                "\"stream_msgs_per_sec\":%.0f}\n",
                stream_msgs, ns_per_msg, allocs, peak_mb, msgs_per_sec);
    return flat && under_budget;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t messages = 20000;
    std::size_t threads = Pool::resolve_threads(0);
    std::size_t stream_msgs = 2000000;
    std::size_t budget_mb = 0;
    if (argc > 1) messages = std::strtoull(argv[1], nullptr, 10);
    if (argc > 2) threads = std::strtoull(argv[2], nullptr, 10);
    if (argc > 3) stream_msgs = std::strtoull(argv[3], nullptr, 10);
    if (argc > 4) budget_mb = std::strtoull(argv[4], nullptr, 10);
    if (messages == 0 || threads == 0 || stream_msgs == 0) {
        std::fprintf(stderr, "usage: bench_analysis [messages] [threads] "
                             "[stream_msgs] [budget_mb]\n");
        return 2;
    }
    Pool pool(threads);

    std::printf("== TAB-PAR: parallel closure + verification (%zu threads) "
                "==\n\n",
                pool.threads());
    std::printf("%-18s %6s %2s %9s %9s %7s %9s %9s %7s %s\n", "family", "msgs",
                "T", "close ms", "close ms", "speedup", "verify ms",
                "verify ms", "speedup", "check");
    std::printf("%-18s %6s %2s %9s %9s %7s %9s %9s %7s\n", "", "", "",
                "(1T)", "(pool)", "", "(1T)", "(pool)", "");

    Rng seeds(20002);
    study("complete", topology::complete(16), messages, seeds(), pool);
    study("tri8", topology::disjoint_triangles(8), messages, seeds(), pool);

    query_study(topology::complete(16), messages, messages * 10, seeds());

    const bool stream_exact =
        streaming_equivalence(topology::complete(16), messages, seeds());
    const bool stream_flat =
        streaming_row(topology::complete(16), stream_msgs, budget_mb);

    std::printf(
        "\nshape check: the check column must read 'exact' on every row —\n"
        "serial and pooled legs must agree bit-for-bit on the closed poset\n"
        "and on the mismatch count (the determinism contract in\n"
        "docs/PARALLELISM.md), and the Theorem 4 sweep must find 0\n"
        "mismatches. Speedups approach the thread count on multi-core\n"
        "hosts once M clears ~20k messages; on 1 core both legs measure\n"
        "the same code path modulo pool overhead. The TAB-STREAM rows\n"
        "must read 'exact' and 'flat': the frontier-retiring closure is\n"
        "bit-identical to the batch one, and streamed ingestion holds a\n"
        "flat RSS plateau (docs/STREAMING.md) — any growth or budget\n"
        "overrun makes this binary exit nonzero.\n");
    return (stream_exact && stream_flat) ? 0 : 1;
}
