// Experiment TAB-PAR — the parallel analysis engine.
//
// The offline analyses (ground-truth transitive closure, the O(M²)
// encoding verification, repeated precedence queries) are the only parts
// of the reproduction whose cost grows faster than the trace; this bench
// measures what the work-stealing pool buys them. Each study runs the
// same workload twice:
//   serial   — AnalysisOptions{} (the pre-pool code path)
//   parallel — the analyses sharded across a Pool at the machine's width
// and reports wall ms for both plus the speedup. Determinism contract:
// both legs must produce identical posets and identical mismatch counts
// (checked here), so the speedup column is the only difference.
//
// A third section hammers PrecedenceIndex with K queries drawn from a
// small pair pool, so repeats dominate: the memo turns the O(width)
// compare into a hash probe, and the hit-rate column shows the memo
// doing the work.
//
// Usage: bench_analysis [messages] [threads]
//   messages  workload size per study (default 20000)
//   threads   pool width for the parallel leg (default: hardware)
//
// On a 1-core host the parallel leg still runs through the pool's
// chunked path with a single participant, so the speedup column reads
// ~1.0x — the point there is the determinism check, not the scaling.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_json.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "core/causality.hpp"
#include "core/precedence_index.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

namespace {

void study(const char* family, const Graph& g, std::size_t messages,
           std::uint64_t seed, Pool& pool) {
    Rng rng(seed);
    WorkloadOptions workload;
    workload.num_messages = messages;
    const SyncComputation c = random_computation(g, workload, rng);
    const SyncSystem system{Graph(g)};
    const TimestampedTrace trace = system.analyze(c);

    AnalysisOptions parallel;
    parallel.pool = &pool;
    parallel.threads = pool.threads();

    // Untimed warm-up closure: faulting in ~2·M²/8 bytes of bitset pages
    // dominates a cold first run, and the allocator hands the warmed
    // pages to both timed legs once this Poset dies.
    { const Poset warmup = message_poset(c); (void)warmup.size(); }

    // Closure: serial leg, then the level-synchronous blocked leg.
    std::size_t serial_relations = 0;
    const double closure_serial_ns = bench::measure_and_emit(
        "analysis_closure", messages,
        [&] { serial_relations = message_poset(c).relation_count(); }, 1);
    std::size_t parallel_relations = 0;
    Poset truth(0);
    const double closure_parallel_ns = bench::measure_and_emit(
        "analysis_closure", messages,
        [&] {
            truth = message_poset(c, parallel);
            parallel_relations = truth.relation_count();
        },
        pool.threads());

    // Verification: the O(M²) Theorem 4 sweep over the same closed poset.
    std::size_t serial_mismatches = 0;
    const double verify_serial_ns = bench::measure_and_emit(
        "analysis_verify", messages,
        [&] {
            serial_mismatches = encoding_mismatches(truth, trace.stamps());
        },
        1);
    std::size_t parallel_mismatches = 0;
    const double verify_parallel_ns = bench::measure_and_emit(
        "analysis_verify", messages,
        [&] {
            parallel_mismatches =
                encoding_mismatches(truth, trace.stamps(), parallel);
        },
        pool.threads());

    const bool identical = serial_relations == parallel_relations &&
                           serial_mismatches == parallel_mismatches;
    const double ms = static_cast<double>(messages) / 1e6;
    std::printf("%-18s %6zu %2zu %9.1f %9.1f %7.2fx %9.1f %9.1f %7.2fx %s\n",
                family, messages, pool.threads(), closure_serial_ns * ms,
                closure_parallel_ns * ms,
                closure_serial_ns / closure_parallel_ns, verify_serial_ns * ms,
                verify_parallel_ns * ms, verify_serial_ns / verify_parallel_ns,
                identical ? (serial_mismatches == 0 ? "exact" : "FAIL")
                          : "DIVERGED");
}

void query_study(const Graph& g, std::size_t messages, std::size_t queries,
                 std::uint64_t seed) {
    Rng rng(seed);
    WorkloadOptions workload;
    workload.num_messages = messages;
    const SyncComputation c = random_computation(g, workload, rng);
    const SyncSystem system{Graph(g)};
    const TimestampedTrace trace = system.analyze(c);
    const PrecedenceIndex index = system.make_precedence_index(trace);

    // A pool of queries/4 distinct pairs hit `queries` times: monitoring
    // workloads revisit hot pairs, so ~75% of lookups should memo-hit.
    const std::size_t distinct = queries / 4 == 0 ? 1 : queries / 4;
    std::vector<std::pair<MessageId, MessageId>> pairs;
    pairs.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) {
        pairs.emplace_back(static_cast<MessageId>(rng.below(messages)),
                           static_cast<MessageId>(rng.below(messages)));
    }
    std::size_t yes = 0;
    const double ns = bench::measure_and_emit("analysis_queries", queries,
                                              [&] {
                                                  for (std::size_t q = 0;
                                                       q < queries; ++q) {
                                                      const auto& [m1, m2] =
                                                          pairs[q % distinct];
                                                      yes += index.precedes(
                                                                 m1, m2)
                                                                 ? 1u
                                                                 : 0u;
                                                  }
                                              });
    const std::uint64_t lookups = index.memo_hits() + index.memo_misses();
    std::printf(
        "\nqueries: %zu lookups (%zu distinct pairs)  %0.1f ns/query  "
        "memo hit-rate %.1f%%  (%zu precede)\n",
        queries, distinct, ns,
        lookups == 0 ? 0.0
                     : 100.0 * static_cast<double>(index.memo_hits()) /
                           static_cast<double>(lookups),
        yes);
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t messages = 20000;
    std::size_t threads = Pool::resolve_threads(0);
    if (argc > 1) messages = std::strtoull(argv[1], nullptr, 10);
    if (argc > 2) threads = std::strtoull(argv[2], nullptr, 10);
    if (messages == 0 || threads == 0) {
        std::fprintf(stderr, "usage: bench_analysis [messages] [threads]\n");
        return 2;
    }
    Pool pool(threads);

    std::printf("== TAB-PAR: parallel closure + verification (%zu threads) "
                "==\n\n",
                pool.threads());
    std::printf("%-18s %6s %2s %9s %9s %7s %9s %9s %7s %s\n", "family", "msgs",
                "T", "close ms", "close ms", "speedup", "verify ms",
                "verify ms", "speedup", "check");
    std::printf("%-18s %6s %2s %9s %9s %7s %9s %9s %7s\n", "", "", "",
                "(1T)", "(pool)", "", "(1T)", "(pool)", "");

    Rng seeds(20002);
    study("complete", topology::complete(16), messages, seeds(), pool);
    study("tri8", topology::disjoint_triangles(8), messages, seeds(), pool);

    query_study(topology::complete(16), messages, messages * 10, seeds());

    std::printf(
        "\nshape check: the check column must read 'exact' on every row —\n"
        "serial and pooled legs must agree bit-for-bit on the closed poset\n"
        "and on the mismatch count (the determinism contract in\n"
        "docs/PARALLELISM.md), and the Theorem 4 sweep must find 0\n"
        "mismatches. Speedups approach the thread count on multi-core\n"
        "hosts once M clears ~20k messages; on 1 core both legs measure\n"
        "the same code path modulo pool overhead.\n");
    return 0;
}
