// Experiment TAB-SIZE — timestamp width across topology families.
//
// The paper's headline size claims (Sections 1 and 3.3):
//   star / triangle            -> 1 component (an integer suffices)
//   client-server, k servers   -> k components regardless of client count
//   trees                      -> number of hubs, independent of N when
//                                 the shape is fixed
//   complete graphs            -> N-2 (the worst case)
//   in general                 -> min(beta(G), N-2), vs FM's N always.

#include <cstdio>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_cover.hpp"

using namespace syncts;

namespace {

void row(const char* family, std::size_t n, const Graph& g) {
    const SyncSystem system{Graph(g)};
    const std::size_t beta_approx = approx_vertex_cover(g).size();
    std::printf("%-22s %8zu %8zu %8zu %10zu %8.2fx\n", family, n,
                system.width(), beta_approx, n,
                static_cast<double>(n) /
                    static_cast<double>(system.width() ? system.width() : 1));
}

}  // namespace

int main() {
    std::printf("== TAB-SIZE: timestamp width by topology family ==\n\n");
    std::printf("%-22s %8s %8s %8s %10s %8s\n", "family", "N", "d",
                "2approxVC", "FM width", "FM/d");

    Rng rng(3003);
    for (std::size_t n : {8u, 32u, 128u, 512u}) {
        row("star", n, topology::star(n));
    }
    row("triangle", 3, topology::triangle());
    for (std::size_t clients : {8u, 32u, 128u, 512u}) {
        row("client-server k=4", 4 + clients,
            topology::client_server(4, clients));
    }
    for (std::size_t n : {16u, 64u, 256u}) {
        row("kary-tree k=4", n, topology::kary_tree(n, 4));
    }
    for (std::size_t n : {16u, 64u, 256u}) {
        row("random-tree", n, topology::random_tree(n, rng));
    }
    for (std::size_t n : {8u, 16u, 32u, 64u}) {
        row("complete", n, topology::complete(n));
    }
    for (std::size_t n : {16u, 64u, 256u}) {
        row("ring", n, topology::ring(n));
    }
    for (std::size_t n : {16u, 64u}) {
        row("gnp p=0.1", n, topology::random_gnp(n, 0.1, rng));
    }
    for (std::size_t n : {16u, 64u}) {
        row("grid 4-wide", n, topology::grid(4, n / 4));
    }

    std::printf(
        "\nshape check: star/triangle d=1; client-server d=4 at every "
        "client count; complete d=N-2; FM/d grows with N everywhere "
        "except the complete-graph worst case.\n");

    // Machine-readable summary for tools/bench_to_json.sh.
    const Graph big = topology::client_server(4, 512);
    bench::measure_and_emit("size_table", big.num_edges(), [&] {
        const SyncSystem system{Graph(big)};
        (void)system.width();
    });
    return 0;
}
