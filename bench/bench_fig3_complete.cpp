// Experiment FIG3 — edge decompositions of complete graphs (Fig. 3).
//
// The paper shows two decompositions of K5: (a) 2 stars + 1 triangle
// (3 groups = N−2) and (b) 4 stars (N−1). We print both for K5 verbatim,
// then sweep K_n and report the trivial N−2 decomposition, the greedy
// Fig. 7 result, and the pure-star (vertex-cover) result — complete graphs
// are the worst case for the method, and the paper's claim is that even
// there N−2 components suffice.

#include <cstdio>

#include "bench_json.hpp"
#include "decomp/cover_decomposer.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_cover.hpp"

using namespace syncts;

int main() {
    std::printf("== FIG3: decompositions of complete graphs ==\n\n");

    const Graph k5 = topology::complete(5);
    std::printf("K5 decomposition (a), 2 stars + 1 triangle:\n  %s\n",
                trivial_complete_decomposition(k5).to_string().c_str());
    const EdgeDecomposition stars =
        decomposition_from_cover(k5, std::vector<ProcessId>{0, 1, 2, 3});
    std::printf("K5 decomposition (b), 4 stars:\n  %s\n\n",
                stars.to_string().c_str());

    std::printf("%6s %10s %10s %12s %12s %10s\n", "N", "edges", "trivial",
                "greedy", "star-only", "FM width");
    for (std::size_t n = 3; n <= 128; n = n < 16 ? n + 1 : n * 2) {
        const Graph g = topology::complete(n);
        const auto trivial = trivial_complete_decomposition(g);
        const auto greedy = greedy_edge_decomposition(g);
        const auto star_only = approx_cover_decomposition(g);
        std::printf("%6zu %10zu %10zu %12zu %12zu %10zu\n", n, g.num_edges(),
                    trivial.size(), greedy.size(), star_only.size(), n);
        if (trivial.size() != n - 2) {
            std::printf("  ^ FAIL: expected N-2 = %zu\n", n - 2);
        }
    }
    std::printf(
        "\nshape check: trivial = N-2 always; greedy = N-2 (odd N) or N-1 "
        "(even N); every variant beats FM's N by at least 1-2 components.\n");

    // Machine-readable summary for tools/bench_to_json.sh.
    const Graph k64 = topology::complete(64);
    bench::measure_and_emit("fig3_complete", k64.num_edges(), [&] {
        (void)greedy_edge_decomposition(k64);
    });
    return 0;
}
