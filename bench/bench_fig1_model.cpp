// Experiment FIG1 — the paper's running example (Fig. 1).
//
// Reproduces the 4-process synchronous computation and checks every order
// fact the paper states about it: m1 ‖ m2, m1 ▷ m3, m2 ↦ m6, m3 ↦ m5, and
// a synchronous chain of size 4 from m1 to m5. Prints the computation, the
// full order matrix from ground truth, and the same matrix as recovered
// from the online algorithm's timestamps.

#include <cstdio>

#include "bench_json.hpp"
#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

namespace {

char order_char(const Poset& p, std::size_t a, std::size_t b) {
    if (a == b) return '=';
    if (p.less(a, b)) return '<';
    if (p.less(b, a)) return '>';
    return '|';
}

char stamp_order_char(const TimestampedTrace& t, MessageId a, MessageId b) {
    if (a == b) return '=';
    if (t.precedes(a, b)) return '<';
    if (t.precedes(b, a)) return '>';
    return '|';
}

}  // namespace

int main() {
    std::printf("== FIG1: the paper's running example ==\n\n");
    const SyncComputation c = paper_fig1_computation();
    std::printf("%s\n", c.to_string().c_str());

    const Poset truth = message_poset(c);
    const SyncSystem system(c.topology());
    const TimestampedTrace trace = system.analyze(c);

    std::printf("timestamp width d = %zu (FM baseline would use N = %zu)\n\n",
                system.width(), system.num_processes());

    std::printf("order matrix (ground truth | from timestamps):\n      ");
    for (MessageId m = 0; m < c.num_messages(); ++m) {
        std::printf("  m%u", m + 1);
    }
    std::printf("\n");
    bool all_match = true;
    for (MessageId a = 0; a < c.num_messages(); ++a) {
        std::printf("  m%u  ", a + 1);
        for (MessageId b = 0; b < c.num_messages(); ++b) {
            const char t = order_char(truth, a, b);
            const char s = stamp_order_char(trace, a, b);
            if (t != s) all_match = false;
            std::printf(" %c|%c", t, s);
        }
        std::printf("\n");
    }

    std::printf("\npaper facts:\n");
    std::printf("  m1 || m2            : %s\n",
                truth.incomparable(0, 1) ? "ok" : "FAIL");
    std::printf("  m1 -> m3 (direct)   : %s\n",
                truth.less(0, 2) ? "ok" : "FAIL");
    std::printf("  m2 |-> m6           : %s\n",
                truth.less(1, 5) ? "ok" : "FAIL");
    std::printf("  m3 |-> m5           : %s\n",
                truth.less(2, 4) ? "ok" : "FAIL");
    const bool chain =
        truth.less(0, 2) && truth.less(2, 3) && truth.less(3, 4);
    std::printf("  chain m1->m3->m4->m5 (size 4): %s\n", chain ? "ok" : "FAIL");
    std::printf("  timestamps encode poset exactly: %s (%zu mismatches)\n",
                trace.verify_against_ground_truth() == 0 ? "ok" : "FAIL",
                trace.verify_against_ground_truth());
    std::printf("  matrices agree: %s\n", all_match ? "ok" : "FAIL");

    std::printf("\ntimestamps:\n%s", trace.to_string().c_str());

    // Machine-readable summary for tools/bench_to_json.sh.
    constexpr std::size_t kReps = 1000;
    bench::measure_and_emit("fig1_model", kReps * c.num_messages(), [&] {
        for (std::size_t i = 0; i < kReps; ++i) {
            (void)system.analyze(c);
        }
    });
    return 0;
}
