// Experiment TAB-FAULTS — synchronizer throughput and wire overhead on a
// lossy network.
//
// The rendezvous protocol costs exactly 2 packets per message on a
// reliable network; under loss it pays retransmissions (and their
// duplicates' dedup work). This bench sweeps drop rates 0%, 1%, 5%, 20%
// and reports messages/second of wall time, delivered packets per
// message (retransmit amplification vs. the lossless 2/message
// baseline), and the protocol's recovery counters — the observable price
// of fault tolerance.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "clocks/online_clock.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "runtime/synchronizer.hpp"
#include "trace/generator.hpp"

using namespace syncts;

namespace {

struct Row {
    double drop;
    double msgs_per_sec;
    double packets_per_msg;
    double amplification;
    std::uint64_t retransmits;
    std::uint64_t dup_drops;
    std::uint64_t corrupt_rejects;
    bool exact;
};

Row run_at_drop_rate(const SyncComputation& script,
                     const std::vector<VectorTimestamp>& expected,
                     std::shared_ptr<const EdgeDecomposition> decomposition,
                     double drop, int repeats) {
    Row row{.drop = drop,
            .msgs_per_sec = 0,
            .packets_per_msg = 0,
            .amplification = 0,
            .retransmits = 0,
            .dup_drops = 0,
            .corrupt_rejects = 0,
            .exact = true};
    std::uint64_t packets = 0;
    std::uint64_t messages = 0;
    // One registry across the sweep: the sync_* counters accumulate, so
    // reading them at the end gives the row aggregate.
    obs::MetricsRegistry metrics;
    const auto start = std::chrono::steady_clock::now();
    for (int repeat = 1; repeat <= repeats; ++repeat) {
        SynchronizerOptions options;
        options.seed = static_cast<std::uint64_t>(repeat);
        options.latency_lo = 1;
        options.latency_hi = 8;
        options.faults.seed = static_cast<std::uint64_t>(repeat) * 7919;
        options.faults.drop_probability = drop;
        options.metrics = &metrics;
        const SynchronizerResult result =
            run_rendezvous_protocol(decomposition, script, options);
        packets += result.packets;
        messages += result.message_stamps.size();
        for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
            row.exact = row.exact && result.message_stamps[i] ==
                                         expected[result.script_message[i]];
        }
    }
    row.retransmits = metrics.counter("sync_retransmits").value();
    // The historical dup_drops aggregation: suppressed duplicates plus
    // cached-ACK replays (the registry counters are non-overlapping).
    row.dup_drops = metrics.counter("sync_req_duplicates").value() +
                    metrics.counter("sync_ack_duplicates").value() +
                    metrics.counter("sync_ack_replays").value();
    row.corrupt_rejects =
        metrics.counter("sync_frames_corrupt_rejected").value();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    row.msgs_per_sec = static_cast<double>(messages) / elapsed;
    row.packets_per_msg =
        static_cast<double>(packets) / static_cast<double>(messages);
    row.amplification = row.packets_per_msg / 2.0;
    return row;
}

}  // namespace

int main() {
    const Graph topology = topology::client_server(3, 9);
    Rng rng(20260806);
    WorkloadOptions workload;
    workload.num_messages = 400;
    const SyncComputation script =
        random_computation(topology, workload, rng);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);

    std::printf(
        "TAB-FAULTS: rendezvous protocol vs drop rate "
        "(cs:3:9, d=%zu, %zu msgs x 25 runs)\n",
        decomposition->size(), script.num_messages());
    std::printf(
        "%7s %12s %12s %14s %12s %10s %8s\n", "drop", "msgs/s", "pkts/msg",
        "amplification", "retransmits", "dup_drops", "exact");
    for (const double drop : {0.00, 0.01, 0.05, 0.20}) {
        const Row row =
            run_at_drop_rate(script, expected, decomposition, drop, 25);
        std::printf("%6.0f%% %12.0f %12.3f %13.3fx %12llu %10llu %8s\n",
                    row.drop * 100.0, row.msgs_per_sec, row.packets_per_msg,
                    row.amplification,
                    static_cast<unsigned long long>(row.retransmits),
                    static_cast<unsigned long long>(row.dup_drops),
                    row.exact ? "yes" : "NO");
    }
    std::printf(
        "\n(lossless baseline is exactly 2 packets/message; amplification\n"
        " is delivered packets over that baseline. 'exact' checks every\n"
        " realized timestamp against the direct Fig. 5 simulator.)\n");

    // Machine-readable summary for tools/bench_to_json.sh: one lossy
    // instrumented protocol run whose result line carries the full
    // sync_*/net_* counter snapshot.
    obs::MetricsRegistry registry;
    SynchronizerOptions json_options;
    json_options.seed = 1;
    json_options.latency_lo = 1;
    json_options.latency_hi = 8;
    json_options.faults.drop_probability = 0.05;
    json_options.metrics = &registry;
    const std::size_t allocs_before = bench::allocations();
    const auto start = std::chrono::steady_clock::now();
    (void)run_rendezvous_protocol(decomposition, script, json_options);
    const auto stop = std::chrono::steady_clock::now();
    bench::emit_json_with_metrics(
        "faults", script.num_messages(),
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
            static_cast<double>(script.num_messages()),
        bench::allocations() - allocs_before, registry);
    return 0;
}
