// Experiment FIG6 — sample execution of the online algorithm (Fig. 6).
//
// Reproduces the paper's worked example on a fully-connected 5-process
// system with decomposition E1 = star@P1, E2 = star@P2, E3 = triangle
// (P3,P4,P5): the message from P2 to P3 must be stamped (1,1,1) from local
// vectors (1,0,0) and (0,0,1). Prints every message's timestamp, the
// concurrency structure, and the offline width (the paper notes 2
// dimensions suffice offline for this computation).

#include <cstdio>
#include <memory>

#include "bench_json.hpp"
#include "clocks/offline_timestamper.hpp"
#include "clocks/online_clock.hpp"
#include "core/causality.hpp"
#include "decomp/cover_decomposer.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

int main() {
    std::printf("== FIG6: online algorithm sample run ==\n\n");

    auto decomposition = std::make_shared<const EdgeDecomposition>(
        trivial_complete_decomposition(paper_fig6_topology()));
    std::printf("decomposition (d = %zu): %s\n\n", decomposition->size(),
                decomposition->to_string().c_str());

    const SyncComputation c = paper_fig6_computation();
    OnlineTimestamper timestamper(decomposition);
    const auto stamps = timestamper.timestamp_computation(c);

    for (MessageId m = 0; m < c.num_messages(); ++m) {
        const SyncMessage& msg = c.message(m);
        std::printf("  m%u: P%u -> P%u  group E%u  v = %s\n", m + 1,
                    msg.sender + 1, msg.receiver + 1,
                    decomposition->group_of(msg.sender, msg.receiver) + 1,
                    stamps[m].to_string().c_str());
    }

    const bool headline =
        stamps[2] == VectorTimestamp(std::vector<std::uint64_t>{1, 1, 1});
    std::printf("\npaper's worked value: v(P2->P3) = (1,1,1): %s\n",
                headline ? "ok" : "FAIL");

    const Poset truth = message_poset(c);
    std::printf("timestamps encode poset exactly: %s\n",
                encoding_mismatches(truth, stamps) == 0 ? "ok" : "FAIL");

    const OfflineResult offline = offline_timestamps(c);
    std::printf(
        "offline width for this computation: %zu (paper: 2-dimensional "
        "vectors suffice): %s\n",
        offline.width, offline.width == 2 ? "ok" : "FAIL");
    std::printf("offline stamps:");
    for (const auto& v : offline.timestamps) {
        std::printf(" %s", v.to_string().c_str());
    }
    std::printf("\n");

    // Machine-readable summary for tools/bench_to_json.sh.
    constexpr std::size_t kReps = 1000;
    bench::measure_and_emit("fig6_online", kReps * c.num_messages(), [&] {
        for (std::size_t i = 0; i < kReps; ++i) {
            OnlineTimestamper fresh(decomposition);
            (void)fresh.timestamp_computation(c);
        }
    });
    return 0;
}
