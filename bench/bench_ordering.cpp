// Experiment TAB-ORD — how special are synchronous computations?
//
// The paper's method applies exactly to the RSC class (realizable with
// synchronous communication) of Charron-Bost, Mattern & Tel. This bench
// samples random asynchronous executions at varying delivery eagerness
// and reports how many land in each class of the hierarchy
// FIFO ⊇ causal ⊇ RSC — quantifying both how restrictive the synchronous
// assumption is for arbitrary traffic and how completely an eager
// (rendezvous-like) delivery discipline restores it.

#include <cstdio>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "trace/ordering_classes.hpp"

using namespace syncts;

int main() {
    std::printf("== TAB-ORD: ordering-class census of random executions ==\n\n");
    std::printf("%-14s %10s %8s %8s %8s %8s\n", "topology", "bias", "runs",
                "FIFO%", "causal%", "RSC%");
    Rng rng(11011);
    constexpr int kRuns = 200;
    for (const Graph& g :
         {topology::complete(6), topology::ring(8),
          topology::client_server(2, 6)}) {
        const char* name = g.num_edges() == 15   ? "K6"
                           : g.num_edges() == 8  ? "ring8"
                                                 : "cs(2,6)";
        for (const double bias : {0.3, 0.6, 0.9, 1.0}) {
            int fifo = 0;
            int causal = 0;
            int rsc = 0;
            for (int run = 0; run < kRuns; ++run) {
                const AsyncComputation c =
                    random_async_computation(g, 15, bias, rng);
                const OrderingClasses classes = classify_ordering(c);
                fifo += classes.fifo ? 1 : 0;
                causal += classes.causally_ordered ? 1 : 0;
                rsc += classes.rsc ? 1 : 0;
            }
            std::printf("%-14s %10.1f %8d %7d%% %7d%% %7d%%\n", name, bias,
                        kRuns, 100 * fifo / kRuns, 100 * causal / kRuns,
                        100 * rsc / kRuns);
        }
    }
    std::printf(
        "\nshape check: the hierarchy never inverts (RSC%% <= causal%% <= "
        "FIFO%%); eager delivery (bias 1.0) is always RSC — the regime the "
        "paper's rendezvous runtime enforces by construction.\n");

    // Machine-readable summary for tools/bench_to_json.sh.
    const Graph k6 = topology::complete(6);
    bench::measure_and_emit("ordering", kRuns, [&] {
        for (int run = 0; run < kRuns; ++run) {
            (void)classify_ordering(
                random_async_computation(k6, 15, 0.9, rng));
        }
    });
    return 0;
}
