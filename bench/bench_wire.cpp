// Experiment TAB-WIRE — actual wire bytes per message across the
// Section 6 design space.
//
// Four piggyback schemes over identical workloads:
//   paper    — Fig. 5 vectors of width d, varint-encoded (message + ack)
//   fm-full  — FM-sync vectors of width N, varint-encoded (message + ack)
//   fm-diff  — Singhal–Kshemkalyani differential updates (message + ack)
//   direct   — Fowler–Zwaenepoel: nothing on the wire beyond the message
//              itself (dependencies recorded locally; queries pay instead)
// The paper's scheme is the only one that is simultaneously small,
// constant-size, query-cheap and exact.

#include <cstdio>

#include "bench_json.hpp"
#include "clocks/direct_dependency.hpp"
#include "clocks/fm_differential.hpp"
#include "clocks/fm_sync_clock.hpp"
#include "clocks/wire.hpp"
#include "common/rng.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "trace/generator.hpp"

using namespace syncts;

namespace {

void study(const char* family, const Graph& g, std::uint64_t seed) {
    Rng rng(seed);
    WorkloadOptions options;
    options.num_messages = 500;
    const SyncComputation c = random_computation(g, options, rng);
    const SyncSystem system{Graph(g)};

    auto paper = system.make_timestamper();
    FmSyncTimestamper fm(c.num_processes());
    FmDifferentialTimestamper diff(c.num_processes());
    std::size_t paper_bytes = 0;
    std::size_t fm_bytes = 0;
    for (const SyncMessage& m : c.messages()) {
        paper_bytes +=
            2 * encoded_size(paper.timestamp_message(m.sender, m.receiver));
        fm_bytes +=
            2 * encoded_size(fm.timestamp_message(m.sender, m.receiver));
    }
    diff.timestamp_computation(c);

    const double messages = static_cast<double>(c.num_messages());
    std::printf("%-20s %5zu %5zu %10.1f %10.1f %10.1f %10s\n", family,
                g.num_vertices(), system.width(),
                static_cast<double>(paper_bytes) / messages,
                static_cast<double>(fm_bytes) / messages,
                diff.stats().mean_bytes_per_message(), "0.0");
}

}  // namespace

int main() {
    std::printf("== TAB-WIRE: piggyback bytes per message ==\n\n");
    std::printf("%-20s %5s %5s %10s %10s %10s %10s\n", "family", "N", "d",
                "paper", "fm-full", "fm-diff", "direct");
    Rng seeds(8008);
    study("star", topology::star(32), seeds());
    study("star", topology::star(128), seeds());
    study("client-server k=3", topology::client_server(3, 13), seeds());
    study("client-server k=3", topology::client_server(3, 61), seeds());
    study("client-server k=8", topology::client_server(8, 120), seeds());
    study("kary-tree k=4", topology::kary_tree(64, 4), seeds());
    study("ring", topology::ring(32), seeds());
    study("complete (worst)", topology::complete(16), seeds());
    std::printf(
        "\nshape check: paper bytes track d (constant for star /\n"
        "client-server as N grows); fm-full tracks N; fm-diff sits between\n"
        "(helps only when channels repeat back-to-back); direct ships\n"
        "nothing but gives up O(d) queries (see bench_precedence).\n");

    // Machine-readable summary for tools/bench_to_json.sh: the span
    // encode/decode round trip on the steady-state (buffer-reusing) path.
    Rng json_rng(8228);
    WorkloadOptions options;
    options.num_messages = 500;
    const Graph g = topology::client_server(3, 61);
    const SyncComputation c = random_computation(g, options, json_rng);
    const SyncSystem system{Graph(g)};
    auto paper = system.make_timestamper();
    std::vector<VectorTimestamp> stamps;
    stamps.reserve(c.num_messages());
    for (const SyncMessage& m : c.messages()) {
        stamps.push_back(paper.timestamp_message(m.sender, m.receiver));
    }
    std::vector<std::uint8_t> encoded;
    std::vector<std::uint64_t> decoded(system.width());
    bench::measure_and_emit("wire", c.num_messages(), [&] {
        for (const VectorTimestamp& stamp : stamps) {
            encode_timestamp_into(stamp.components(), encoded);
            decode_timestamp_into(encoded, decoded);
        }
    });
    return 0;
}
