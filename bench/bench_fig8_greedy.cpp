// Experiment FIG8 — the greedy decomposition algorithm in action (Fig. 8),
// plus a measured approximation-ratio study (Theorem 6 only proves the
// worst case; here we measure the distribution against the exact optimum).
//
// The trace on the reconstructed Fig. 2(b) topology must follow the
// paper's narration: step 1 emits a pendant star, step 2 the triangle
// (e,f,g), step 3 two stars around the heaviest edge, and the loop's
// second pass emits the leftover edge (j,k) — 4 stars + 1 triangle, which
// equals the optimal decomposition of Fig. 8(f).

#include <cstdio>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "decomp/exact_decomposer.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/generators.hpp"

using namespace syncts;

namespace {

const char* vertex_name(ProcessId v) {
    static const char* names[] = {"a", "b", "c", "d", "e", "f",
                                  "g", "h", "i", "j", "k"};
    return v < 11 ? names[v] : "?";
}

}  // namespace

int main() {
    std::printf("== FIG8: greedy algorithm sample run on Fig. 2(b) ==\n\n");

    std::vector<GreedyTraceEntry> trace;
    const Graph g = topology::paper_fig2b();
    const auto d = greedy_edge_decomposition_traced(g, trace);

    for (const GreedyTraceEntry& entry : trace) {
        const EdgeGroup& group = d.group(entry.group);
        std::printf("  [%s] witness (%s,%s) -> ", to_string(entry.step),
                    vertex_name(entry.witness.u),
                    vertex_name(entry.witness.v));
        if (group.kind == GroupKind::star) {
            std::printf("star rooted at %s {", vertex_name(group.root));
        } else {
            std::printf("triangle (%s,%s,%s) {",
                        vertex_name(group.triangle.corners[0]),
                        vertex_name(group.triangle.corners[1]),
                        vertex_name(group.triangle.corners[2]));
        }
        for (std::size_t i = 0; i < group.edges.size(); ++i) {
            std::printf("%s(%s,%s)", i ? "," : "",
                        vertex_name(group.edges[i].u),
                        vertex_name(group.edges[i].v));
        }
        std::printf("}\n");
    }
    std::printf("\ngreedy: %zu groups (%zu stars + %zu triangles)\n", d.size(),
                d.star_count(), d.triangle_count());
    const auto exact = exact_edge_decomposition(g);
    std::printf("optimal (Fig. 8(f)): %zu groups — greedy %s optimal here\n",
                exact ? exact->size() : 0,
                exact && exact->size() == d.size() ? "matches" : "misses");

    std::printf("\n== measured approximation ratio vs exact optimum ==\n");
    std::printf("%14s %8s %10s %10s %10s %10s\n", "family", "trials",
                "mean-ratio", "max-ratio", "greedy=opt", "bound");
    Rng rng(88);
    struct Family {
        const char* name;
        double p;
        std::size_t n;
    };
    for (const Family family : {Family{"gnp(10,0.25)", 0.25, 10},
                                Family{"gnp(10,0.45)", 0.45, 10},
                                Family{"gnp(12,0.30)", 0.30, 12},
                                Family{"gnp(12,0.55)", 0.55, 12}}) {
        constexpr int kTrials = 40;
        double ratio_sum = 0;
        double ratio_max = 0;
        int optimal_hits = 0;
        int counted = 0;
        for (int t = 0; t < kTrials; ++t) {
            const Graph random = topology::random_gnp(family.n, family.p, rng);
            if (random.num_edges() == 0) continue;
            const auto opt = exact_edge_decomposition(random);
            if (!opt || opt->size() == 0) continue;
            const auto greedy = greedy_edge_decomposition(random);
            const double ratio = static_cast<double>(greedy.size()) /
                                 static_cast<double>(opt->size());
            ratio_sum += ratio;
            if (ratio > ratio_max) ratio_max = ratio;
            optimal_hits += greedy.size() == opt->size() ? 1 : 0;
            ++counted;
        }
        std::printf("%14s %8d %10.3f %10.3f %9d%% %10s\n", family.name,
                    counted, ratio_sum / counted, ratio_max,
                    100 * optimal_hits / counted,
                    ratio_max <= 2.0 ? "<=2 ok" : "FAIL");
    }
    std::printf(
        "\nshape check: every measured ratio respects Theorem 6's bound of "
        "2; typical instances sit well below it.\n");

    // Machine-readable summary for tools/bench_to_json.sh.
    constexpr std::size_t kReps = 1000;
    bench::measure_and_emit("fig8_greedy", kReps * g.num_edges(), [&] {
        for (std::size_t i = 0; i < kReps; ++i) {
            (void)greedy_edge_decomposition(g);
        }
    });
    return 0;
}
