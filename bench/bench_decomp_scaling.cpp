// Experiment TAB-ALG — cost of the decomposition algorithms themselves.
//
// Section 3.3 states the greedy algorithm runs in O(|V||E|). We measure
// greedy wall time across topology families and sizes (google-benchmark),
// plus the matching-cover alternative (near-linear) — decomposition is a
// startup cost, paid once per topology, so even the worst case is cheap.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "decomp/cover_decomposer.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/generators.hpp"

using namespace syncts;

namespace {

Graph make_topology(int family, std::size_t n) {
    Rng rng(1234);
    switch (family) {
        case 0: return topology::random_tree(n, rng);
        case 1: return topology::client_server(8, n - 8);
        case 2: return topology::random_gnp(n, 8.0 / static_cast<double>(n),
                                            rng);  // sparse, ~4 avg degree
        default: return topology::complete(n);
    }
}

const char* family_name(int family) {
    switch (family) {
        case 0: return "tree";
        case 1: return "client_server8";
        case 2: return "gnp_avg_deg8";
        default: return "complete";
    }
}

void BM_GreedyDecomposition(benchmark::State& state) {
    const int family = static_cast<int>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    const Graph g = make_topology(family, n);
    std::size_t width = 0;
    for (auto _ : state) {
        const auto d = greedy_edge_decomposition(g);
        width = d.size();
        benchmark::DoNotOptimize(width);
    }
    state.SetLabel(std::string(family_name(family)) + " m=" +
                   std::to_string(g.num_edges()) + " d=" +
                   std::to_string(width));
}

void BM_CoverDecomposition(benchmark::State& state) {
    const int family = static_cast<int>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    const Graph g = make_topology(family, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(approx_cover_decomposition(g).size());
    }
    state.SetLabel(std::string(family_name(family)) + " m=" +
                   std::to_string(g.num_edges()));
}

void ScalingArgs(benchmark::internal::Benchmark* bench) {
    for (int family = 0; family < 4; ++family) {
        for (const std::int64_t n : {64, 256, 1024}) {
            if (family == 3 && n > 256) continue;  // complete: m = n^2/2
            bench->Args({family, n});
        }
    }
}

BENCHMARK(BM_GreedyDecomposition)
    ->Apply(ScalingArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CoverDecomposition)
    ->Apply(ScalingArgs)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
