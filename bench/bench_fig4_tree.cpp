// Experiment FIG4 — tree topologies (Fig. 4).
//
// The paper's 20-process tree decomposes into three stars E1, E2, E3, and
// Theorem 7 says the greedy algorithm is optimal on acyclic graphs. We
// print the Fig. 4 decomposition, then sweep random and k-ary trees: the
// vector width is the tree's vertex-cover size, which grows with the
// number of internal hubs, not with N — for hub-dominated trees it stays
// constant while FM's width grows linearly.

#include <cstdio>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_cover.hpp"

using namespace syncts;

int main() {
    std::printf("== FIG4: tree decompositions ==\n\n");

    const Graph fig4 = topology::paper_fig4_tree();
    const auto d = greedy_edge_decomposition(fig4);
    std::printf("paper's 20-process tree -> %zu stars:\n  %s\n\n", d.size(),
                d.to_string().c_str());

    std::printf("three-hub trees (Fig. 4 shape), leaves added per hub:\n");
    std::printf("%8s %8s %8s %10s\n", "N", "d", "beta", "FM width");
    for (std::size_t leaves_per_hub = 2; leaves_per_hub <= 1024;
         leaves_per_hub *= 4) {
        // Three hubs in a path, each with `leaves_per_hub` leaves.
        const std::size_t n = 3 + 3 * leaves_per_hub;
        Graph g(n);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        ProcessId next = 3;
        for (ProcessId hub = 0; hub < 3; ++hub) {
            for (std::size_t i = 0; i < leaves_per_hub; ++i) {
                g.add_edge(hub, next++);
            }
        }
        const auto decomposition = greedy_edge_decomposition(g);
        std::printf("%8zu %8zu %8zu %10zu\n", n, decomposition.size(),
                    exact_vertex_cover(g).size(), n);
    }
    std::printf("  ^ d stays 3 while N grows: constant-size timestamps.\n\n");

    std::printf("random trees (greedy vs optimal = vertex cover):\n");
    std::printf("%8s %10s %10s %10s\n", "N", "greedy d", "beta", "optimal?");
    Rng rng(2002);
    for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 1024u, 4096u}) {
        const Graph tree = topology::random_tree(n, rng);
        const auto decomposition = greedy_edge_decomposition(tree);
        // Theorem 7: greedy is optimal on forests; the optimum for a
        // forest equals its minimum vertex cover. Exact beta is
        // exponential in beta, so check it only on small instances.
        if (n <= 64) {
            const std::size_t beta = exact_vertex_cover(tree).size();
            std::printf("%8zu %10zu %10zu %10s\n", n, decomposition.size(),
                        beta, decomposition.size() == beta ? "yes" : "NO");
        } else {
            std::printf("%8zu %10zu %10s %10s\n", n, decomposition.size(),
                        "-", "-");
        }
    }

    std::printf("\nk-ary trees (every internal vertex is a hub):\n");
    std::printf("%8s %6s %10s %10s\n", "N", "k", "greedy d", "FM width");
    for (const std::size_t k : {2u, 4u, 8u}) {
        for (std::size_t n : {15u, 63u, 255u}) {
            const Graph tree = topology::kary_tree(n, k);
            const auto decomposition = greedy_edge_decomposition(tree);
            std::printf("%8zu %6zu %10zu %10zu\n", n, k, decomposition.size(),
                        n);
        }
    }
    std::printf(
        "\nshape check: d tracks the number of internal hubs (N/k for "
        "k-ary), always well below FM's N.\n");

    // Machine-readable summary for tools/bench_to_json.sh.
    const Graph big_tree = topology::kary_tree(4095, 4);
    bench::measure_and_emit("fig4_tree", big_tree.num_edges(), [&] {
        (void)greedy_edge_decomposition(big_tree);
    });
    return 0;
}
