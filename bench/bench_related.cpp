// Experiment TAB-REL — the Section 6 related-work trade-off, quantified.
//
// Plausible clocks (Torres-Rojas & Ahamad) achieve fixed-size vectors by
// folding processes onto components, at the price of falsely ordering some
// concurrent pairs. The paper's clocks are the same size as a well-chosen
// fold (d components) but remain exact. This bench sweeps the fold width R
// and reports concurrency accuracy vs the paper's d-width exact clocks.

#include <cstdio>

#include "bench_json.hpp"
#include "clocks/online_clock.hpp"
#include "clocks/plausible_clock.hpp"
#include "common/rng.hpp"
#include "core/causality.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

namespace {

void study(const char* family, const Graph& g, std::uint64_t seed) {
    Rng rng(seed);
    WorkloadOptions options;
    options.num_messages = 250;
    const SyncComputation c = random_computation(g, options, rng);
    const Poset truth = message_poset(c);
    const SyncSystem system{Graph(g)};
    const std::size_t n = g.num_vertices();
    const std::size_t d = system.width();

    auto exact = system.make_timestamper();
    const auto exact_stamps = exact.timestamp_computation(c);

    std::printf("%-20s N=%-4zu d=%-3zu | paper(d)=%.3f", family, n, d,
                concurrency_accuracy(truth, exact_stamps));
    for (const std::size_t width : {1ul, 2ul, d, 2 * d, n}) {
        PlausibleTimestamper plausible(n, width);
        const auto stamps = plausible.timestamp_computation(c);
        std::printf("  R%zu=%.3f", width,
                    concurrency_accuracy(truth, stamps));
    }
    std::printf("\n");
}

}  // namespace

int main() {
    std::printf(
        "== TAB-REL: plausible clocks vs the paper's exact clocks ==\n"
        "(concurrency accuracy: fraction of truly concurrent pairs the\n"
        " stamps recognize; the paper's d-component clock is always 1.0)\n\n");
    Rng seeds(7007);
    study("client-server k=3", topology::client_server(3, 13), seeds());
    study("client-server k=3", topology::client_server(3, 29), seeds());
    study("kary-tree k=4", topology::kary_tree(32, 4), seeds());
    study("ring", topology::ring(16), seeds());
    study("complete", topology::complete(12), seeds());
    Rng rng(7117);
    study("gnp(16,0.3)", topology::random_gnp(16, 0.3, rng), seeds());

    std::printf(
        "\nshape check: plausible accuracy climbs toward 1.0 only as R "
        "approaches N; the paper's clock is exact already at width d.\n");

    // Machine-readable summary for tools/bench_to_json.sh.
    Rng json_rng(7337);
    WorkloadOptions options;
    options.num_messages = 250;
    const Graph g = topology::client_server(3, 29);
    const SyncComputation c = random_computation(g, options, json_rng);
    const SyncSystem system{Graph(g)};
    auto exact = system.make_timestamper();
    bench::measure_and_emit("related", c.num_messages(), [&] {
        (void)exact.timestamp_computation(c);
    });
    return 0;
}
